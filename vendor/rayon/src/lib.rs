//! Offline work-alike of the `rayon` crate covering the surface this
//! workspace uses: `slice.par_iter().map(f).collect::<Vec<_>>()` and
//! [`join`], executed on `std::thread::scope` threads with dynamic
//! (work-stealing-ish) index distribution via an atomic cursor.

#![deny(missing_docs)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads used by parallel operations.
pub fn current_num_threads() -> usize {
    match std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

thread_local! {
    /// `true` while the current thread is a worker inside a parallel
    /// operation of this crate.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// `true` when called from inside a worker thread of [`broadcast`] or a
/// `par_iter` pipeline. Libraries use this to fall back to their serial
/// path instead of nesting a second layer of thread spawns (this work-alike
/// has no work-stealing pool, so nested parallelism oversubscribes).
pub fn in_worker() -> bool {
    IN_WORKER.with(Cell::get)
}

fn as_worker<R>(f: impl FnOnce() -> R) -> R {
    let prev = IN_WORKER.with(|w| w.replace(true));
    let r = f();
    IN_WORKER.with(|w| w.set(prev));
    r
}

/// Runs `f(worker_index)` concurrently on `threads` workers (the calling
/// thread doubles as worker 0) and returns the results in worker order.
///
/// This is the work-alike of rayon's `broadcast`: one closure instance per
/// worker, all running at once, which is what cooperative algorithms with
/// internal synchronization (barriers between elimination-tree levels,
/// shared atomic cursors) need — as opposed to `par_iter`, which hands out
/// independent items. `threads <= 1` runs `f(0)` inline.
pub fn broadcast<R, F>(threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if threads <= 1 {
        return vec![f(0)];
    }
    std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = (1..threads)
            .map(|tid| s.spawn(move || as_worker(|| f(tid))))
            .collect();
        let mut out = Vec::with_capacity(threads);
        out.push(as_worker(|| f(0)));
        for h in handles {
            out.push(h.join().expect("rayon::broadcast worker panicked"));
        }
        out
    })
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join closure panicked"))
    })
}

/// Common imports for parallel iteration.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParallelIterator};
}

/// `par_iter()` entry point for by-reference collections.
pub trait IntoParallelRefIterator<'a> {
    /// The per-item reference type.
    type Item: Sync + 'a;

    /// A parallel iterator over `&self`.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Parallel iterator over a slice.
#[derive(Debug, Clone, Copy)]
pub struct ParIter<'a, T> {
    items: &'a [T],
}

/// The operations shared by this crate's parallel iterators.
pub trait ParallelIterator: Sized {
    /// The produced item type.
    type Item: Send;

    /// Evaluates the pipeline in parallel, in input order.
    fn run(self) -> Vec<Self::Item>;

    /// Maps each item through `f`.
    fn map<R: Send, F: Fn(Self::Item) -> R + Sync>(self, f: F) -> ParMap<Self, F> {
        ParMap { inner: self, f }
    }

    /// Collects into a container (only `Vec<Item>` is supported).
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_ordered(self.run())
    }
}

impl<'a, T: Sync> ParallelIterator for ParIter<'a, T> {
    type Item = &'a T;

    fn run(self) -> Vec<&'a T> {
        self.items.iter().collect()
    }
}

/// Parallel map adapter. The map closure runs on worker threads.
#[derive(Debug)]
pub struct ParMap<I, F> {
    inner: I,
    f: F,
}

impl<I: ParallelIterator, R: Send, F: Fn(I::Item) -> R + Sync> ParallelIterator for ParMap<I, F> {
    type Item = R;

    fn run(self) -> Vec<R> {
        let items = self.inner.run();
        let f = &self.f;
        let n = items.len();
        let threads = current_num_threads().min(n.max(1));
        if threads <= 1 || n <= 1 {
            return items.into_iter().map(f).collect();
        }
        // Hand items out through an atomic cursor so fast workers pick up
        // the slack of slow ones; items are moved into per-index cells.
        let cells: Vec<std::sync::Mutex<Option<I::Item>>> = items
            .into_iter()
            .map(|it| std::sync::Mutex::new(Some(it)))
            .collect();
        let cursor = AtomicUsize::new(0);
        let mut chunks: Vec<Vec<(usize, R)>> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    s.spawn(|| {
                        as_worker(|| {
                            let mut out = Vec::new();
                            loop {
                                let i = cursor.fetch_add(1, Ordering::Relaxed);
                                if i >= n {
                                    break;
                                }
                                let item = cells[i]
                                    .lock()
                                    .expect("cell lock")
                                    .take()
                                    .expect("each cell taken once");
                                out.push((i, f(item)));
                            }
                            out
                        })
                    })
                })
                .collect();
            for h in handles {
                chunks.push(h.join().expect("rayon worker panicked"));
            }
        });
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (i, r) in chunks.into_iter().flatten() {
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every index produced"))
            .collect()
    }
}

/// Conversion from an ordered parallel result buffer.
pub trait FromParallelIterator<T> {
    /// Builds the container from items in input order.
    fn from_ordered(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered(items: Vec<T>) -> Self {
        items
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_map_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".to_owned() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }

    #[test]
    fn broadcast_runs_every_worker_once_in_order() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits = AtomicUsize::new(0);
        let out = super::broadcast(4, |tid| {
            hits.fetch_add(1, Ordering::Relaxed);
            assert!(super::in_worker());
            tid
        });
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(hits.load(Ordering::Relaxed), 4);
        assert!(!super::in_worker(), "flag must reset on the caller");
    }

    #[test]
    fn broadcast_single_thread_runs_inline() {
        let out = super::broadcast(1, |tid| tid * 10);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn broadcast_workers_synchronize_through_a_barrier() {
        // The use-case broadcast exists for: cooperative phases separated
        // by barriers, with writes before the barrier visible after it.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let threads = 3;
        let barrier = std::sync::Barrier::new(threads);
        let phase1: Vec<AtomicUsize> = (0..threads).map(|_| AtomicUsize::new(0)).collect();
        let sums = super::broadcast(threads, |tid| {
            phase1[tid].store(tid + 1, Ordering::Relaxed);
            barrier.wait();
            phase1
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .sum::<usize>()
        });
        assert_eq!(sums, vec![6, 6, 6]);
    }

    #[test]
    fn par_iter_workers_report_in_worker() {
        let v: Vec<u64> = (0..64).collect();
        let flags: Vec<bool> = v.par_iter().map(|_| super::in_worker()).collect();
        // The caller thread is not a worker in par_iter (it only joins), so
        // on a single-core box the serial fallback reports false — what
        // matters is that no *spawned* worker misses the flag and that the
        // pipeline still completes.
        assert_eq!(flags.len(), 64);
    }
}
