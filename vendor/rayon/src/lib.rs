//! Offline work-alike of the `rayon` crate covering the surface this
//! workspace uses: `slice.par_iter().map(f).collect::<Vec<_>>()` and
//! [`join`], executed on `std::thread::scope` threads with dynamic
//! (work-stealing-ish) index distribution via an atomic cursor.

#![deny(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads used by parallel operations.
pub fn current_num_threads() -> usize {
    match std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join closure panicked"))
    })
}

/// Common imports for parallel iteration.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParallelIterator};
}

/// `par_iter()` entry point for by-reference collections.
pub trait IntoParallelRefIterator<'a> {
    /// The per-item reference type.
    type Item: Sync + 'a;

    /// A parallel iterator over `&self`.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Parallel iterator over a slice.
#[derive(Debug, Clone, Copy)]
pub struct ParIter<'a, T> {
    items: &'a [T],
}

/// The operations shared by this crate's parallel iterators.
pub trait ParallelIterator: Sized {
    /// The produced item type.
    type Item: Send;

    /// Evaluates the pipeline in parallel, in input order.
    fn run(self) -> Vec<Self::Item>;

    /// Maps each item through `f`.
    fn map<R: Send, F: Fn(Self::Item) -> R + Sync>(self, f: F) -> ParMap<Self, F> {
        ParMap { inner: self, f }
    }

    /// Collects into a container (only `Vec<Item>` is supported).
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_ordered(self.run())
    }
}

impl<'a, T: Sync> ParallelIterator for ParIter<'a, T> {
    type Item = &'a T;

    fn run(self) -> Vec<&'a T> {
        self.items.iter().collect()
    }
}

/// Parallel map adapter. The map closure runs on worker threads.
#[derive(Debug)]
pub struct ParMap<I, F> {
    inner: I,
    f: F,
}

impl<I: ParallelIterator, R: Send, F: Fn(I::Item) -> R + Sync> ParallelIterator for ParMap<I, F> {
    type Item = R;

    fn run(self) -> Vec<R> {
        let items = self.inner.run();
        let f = &self.f;
        let n = items.len();
        let threads = current_num_threads().min(n.max(1));
        if threads <= 1 || n <= 1 {
            return items.into_iter().map(f).collect();
        }
        // Hand items out through an atomic cursor so fast workers pick up
        // the slack of slow ones; items are moved into per-index cells.
        let cells: Vec<std::sync::Mutex<Option<I::Item>>> = items
            .into_iter()
            .map(|it| std::sync::Mutex::new(Some(it)))
            .collect();
        let cursor = AtomicUsize::new(0);
        let mut chunks: Vec<Vec<(usize, R)>> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    s.spawn(|| {
                        let mut out = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            let item = cells[i]
                                .lock()
                                .expect("cell lock")
                                .take()
                                .expect("each cell taken once");
                            out.push((i, f(item)));
                        }
                        out
                    })
                })
                .collect();
            for h in handles {
                chunks.push(h.join().expect("rayon worker panicked"));
            }
        });
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (i, r) in chunks.into_iter().flatten() {
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every index produced"))
            .collect()
    }
}

/// Conversion from an ordered parallel result buffer.
pub trait FromParallelIterator<T> {
    /// Builds the container from items in input order.
    fn from_ordered(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered(items: Vec<T>) -> Self {
        items
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_map_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".to_owned() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }
}
