//! Offline work-alike of the `rand` crate covering the surface this
//! workspace uses: `rngs::StdRng`, [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] methods `gen`, `gen_range` (half-open and inclusive integer and
//! float ranges) and `gen_bool`.
//!
//! The generator is xoshiro256++ seeded through splitmix64 — statistically
//! solid for test-data generation, but the stream differs from upstream
//! `rand`: nothing in this workspace depends on specific draw values, only
//! on same-seed reproducibility.

#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seeding interface (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one value from the generator.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

fn unit_f64(rng: &mut dyn RngCore) -> f64 {
    // 53 mantissa bits -> uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_int_range!(usize, u64, u32, i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + unit_f64(rng) * (hi - lo)
    }
}

impl Standard for f64 {
    fn draw(rng: &mut dyn RngCore) -> f64 {
        unit_f64(rng)
    }
}

impl Standard for u64 {
    fn draw(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Value-generation methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of an inferred [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p}");
        unit_f64(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator, the workspace's deterministic test RNG.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion of the seed into the full state.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-2.0..2.0f64);
            assert!((-2.0..2.0).contains(&w));
            let k = rng.gen_range(1i64..=9);
            assert!((1..=9).contains(&k));
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits={hits}");
    }
}
