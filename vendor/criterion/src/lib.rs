//! Offline work-alike of the `criterion` benchmark harness covering the
//! surface this workspace uses: [`Criterion::benchmark_group`],
//! `sample_size`, `bench_function`, `bench_with_input`, [`BenchmarkId`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Timing model: each benchmark is warmed up once, the per-iteration cost
//! is estimated, and then `sample_size` samples are taken (each a batch
//! sized to run for at least ~2 ms); the median and mean per-iteration
//! times are printed. Set `OHMFLOW_BENCH_FAST=1` to cap sampling for CI
//! smoke runs.

#![deny(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }
}

/// Identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&self.name, &id.to_string());
        self
    }

    /// Benchmarks `f` with an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&self.name, &id.to_string());
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Per-benchmark measurement driver, handed to the benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        let sample_size = match std::env::var("OHMFLOW_BENCH_FAST") {
            Ok(v) if v != "0" => sample_size.min(3),
            _ => sample_size,
        };
        Bencher {
            sample_size,
            samples_ns: Vec::new(),
        }
    }

    /// Measures `f` over `sample_size` batched samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up + batch-size estimation: target ~2 ms per sample.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let batch =
            (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 100_000) as u32;

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples_ns
                .push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples_ns.is_empty() {
            println!("{group}/{id}: no samples");
            return;
        }
        let mut s = self.samples_ns.clone();
        s.sort_by(|a, b| a.total_cmp(b));
        let median = s[s.len() / 2];
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        println!(
            "{group}/{id}: median {} mean {} ({} samples)",
            fmt_ns(median),
            fmt_ns(mean),
            s.len()
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Declares a benchmark group function running each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("sq", 7), &7u64, |b, &x| b.iter(|| x * x));
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
