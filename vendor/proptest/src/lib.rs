//! Offline work-alike of the `proptest` crate covering the surface this
//! workspace uses: the [`proptest!`] macro, [`Strategy`] over ranges,
//! tuples, [`any`] and [`collection::vec`], `prop_map`, and the
//! `prop_assert*` macros.
//!
//! Each `#[test]` runs `ProptestConfig::cases` deterministic cases (the RNG
//! is seeded from the test name and case index). Unlike upstream proptest
//! there is no shrinking: a failing case panics with its inputs via the
//! assertion message.

#![deny(missing_docs)]

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values for one test parameter.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter created by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(usize, u64, u32, i64, i32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types usable with [`any`].
pub trait Arbitrary {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut StdRng) -> u64 {
        rng.gen()
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen()
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s of `element` values with a length drawn from
    /// `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Deterministic per-test RNG seed from the test name and case index.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Common imports for property tests.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$attr:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..cfg.cases {
                    let mut __rng = $crate::case_rng(stringify!($name), __case);
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_tuples((a, b) in (0usize..10, -2.0..2.0f64), c in any::<bool>()) {
            prop_assert!(a < 10);
            prop_assert!((-2.0..2.0).contains(&b));
            let _ = c;
        }

        #[test]
        fn mapped_vec(v in crate::collection::vec(1i64..5, 2..6).prop_map(|v| v.len())) {
            prop_assert!((2..6).contains(&v));
        }
    }
}
