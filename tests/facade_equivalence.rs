//! Facade self-consistency: the staged `MaxFlowSolver` / `DcSolver`
//! facade is the one public solve surface (the deprecated shims it
//! replaced were pinned equivalent here at 1e-12 and then deleted), so
//! this suite now pins the facade's own paths against each other at the
//! same tolerance: convenience `solve` vs the explicit
//! plan → instance → solve stages vs the cache-bypassing cold path,
//! batch `solve_many` vs sequential solves, and plan-derived sessions vs
//! cold sessions. Also audits option precedence: a plan built under
//! AMD+BTF can never silently fall back to a differently-ordered fresh
//! factorization.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ohmflow::solver::facade::{MaxFlowSolver, Problem, SolveOptions};
use ohmflow::solver::AnalogConfig;
use ohmflow_circuit::{ColumnOrdering, DcSolver, LuOptions};
use ohmflow_graph::{generators, FlowNetwork};

/// A random small flow network with a guaranteed source→sink spine plus
/// random chords (same family as the template-agreement suite).
fn random_graph(rng: &mut StdRng) -> FlowNetwork {
    let n = rng.gen_range(4..9);
    let mut g = FlowNetwork::new(n, 0, n - 1).expect("endpoints");
    for v in 0..n - 1 {
        g.add_edge(v, v + 1, rng.gen_range(1..=20)).expect("spine");
    }
    for _ in 0..rng.gen_range(0..2 * n) {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            let _ = g.add_edge(a, b, rng.gen_range(1..=20));
        }
    }
    g
}

fn assert_solutions_match(a: &ohmflow::AnalogSolution, b: &ohmflow::AnalogSolution, label: &str) {
    let tol = |r: f64| 1e-12 * r.abs().max(1.0);
    assert!(
        (a.value - b.value).abs() < tol(b.value),
        "{label}: value {} vs {}",
        a.value,
        b.value
    );
    for (e, (x, y)) in a.edge_flows.iter().zip(&b.edge_flows).enumerate() {
        assert!((x - y).abs() < tol(*y), "{label}: edge {e} flow {x} vs {y}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The three single-instance paths agree: cache-bypassing
    /// `solve_fresh`, plan-cached `solve` (repeated, so the second round
    /// rides a warm plan) and the explicit plan → instance → solve
    /// stages.
    #[test]
    fn solve_paths_agree(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_graph(&mut rng);
        let solver = MaxFlowSolver::new(SolveOptions::ideal());
        let fresh = solver.solve_fresh(&g).expect("solve_fresh");
        for round in 0..3 {
            let cached = solver.solve(&g).expect("facade solve");
            assert_solutions_match(&cached, &fresh, &format!("solve round {round}"));
        }
        let plan = solver.plan(&g).expect("plan");
        if g.edge_count() >= ohmflow::solver::SMALL_INSTANCE_EDGES {
            prop_assert!(plan.cache_hit(), "the solve rounds must have planned this topology");
        } else {
            // Below the adaptive threshold, one-shot solves deliberately
            // skip plan building — the explicit plan above is the cache's
            // first entry for this topology, and a repeat rides it.
            prop_assert!(
                solver.plan(&g).expect("replan").cache_hit(),
                "explicit plans populate the cache"
            );
        }
        let staged = plan.instance(&g).expect("instance").solve().expect("staged solve");
        assert_solutions_match(&staged, &fresh, "staged");
    }

    /// `MaxFlowSolver::solve_many` vs sequential `solve` on a mixed batch
    /// (repeated topology + a singleton) — the fingerprint-grouped batch
    /// fan-out must be value-identical to one-at-a-time solving.
    #[test]
    fn solve_many_matches_sequential_solve(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let base = random_graph(&mut rng);
        let mut graphs: Vec<FlowNetwork> = (1..=3)
            .map(|s| base.scaled_capacities(s).expect("scaled"))
            .collect();
        graphs.push(random_graph(&mut rng));
        let solver = MaxFlowSolver::new(SolveOptions::ideal());
        let batch = solver.solve_many(graphs.iter().map(Problem::from));
        prop_assert_eq!(batch.len(), graphs.len());
        let sequential_solver = MaxFlowSolver::new(SolveOptions::ideal());
        for (i, (b, g)) in batch.iter().zip(&graphs).enumerate() {
            let b = b.as_ref().expect("batch member");
            let s = sequential_solver.solve(g).expect("sequential member");
            assert_solutions_match(b, &s, &format!("batch member {i}"));
        }
    }

    /// Frozen-DC flip loop: a plan-derived `Instance::session` vs a cold
    /// `DcSolver::session` on the same circuit, over a deterministic
    /// pseudo-random clamp-toggle walk. The two paths factor the same
    /// matrix with genuinely different pivot sequences (numeric refactor
    /// against the plan's symbolic pattern vs a fresh pivoting
    /// factorization), so the gate is the iterative-refinement accuracy
    /// bound (1e-9), not bitwise path identity.
    #[test]
    fn plan_sessions_match_cold_sessions(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_graph(&mut rng);
        let solver = MaxFlowSolver::new(SolveOptions::ideal());
        let plan = solver.plan(&g).expect("plan");
        let instance = plan.instance(&g).expect("instance");
        let ckt = instance.substrate().circuit();
        let n_diodes = ckt.diode_count();
        assert!(n_diodes > 0, "substrate always carries clamp diodes");

        let mut cold = DcSolver::new().session(ckt).expect("cold session");
        let mut planned = instance.session().expect("plan session");
        prop_assert!(planned.report().templated, "plan session must ride the plan");

        let mut on = vec![false; n_diodes];
        let mut lcg = seed | 1;
        for step in 0..40 {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let flip = (lcg >> 33) as usize % (n_diodes + 1);
            if flip < n_diodes {
                on[flip] = !on[flip];
            }
            let t = step as f64 * 1e-9;
            // Some random clamp configurations are legitimately singular;
            // both paths must then agree on failing.
            let r_cold = cold.solve(t, &on);
            let r_plan = planned.solve(t, &on);
            prop_assert_eq!(r_cold.is_ok(), r_plan.is_ok(), "step {}", step);
            if r_cold.is_ok() && r_plan.is_ok() {
                for (u, (a, b)) in planned.values().iter().zip(cold.values()).enumerate() {
                    prop_assert!(
                        (a - b).abs() < 1e-9 * b.abs().max(1.0),
                        "step {step} unknown {u}: {a} vs {b}"
                    );
                }
            }
        }
    }
}

/// Transient consistency on the paper's Fig. 5a: the plan-cached solve
/// must agree with the cache-bypassing cold solve in transient mode, and
/// the built-batch fan-out (`solve_many(Built…)`, shared symbolic plan)
/// must agree with singleton `solve_problem(Built…)` calls.
#[test]
fn transient_paths_are_self_consistent() {
    let g = generators::fig5a();
    let mut cfg = AnalogConfig::evaluation(10e9);
    cfg.build.capacity_mapping = ohmflow::builder::CapacityMapping::Exact;
    let solver = MaxFlowSolver::new(SolveOptions::from_config(cfg.clone()));

    let cached = solver.solve(&g).expect("cached transient");
    let fresh = solver.solve_fresh(&g).expect("fresh transient");
    assert!((cached.value - fresh.value).abs() < 1e-12 * fresh.value.abs().max(1.0));
    let (tc, tf) = (
        cached.convergence_time.expect("cached settles"),
        fresh.convergence_time.expect("fresh settles"),
    );
    assert!(((tc - tf) / tf).abs() < 1e-12, "settle {tc} vs {tf}");

    // Built-batch: `solve_many(Built…)` (shared symbolic plan) vs
    // member-at-a-time `solve_problem(Built…)` (independent cold paths).
    let build = ohmflow::builder::BuildOptions {
        drive: ohmflow::builder::Drive::Step,
        ..ohmflow::builder::BuildOptions::ideal()
    };
    let scs: Vec<_> = (0..3)
        .map(|_| ohmflow::builder::build(&g, &cfg.params, &build).expect("build"))
        .collect();
    let singles: Vec<_> = scs
        .iter()
        .map(|sc| {
            solver
                .solve_problem(Problem::Built {
                    circuit: sc,
                    graph: &g,
                })
                .expect("single built")
        })
        .collect();
    let batch = solver.solve_many(scs.iter().map(|sc| Problem::Built {
        circuit: sc,
        graph: &g,
    }));
    for (i, (s, b)) in singles.iter().zip(&batch).enumerate() {
        let b = b.as_ref().expect("batch built");
        assert!(
            (s.value - b.value).abs() < 1e-12 * s.value.abs().max(1.0),
            "built member {i}: {} vs {}",
            b.value,
            s.value
        );
    }
}

/// Circuit-level consistency: `DcSolver::solve` (cold path inline) vs a
/// `DcPlan` solve (template fast path) on the substrate circuit of a real
/// instance.
#[test]
fn dc_plan_solve_matches_cold_solve() {
    let g = generators::fig15a(40);
    let solver = MaxFlowSolver::new(SolveOptions::ideal());
    let instance = solver
        .plan(&g)
        .expect("plan")
        .instance(&g)
        .expect("instance");
    let ckt = instance.substrate().circuit();
    let (cold, report) = DcSolver::new().solve(ckt).expect("cold dc");
    assert!(report.iterations >= 1);
    let dc_plan = DcSolver::new().plan(ckt).expect("dc plan");
    let (planned, preport) = dc_plan.solve(ckt).expect("planned dc");
    assert!(preport.templated, "matching plan must ride the template");
    for (u, (a, b)) in planned.values().iter().zip(cold.values()).enumerate() {
        assert!(
            (a - b).abs() < 1e-12 * b.abs().max(1.0),
            "unknown {u}: {a} vs {b}"
        );
    }
}

/// Option-precedence audit: a plan built under AMD+BTF can never silently
/// fall back to a differently-ordered fresh factorization — neither in
/// the facade's plans, nor in sessions, nor in the cold fallback path of
/// a mismatched plan (extending the PR 4 "templates remember their
/// options" guarantee to the facade).
#[test]
fn amd_btf_plan_never_falls_back_to_another_ordering() {
    let g = generators::fig15a(40);

    // Deliberately desynchronize the legacy build-level ordering knob:
    // SolveOptions::lu must win everywhere.
    let mut opts = SolveOptions::ideal();
    opts.build.lu_ordering = ColumnOrdering::Natural;
    opts.lu.ordering = ColumnOrdering::AmdBtf;
    // The *full* options must reach the plan's symbolic work, not just
    // the ordering: strict partial pivoting is observable through
    // `Plan::lu_options`.
    opts.lu.pivot_threshold = 1.0;
    let solver = MaxFlowSolver::new(opts);
    assert_eq!(
        solver.options().build.lu_ordering,
        ColumnOrdering::AmdBtf,
        "normalization must sync the build ordering to SolveOptions::lu"
    );
    let plan = solver.plan(&g).expect("plan");
    assert_eq!(
        plan.lu_options().pivot_threshold,
        1.0,
        "pivoting thresholds must flow into the plan's factorization"
    );
    let report = plan.report();
    assert_eq!(report.ordering, ColumnOrdering::AmdBtf);
    assert!(
        report.block_count > 1,
        "AMD+BTF on fig15a(40) must decompose into blocks, got {}",
        report.block_count
    );

    // Sessions derived from the instance inherit the plan's ordering.
    let instance = plan.instance(&g).expect("instance");
    let session = instance.session().expect("session");
    let sreport = session.report();
    assert!(sreport.templated, "plan-derived session must ride the plan");
    assert_eq!(sreport.block_count, report.block_count);

    // A Natural-ordered solver on the same circuit shows the observable
    // actually discriminates (one monolithic block).
    let ckt = instance.substrate().circuit();
    let (_, natural) = DcSolver::new()
        .lu_options(LuOptions {
            ordering: ColumnOrdering::Natural,
            ..LuOptions::default()
        })
        .solve(ckt)
        .expect("natural solve");
    assert_eq!(natural.block_count, 1, "natural order has no BTF blocks");

    // Circuit-level: a DcPlan whose template does NOT match the solved
    // circuit falls back to a fresh factorization — which must still run
    // under the plan's own AMD+BTF options, not some default or caller
    // ordering.
    // A genuinely different structure (fig15a only varies capacities on
    // the same diamond, so a layered graph is used for the mismatch).
    let g_other = generators::layered(3, 2, 5, 1).expect("layered");
    let other = solver
        .plan(&g_other)
        .expect("plan other")
        .instance(&g_other)
        .expect("instance other");
    let dc_plan = DcSolver::new()
        .lu_options(LuOptions {
            ordering: ColumnOrdering::AmdBtf,
            ..LuOptions::default()
        })
        .plan(ckt)
        .expect("dc plan");
    assert_eq!(dc_plan.lu_options().ordering, ColumnOrdering::AmdBtf);
    let mismatched = other.substrate().circuit();
    assert!(!dc_plan.template().matches(mismatched));
    let (_, fallback) = dc_plan.solve(mismatched).expect("fallback solve");
    assert!(!fallback.templated, "mismatch must fall back cold");
    assert!(
        fallback.block_count > 1,
        "cold fallback kept the plan's AMD+BTF ordering (blocks {})",
        fallback.block_count
    );
    let fb_session = dc_plan.session(mismatched).expect("fallback session");
    let fb_report = fb_session.report();
    assert!(!fb_report.templated);
    assert!(
        fb_report.block_count > 1,
        "fallback session kept the plan's AMD+BTF ordering (blocks {})",
        fb_report.block_count
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Mixed precision is transparent at the DC level: an
    /// `F32Refined`-configured solver (f32 factor values, f64 iterative
    /// refinement) must land within 1e-9 of the full-f64 solver on the
    /// same circuits — the accuracy gate the refinement loop exists to
    /// meet.
    #[test]
    fn f32_refined_solve_matches_f64_within_1e9(seed in any::<u64>()) {
        use ohmflow_circuit::Precision;
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_graph(&mut rng);
        let f64_solver = MaxFlowSolver::new(SolveOptions::ideal());
        let f32_solver = MaxFlowSolver::new(
            SolveOptions::ideal().with_precision(Precision::F32Refined),
        );
        let a = f64_solver.solve_fresh(&g).expect("f64 solve");
        let b = f32_solver.solve_fresh(&g).expect("f32refined solve");
        let tol = |r: f64| 1e-9 * r.abs().max(1.0);
        prop_assert!(
            (a.value - b.value).abs() < tol(a.value),
            "flow value {} vs {}", b.value, a.value
        );
        for (e, (x, y)) in b.edge_flows.iter().zip(&a.edge_flows).enumerate() {
            prop_assert!((x - y).abs() < tol(*y), "edge {e} flow {x} vs {y}");
        }
    }
}

/// Precision is part of a template's identity: two keys differing only in
/// [`Precision`] must be distinct, so an `F32Refined` solver can never be
/// handed a cached f64 template (or vice versa) for the same topology.
#[test]
fn template_key_separates_precisions() {
    use ohmflow::TemplateKey;
    use ohmflow_circuit::Precision;
    let g = generators::fig15a(12);
    let f64_key = TemplateKey::with_lu(&g, ColumnOrdering::AmdBtf, Precision::F64);
    let f32_key = TemplateKey::with_lu(&g, ColumnOrdering::AmdBtf, Precision::F32Refined);
    assert_ne!(
        f64_key, f32_key,
        "keys differing only in precision must not collide"
    );
    assert_eq!(
        f64_key,
        TemplateKey::with_lu(&g, ColumnOrdering::AmdBtf, Precision::F64),
        "identical inputs must reproduce the same key"
    );
}
