//! End-to-end serving-tier tests: spawn `ohmflow-serve`'s server
//! in-process on an ephemeral port and drive it over real TCP sockets —
//! DIMACS and binary ingest, repeated solves riding the plan cache,
//! concurrent clients, and the per-request error path.

use std::net::TcpStream;

use ohmflow::solver::facade::{MaxFlowSolver, SolveOptions};
use ohmflow::GraphDelta;
use ohmflow_apps::serve::{self, ServeConfig, TAG_BINARY, TAG_DIMACS};
use ohmflow_graph::{binfmt, dimacs, generators, FlowNetwork};

fn spawn_server(workers: usize) -> serve::ServerHandle {
    serve::spawn(
        "127.0.0.1:0",
        ServeConfig {
            workers,
            options: SolveOptions::ideal(),
        },
    )
    .expect("bind ephemeral port")
}

/// A DIMACS round trip returns the same flow value and edge flows as an
/// in-process facade solve, plus coherent telemetry.
#[test]
fn dimacs_round_trip_matches_local_solve() {
    let g = generators::fig5a();
    let local = MaxFlowSolver::new(SolveOptions::ideal())
        .solve(&g)
        .expect("local solve");

    let server = spawn_server(2);
    let mut conn = TcpStream::connect(server.addr()).expect("connect");
    let text = dimacs::write(&g);
    let resp = serve::request(&mut conn, TAG_DIMACS, text.as_bytes()).expect("solve over TCP");

    assert!(
        (resp.value - local.value).abs() < 1e-9 * local.value.abs().max(1.0),
        "served {} vs local {}",
        resp.value,
        local.value
    );
    assert_eq!(resp.edge_flows.len(), g.edge_count());
    for (e, (a, b)) in resp.edge_flows.iter().zip(&local.edge_flows).enumerate() {
        assert!(
            (a - b).abs() < 1e-9 * b.abs().max(1.0),
            "edge {e}: {a} vs {b}"
        );
    }
    assert!(resp.iterations >= 1, "telemetry must carry real counters");
    assert!(resp.factor_nnz > 0);
    assert!(resp.block_count >= 1);

    // Second identical request on the same connection: the plan cache is
    // warm now, so the answer must ride a template.
    let resp2 = serve::request(&mut conn, TAG_DIMACS, text.as_bytes()).expect("repeat solve");
    assert!(resp2.templated, "repeat topology must hit the plan cache");
    assert!((resp2.value - resp.value).abs() < 1e-9 * resp.value.abs().max(1.0));

    drop(conn);
    server.shutdown();
}

/// Binary (`OFG1`) ingest agrees with DIMACS ingest of the same graph.
#[test]
fn binary_ingest_matches_dimacs_ingest() {
    let g = generators::fig15a(16);
    let server = spawn_server(2);
    let mut conn = TcpStream::connect(server.addr()).expect("connect");

    let via_text =
        serve::request(&mut conn, TAG_DIMACS, dimacs::write(&g).as_bytes()).expect("dimacs solve");
    let via_bin =
        serve::request(&mut conn, TAG_BINARY, &binfmt::write_binary(&g)).expect("binary solve");
    assert!(
        (via_text.value - via_bin.value).abs() < 1e-9 * via_text.value.abs().max(1.0),
        "ingest paths disagree: {} vs {}",
        via_bin.value,
        via_text.value
    );
    assert_eq!(via_text.edge_flows.len(), via_bin.edge_flows.len());

    drop(conn);
    server.shutdown();
}

/// Several concurrent clients hammering two topologies all get correct
/// answers — the worker pool, batching funnel and shared plan cache under
/// real socket concurrency.
#[test]
fn concurrent_clients_get_correct_answers() {
    let graphs = [generators::fig5a(), generators::fig15a(12)];
    let expected: Vec<f64> = graphs
        .iter()
        .map(|g| {
            MaxFlowSolver::new(SolveOptions::ideal())
                .solve(g)
                .expect("local solve")
                .value
        })
        .collect();
    let payloads: Vec<Vec<u8>> = graphs.iter().map(binfmt::write_binary).collect();

    let server = spawn_server(4);
    let addr = server.addr();
    let handles: Vec<_> = (0..6)
        .map(|c| {
            let payloads = payloads.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut conn = TcpStream::connect(addr).expect("connect");
                for round in 0..4 {
                    let i = (c + round) % payloads.len();
                    let resp = serve::request(&mut conn, TAG_BINARY, &payloads[i])
                        .expect("concurrent solve");
                    assert!(
                        (resp.value - expected[i]).abs() < 1e-9 * expected[i].abs().max(1.0),
                        "client {c} round {round}: {} vs {}",
                        resp.value,
                        expected[i]
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    server.shutdown();
}

/// Malformed requests get error responses — and the connection (and
/// server) keep serving afterwards.
#[test]
fn bad_requests_report_errors_without_poisoning_the_connection() {
    let server = spawn_server(1);
    let mut conn = TcpStream::connect(server.addr()).expect("connect");

    let garbage = serve::request(&mut conn, TAG_DIMACS, b"this is not dimacs");
    assert!(garbage.is_err(), "garbage DIMACS must be rejected");
    let bad_tag = serve::request(&mut conn, 42, b"");
    assert!(bad_tag.unwrap_err().contains("unknown request tag"));
    let bad_magic = serve::request(&mut conn, TAG_BINARY, b"NOPE");
    assert!(bad_magic.is_err(), "bad OFG1 magic must be rejected");

    // The same connection still solves fine.
    let g = generators::fig5a();
    let resp =
        serve::request(&mut conn, TAG_BINARY, &binfmt::write_binary(&g)).expect("recovery solve");
    assert!(resp.value > 0.0);

    drop(conn);
    server.shutdown();
}

/// A delta session over real sockets: open, stream capacity + topology
/// deltas, and verify every answer against a fresh local solve of the
/// evolved graph at 1e-9 — then close and verify the id dies.
#[test]
fn delta_session_round_trip_tracks_fresh_solves() {
    let g = generators::fig5a();
    let solver = MaxFlowSolver::new(SolveOptions::ideal());
    let fresh = |g: &FlowNetwork| solver.solve_fresh(g).expect("fresh solve").value;

    let server = spawn_server(2);
    let mut conn = TcpStream::connect(server.addr()).expect("connect");

    let opened = serve::open_session(&mut conn, TAG_BINARY, &binfmt::write_binary(&g))
        .expect("open session");
    assert!(
        (opened.value - fresh(&g)).abs() < 1e-9,
        "opening answer {} vs fresh {}",
        opened.value,
        fresh(&g)
    );
    assert_eq!(opened.edge_flows.len(), g.edge_count());
    let id = opened.session_id;

    // Capacity drift + removal + insertion, each checked against a local
    // fresh solve of the same evolved graph.
    let live = {
        let mut h = FlowNetwork::new(g.vertex_count(), g.source(), g.sink()).unwrap();
        for (k, e) in g.edges().iter().enumerate() {
            h.add_edge(e.from, e.to, if k == 0 { 7 } else { e.capacity })
                .unwrap();
        }
        h
    };
    let resp = serve::apply_deltas(
        &mut conn,
        id,
        &[GraphDelta::SetCapacity {
            edge: 0,
            capacity: 7,
        }],
    )
    .expect("capacity delta");
    assert!(
        (resp.value - fresh(&live)).abs() < 1e-9,
        "capacity delta {} vs fresh {}",
        resp.value,
        fresh(&live)
    );
    assert!(!resp.replanned, "capacity updates stay value-only");

    let removed = {
        let mut h = FlowNetwork::new(live.vertex_count(), live.source(), live.sink()).unwrap();
        for (k, e) in live.edges().iter().enumerate() {
            if k != 1 {
                h.add_edge(e.from, e.to, e.capacity).unwrap();
            }
        }
        h
    };
    let resp = serve::apply_deltas(&mut conn, id, &[GraphDelta::RemoveEdge { edge: 1 }])
        .expect("remove delta");
    assert!(
        (resp.value - fresh(&removed)).abs() < 1e-9,
        "removal {} vs fresh {}",
        resp.value,
        fresh(&removed)
    );
    assert_eq!(resp.edge_flows[1], 0.0, "removed edge reports zero flow");

    let inserted = {
        let mut h =
            FlowNetwork::new(removed.vertex_count(), removed.source(), removed.sink()).unwrap();
        for e in removed.edges() {
            h.add_edge(e.from, e.to, e.capacity).unwrap();
        }
        h.add_edge(1, 3, 4).unwrap();
        h
    };
    let resp = serve::apply_deltas(
        &mut conn,
        id,
        &[GraphDelta::InsertEdge {
            from: 1,
            to: 3,
            capacity: 4,
        }],
    )
    .expect("insert delta");
    assert!(
        (resp.value - fresh(&inserted)).abs() < 1e-9,
        "insertion {} vs fresh {}",
        resp.value,
        fresh(&inserted)
    );
    assert_eq!(resp.new_edge_ids, vec![g.edge_count() as u64]);
    assert!(resp.replanned, "novel structure re-keys");

    // Invalid batches are rejected without killing the session.
    let err = serve::apply_deltas(&mut conn, id, &[GraphDelta::RemoveEdge { edge: 999 }]);
    assert!(err.is_err(), "invalid batch must be rejected");
    let resp = serve::apply_deltas(&mut conn, id, &[]).expect("session survives rejection");
    assert!((resp.value - fresh(&inserted)).abs() < 1e-9);

    // Close, then the id is gone.
    assert_eq!(serve::close_session(&mut conn, id), Ok(id));
    let gone = serve::apply_deltas(&mut conn, id, &[]);
    assert!(
        gone.unwrap_err().contains("unknown or busy"),
        "closed sessions must be unknown"
    );

    drop(conn);
    server.shutdown();
}
