//! Fingerprint-probe safety: the plan cache serves on a fingerprint match
//! *verified* by a full key comparison, so near-identical topologies —
//! one edge added, removed or reversed — must never be served each
//! other's plans, and the streaming fingerprint itself must discriminate
//! them (the verify step exists for the astronomically-unlikely collision,
//! not as a routine crutch).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ohmflow::solver::facade::{MaxFlowSolver, SolveOptions};
use ohmflow::TemplateKey;
use ohmflow_circuit::{ColumnOrdering, Precision};
use ohmflow_graph::FlowNetwork;

/// A random connected flow network: source→sink spine plus random chords.
fn random_graph(rng: &mut StdRng) -> FlowNetwork {
    let n = rng.gen_range(4..10);
    let mut g = FlowNetwork::new(n, 0, n - 1).expect("endpoints");
    for v in 0..n - 1 {
        g.add_edge(v, v + 1, rng.gen_range(1..=20)).expect("spine");
    }
    for _ in 0..rng.gen_range(1..2 * n) {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            let _ = g.add_edge(a, b, rng.gen_range(1..=20));
        }
    }
    g
}

/// Rebuilds `g` with exactly one structural mutation: edge `i` dropped,
/// reversed, or an extra edge appended. Returns `None` when the mutation
/// is not applicable (e.g. the reversed edge already exists as a
/// self-loop guard failure).
fn mutate(g: &FlowNetwork, which: usize, i: usize) -> Option<FlowNetwork> {
    let edges = g.edges();
    let i = i % edges.len();
    let mut out = FlowNetwork::new(g.vertex_count(), g.source(), g.sink()).ok()?;
    match which % 3 {
        // Drop edge i.
        0 => {
            for (k, e) in edges.iter().enumerate() {
                if k != i {
                    out.add_edge(e.from, e.to, e.capacity).ok()?;
                }
            }
        }
        // Reverse edge i.
        1 => {
            for (k, e) in edges.iter().enumerate() {
                if k == i {
                    out.add_edge(e.to, e.from, e.capacity).ok()?;
                } else {
                    out.add_edge(e.from, e.to, e.capacity).ok()?;
                }
            }
        }
        // Append one extra edge between the first non-adjacent pair.
        _ => {
            for e in edges {
                out.add_edge(e.from, e.to, e.capacity).ok()?;
            }
            let n = g.vertex_count();
            let (a, b) = ((i % n), ((i + 1) % n));
            if a == b {
                return None;
            }
            out.add_edge(a, b, 7).ok()?;
        }
    }
    (out.edges() != g.edges()).then_some(out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The streaming fingerprint and the full key both separate a graph
    /// from every single-edge mutation of it, and key verification
    /// refuses the mutated graph outright.
    #[test]
    fn fingerprint_and_key_separate_single_edge_mutations(
        seed in any::<u64>(),
        which in any::<u64>(),
        i in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_graph(&mut rng);
        let (ordering, precision) = (ColumnOrdering::default(), Precision::default());
        if let Some(m) = mutate(&g, which as usize, i as usize) {
            let fp_g = TemplateKey::fingerprint(&g, ordering, precision);
            let fp_m = TemplateKey::fingerprint(&m, ordering, precision);
            prop_assert_ne!(
                fp_g, fp_m,
                "single-edge mutation collided the streaming fingerprint"
            );

            let key = TemplateKey::with_lu(&g, ordering, precision);
            prop_assert_eq!(key.fingerprint_value(), fp_g, "key hash IS the fingerprint");
            prop_assert!(key.verifies(&g, ordering, precision));
            prop_assert!(!key.matches_graph(&m), "verification must refuse the mutation");
        }
    }

    /// Through the real cache: solving a graph and a single-edge mutation
    /// of it from one solver produces two distinct plans, each of whose
    /// keys verifies against its own graph only — the
    /// fingerprint-probe + key-verify pipeline never serves a wrong plan.
    #[test]
    fn cache_never_serves_a_mutated_topology_the_original_plan(
        seed in any::<u64>(),
        which in any::<u64>(),
        i in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_graph(&mut rng);
        if let Some(m) = mutate(&g, which as usize, i as usize) {
            let solver = MaxFlowSolver::new(SolveOptions::ideal());
            let plan_g = solver.plan(&g).expect("plan g");
            // The mutated topology may be legitimately unsolvable (e.g. the
            // spine edge into the sink was dropped); what must never happen
            // is its request being answered by g's plan.
            if let Ok(plan_m) = solver.plan(&m) {
                prop_assert!(!plan_m.cache_hit(), "mutation cannot hit g's plan");
                prop_assert!(plan_m.key().matches_graph(&m));
                prop_assert!(!plan_m.key().matches_graph(&g));
            }
            prop_assert!(plan_g.key().matches_graph(&g));
            prop_assert!(!plan_g.key().matches_graph(&m));

            // And g itself still hits its own (correct) plan.
            let again = solver.plan(&g).expect("replan g");
            prop_assert!(again.cache_hit());
            prop_assert!(again.key().matches_graph(&g));
        }
    }
}
