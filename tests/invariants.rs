//! Property-based invariants across the workspace (proptest).

use proptest::prelude::*;

use ohmflow::quantize::{Quantizer, Rounding};
use ohmflow::solver::facade::{MaxFlowSolver, SolveOptions};
use ohmflow_graph::{dimacs, FlowNetwork};
use ohmflow_linalg::{SparseLu, TripletMatrix};
use ohmflow_maxflow::{dinic, edmonds_karp, min_cut, push_relabel, PushRelabelVariant};

/// Strategy: a random solvable flow network with `n` vertices.
fn arb_network(max_n: usize, max_extra_edges: usize) -> impl Strategy<Value = FlowNetwork> {
    (3..max_n, 0..max_extra_edges, any::<u64>()).prop_map(|(n, extra, seed)| {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = FlowNetwork::new(n, 0, n - 1).expect("n >= 2");
        // A guaranteed s-t path.
        for i in 0..n - 1 {
            g.add_edge(i, i + 1, rng.gen_range(1..=9))
                .expect("path edge");
        }
        for _ in 0..extra {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a != b {
                let _ = g.add_edge(a, b, rng.gen_range(1..=9));
            }
        }
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_maxflow_algorithms_agree(g in arb_network(14, 20)) {
        let a = edmonds_karp(&g);
        let b = dinic(&g);
        let c = push_relabel(&g, PushRelabelVariant::Fifo);
        let d = push_relabel(&g, PushRelabelVariant::HighestLabel);
        prop_assert_eq!(a.value, b.value);
        prop_assert_eq!(a.value, c.value);
        prop_assert_eq!(a.value, d.value);
        prop_assert!(a.is_valid_for(&g));
        prop_assert!(b.is_valid_for(&g));
        prop_assert!(c.is_valid_for(&g));
        prop_assert!(d.is_valid_for(&g));
    }

    #[test]
    fn min_cut_equals_max_flow(g in arb_network(12, 16)) {
        prop_assert_eq!(min_cut(&g).capacity, edmonds_karp(&g).value);
    }

    #[test]
    fn analog_solver_is_optimal_and_feasible(g in arb_network(10, 10)) {
        let exact = edmonds_karp(&g).value as f64;
        let mut cfg = SolveOptions::ideal();
        cfg.params.v_flow = 800.0;
        let sol = MaxFlowSolver::new(cfg).solve_fresh(&g).unwrap();
        // Clamp overshoot scales with the drive current through the
        // conducting diodes (~r_on/r · V_flow), so allow a small absolute
        // floor on top of the relative band.
        let err = (sol.value - exact).abs();
        prop_assert!(
            err < 0.02 * exact + 0.05,
            "analog {} vs exact {}",
            sol.value,
            exact
        );
        prop_assert!(g.validate_flow(&sol.edge_flows, 0.1).is_some());
    }

    #[test]
    fn dimacs_roundtrip(g in arb_network(12, 16)) {
        let text = dimacs::write(&g);
        let back = dimacs::parse(&text).unwrap();
        prop_assert_eq!(g, back);
    }

    #[test]
    fn quantizer_error_is_bounded(
        c in 1i64..1000,
        c_max in 1i64..1000,
        levels in 2u32..64,
        nearest in any::<bool>(),
    ) {
        let c = c.min(c_max);
        let rounding = if nearest { Rounding::Nearest } else { Rounding::Floor };
        let q = Quantizer::with_rounding(levels, 1.0, c_max as f64, rounding);
        let round_trip = q.dequantize(q.quantize(c as f64));
        let err = (round_trip - c as f64).abs();
        // The positive-capacity clamp (capacities never quantize to zero)
        // can exceed the plain step bound for tiny capacities.
        let bound = q.worst_case_error().max(c_max as f64 / levels as f64);
        prop_assert!(err <= bound + 1e-9, "c={c} err={err} bound={bound}");
        prop_assert!(q.quantize(c as f64) > 0.0);
    }

    #[test]
    fn sparse_lu_solves_diagonally_dominant_systems(
        n in 2usize..12,
        seed in any::<u64>(),
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, rng.gen_range(4.0..8.0));
            let j = rng.gen_range(0..n);
            if j != i {
                t.push(i, j, rng.gen_range(-1.0..1.0));
            }
        }
        let csc = t.to_csc();
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let lu = SparseLu::factor(&csc).unwrap();
        let x = lu.solve(&b).unwrap();
        let ax = csc.mul_vec(&x);
        for (ai, bi) in ax.iter().zip(&b) {
            prop_assert!((ai - bi).abs() < 1e-8);
        }
    }
}
