//! Regression: the incremental frozen-DC engine (persistent session,
//! rank-1 clamp updates, periodic refactorization) must reproduce the
//! reference full-refactor engine's `AnalogSolution` — value, per-edge
//! flows and convergence time — on the paper's worked examples.

use ohmflow::builder::CapacityMapping;
use ohmflow::solver::facade::{MaxFlowSolver, Problem, SolveOptions};
use ohmflow::solver::RelaxationEngine;
use ohmflow::AnalogSolution;
use ohmflow_graph::FlowNetwork;

fn run(g: &FlowNetwork, engine: RelaxationEngine) -> AnalogSolution {
    let mut cfg = SolveOptions::evaluation(10e9);
    cfg.build.capacity_mapping = CapacityMapping::Exact;
    cfg.engine = engine;
    MaxFlowSolver::new(cfg)
        .solve_fresh(g)
        .expect("transient solve")
}

fn assert_engines_agree(g: &FlowNetwork, name: &str) {
    let incremental = run(g, RelaxationEngine::Incremental);
    let reference = run(g, RelaxationEngine::FullRefactor);

    let tol = |r: f64| 1e-9 * r.abs().max(1.0);
    assert!(
        (incremental.value - reference.value).abs() < tol(reference.value),
        "{name}: value {} vs reference {}",
        incremental.value,
        reference.value
    );
    assert!(
        (incremental.value_from_current - reference.value_from_current).abs()
            < tol(reference.value_from_current),
        "{name}: current readout {} vs reference {}",
        incremental.value_from_current,
        reference.value_from_current
    );
    assert_eq!(
        incremental.edge_flows.len(),
        reference.edge_flows.len(),
        "{name}: edge count"
    );
    for (e, (fi, fr)) in incremental
        .edge_flows
        .iter()
        .zip(&reference.edge_flows)
        .enumerate()
    {
        assert!(
            (fi - fr).abs() < tol(*fr),
            "{name}: edge {e} flow {fi} vs reference {fr}"
        );
    }
    // Identical switching sequences sample the same settle instant.
    let ti = incremental.convergence_time.expect("incremental settles");
    let tr = reference.convergence_time.expect("reference settles");
    assert!(
        (ti - tr).abs() < 1e-9 * tr.max(1e-12),
        "{name}: convergence time {ti:.6e} vs reference {tr:.6e}"
    );
}

#[test]
fn incremental_engine_matches_reference_on_fig5a() {
    assert_engines_agree(&ohmflow_graph::generators::fig5a(), "fig5a");
}

#[test]
fn incremental_engine_matches_reference_on_fig15a_100() {
    assert_engines_agree(&ohmflow_graph::generators::fig15a(100), "fig15a(100)");
}

#[test]
fn batch_solve_matches_sequential() {
    let graphs = [
        ohmflow_graph::generators::fig5a(),
        ohmflow_graph::generators::fig15a(100),
        ohmflow_graph::generators::parallel_paths(3, 4).unwrap(),
    ];
    let mut cfg = SolveOptions::ideal();
    cfg.params.v_flow = 400.0;
    let solver = MaxFlowSolver::new(cfg);
    let batch = solver.solve_many(graphs.iter().map(Problem::from));
    assert_eq!(batch.len(), graphs.len());
    for (g, b) in graphs.iter().zip(batch) {
        let b = b.expect("batch solve");
        let s = solver.solve(g).expect("sequential solve");
        // Same-topology batch members (fig5a and fig15a share the diamond
        // topology) ride the shared-template fast path, whose per-edge
        // capacity-source layout is electrically equivalent but not
        // bit-identical to the deduplicated cold-path netlist — agreement
        // is to solver precision, not to the last ulp.
        assert!(
            (b.value - s.value).abs() < 1e-9 * s.value.abs().max(1.0),
            "batch {} vs sequential {}",
            b.value,
            s.value
        );
    }
}
