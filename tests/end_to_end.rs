//! End-to-end integration: graph generation → analog substrate solve →
//! validation against the exact CPU baselines, across workload families and
//! solver modes. These are the cross-crate paths a user of the library
//! exercises.

use ohmflow::builder::CapacityMapping;
use ohmflow::solver::facade::{MaxFlowSolver, SolveOptions};
use ohmflow::solver::SolveMode;
use ohmflow_graph::generators;
use ohmflow_graph::rmat::RmatConfig;
use ohmflow_maxflow::{dinic, edmonds_karp, push_relabel, PushRelabelVariant};

fn ideal_with_drive(v_flow: f64) -> MaxFlowSolver {
    let mut cfg = SolveOptions::ideal();
    cfg.params.v_flow = v_flow;
    MaxFlowSolver::new(cfg)
}

#[test]
fn analog_matches_oracle_on_workload_families() {
    let cases = vec![
        ("fig5a", generators::fig5a()),
        ("fig15a", generators::fig15a(10)),
        ("path", generators::path(&[6, 2, 8, 4]).unwrap()),
        ("parallel", generators::parallel_paths(5, 3).unwrap()),
        ("layered", generators::layered(3, 3, 7, 9).unwrap()),
        ("grid", generators::grid(4, 5, 6, 2).unwrap()),
        ("bipartite", generators::bipartite(6, 6, 2, 5).unwrap()),
    ];
    let solver = ideal_with_drive(400.0);
    for (name, g) in cases {
        let exact = edmonds_karp(&g).value as f64;
        let sol = solver.solve(&g).unwrap_or_else(|e| panic!("{name}: {e}"));
        let rel = (sol.value - exact).abs() / exact.max(1.0);
        assert!(rel < 0.01, "{name}: analog {} vs exact {exact}", sol.value);
        assert!(
            g.validate_flow(&sol.edge_flows, 0.05).is_some(),
            "{name}: infeasible analog flows"
        );
    }
}

#[test]
fn analog_matches_oracle_on_rmat_sweep() {
    let solver = ideal_with_drive(800.0);
    for seed in 0..6 {
        let g = RmatConfig::sparse(32, 50 + seed).generate().unwrap();
        let exact = edmonds_karp(&g).value as f64;
        let sol = solver.solve(&g).unwrap();
        let rel = (sol.value - exact).abs() / exact.max(1.0);
        assert!(rel < 0.01, "seed {seed}: {} vs {exact}", sol.value);
    }
}

#[test]
fn quantized_error_stays_within_paper_envelope() {
    // §5.1 reports ≤ 8 % relative error with N = 20 levels.
    let mut worst = 0.0f64;
    for seed in 0..6 {
        let g = RmatConfig::sparse(28, 70 + seed).generate().unwrap();
        let mut cfg = SolveOptions::ideal();
        cfg.params.v_flow = 800.0;
        cfg.build.capacity_mapping = CapacityMapping::Quantized { levels: 20 };
        let sol = MaxFlowSolver::new(cfg).solve_fresh(&g).unwrap();
        let exact = edmonds_karp(&g).value as f64;
        let rel = (sol.value - exact).abs() / exact.max(1.0);
        worst = worst.max(rel);
    }
    assert!(worst < 0.08, "worst quantized error {worst} exceeds 8%");
}

#[test]
fn transient_and_quasi_static_agree() {
    let g = generators::fig5a();
    let mut qcfg = SolveOptions::ideal();
    qcfg.params.v_flow = 10.0;
    let q = MaxFlowSolver::new(qcfg).solve_fresh(&g).unwrap();

    let mut tcfg = SolveOptions::evaluation(10e9);
    tcfg.build.capacity_mapping = CapacityMapping::Exact;
    tcfg.params.v_flow = 10.0;
    let t = MaxFlowSolver::new(tcfg).solve_fresh(&g).unwrap();

    assert!(
        (q.value - t.value).abs() < 0.05,
        "quasi-static {} vs transient {}",
        q.value,
        t.value
    );
    assert!(t.convergence_time.is_some());
}

#[test]
fn gbw_scaling_matches_fig10_trend() {
    // The §5.1 claim: 50 GHz GBW converges ~5x faster than 10 GHz.
    let g = generators::fig5a();
    let run = |gbw: f64| {
        let mut cfg = SolveOptions::evaluation(gbw);
        cfg.build.capacity_mapping = CapacityMapping::Exact;
        MaxFlowSolver::new(cfg)
            .solve(&g)
            .unwrap()
            .convergence_time
            .unwrap()
    };
    let t10 = run(10e9);
    let t50 = run(50e9);
    let ratio = t10 / t50;
    assert!(
        (3.0..8.0).contains(&ratio),
        "10G/50G convergence ratio {ratio} should be ~5"
    );
}

#[test]
fn all_cpu_baselines_agree_with_each_other() {
    for seed in 0..5 {
        let g = RmatConfig::dense(40, seed).generate().unwrap();
        let a = edmonds_karp(&g).value;
        let b = dinic(&g).value;
        let c = push_relabel(&g, PushRelabelVariant::Fifo).value;
        let d = push_relabel(&g, PushRelabelVariant::HighestLabel).value;
        assert!(a == b && b == c && c == d, "seed {seed}: {a} {b} {c} {d}");
    }
}

#[test]
fn explicit_mode_overrides_work() {
    let g = generators::fig5a();
    let mut cfg = SolveOptions::ideal();
    cfg.params.v_flow = 10.0;
    let tau = cfg.params.opamp.time_constant();
    cfg.mode = SolveMode::Transient {
        window: Some(40.0 * tau),
        dt: Some(tau / 30.0),
    };
    let sol = MaxFlowSolver::new(cfg).solve_fresh(&g).unwrap();
    assert!((sol.value - 2.0).abs() < 0.05);
}
