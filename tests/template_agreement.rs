//! Template correctness: a `SubstrateTemplate::instantiate` + solve must
//! agree with a fresh `build()` + solve to solver precision across random
//! graphs, capacity draws and `BuildOptions`; and one `Arc<SymbolicLu>`
//! must serve concurrent numeric factorizations across rayon workers.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ohmflow::builder::{BuildOptions, CapacityMapping, NegativeResistorImpl};
use ohmflow::solver::facade::{MaxFlowSolver, SolveOptions};
use ohmflow_graph::FlowNetwork;

/// A random small flow network with a guaranteed source→sink spine (so the
/// substrate always has live edges) plus random chords — including edges
/// into the source and out of the sink, which exercise the grounded
/// circulation-edge handling.
fn random_graph(rng: &mut StdRng) -> FlowNetwork {
    let n = rng.gen_range(4..9);
    let mut g = FlowNetwork::new(n, 0, n - 1).expect("endpoints");
    for v in 0..n - 1 {
        g.add_edge(v, v + 1, rng.gen_range(1..=20)).expect("spine");
    }
    for _ in 0..rng.gen_range(0..2 * n) {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            let _ = g.add_edge(a, b, rng.gen_range(1..=20));
        }
    }
    g
}

/// The same topology with freshly drawn capacities.
fn redraw_capacities(g: &FlowNetwork, rng: &mut StdRng) -> FlowNetwork {
    let mut g2 = FlowNetwork::new(g.vertex_count(), g.source(), g.sink()).expect("endpoints");
    for e in g.edges() {
        g2.add_edge(e.from, e.to, rng.gen_range(1..=20))
            .expect("edge");
    }
    g2
}

/// Random build options over the value-compatible axes: capacity mapping
/// (exact or quantized at random `N`), negative-resistor realization, and
/// the finite-gain margin formula.
fn random_build_options(rng: &mut StdRng) -> BuildOptions {
    let mut opts = BuildOptions::ideal();
    opts.capacity_mapping = if rng.gen_bool(0.5) {
        CapacityMapping::Exact
    } else {
        CapacityMapping::Quantized {
            levels: rng.gen_range(5..=30),
        }
    };
    opts.negative_resistor = if rng.gen_bool(0.5) {
        NegativeResistorImpl::Ideal
    } else {
        NegativeResistorImpl::Dynamic
    };
    opts.nic_margin = if rng.gen_bool(0.5) { Some(0.0) } else { None };
    opts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn template_instantiate_agrees_with_fresh_build(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g1 = random_graph(&mut rng);
        let g2 = redraw_capacities(&g1, &mut rng);
        let mut cfg = SolveOptions::ideal();
        cfg.build = random_build_options(&mut rng);
        let solver = MaxFlowSolver::new(cfg);

        // Prime the plan with the first capacity draw, then solve the
        // second through it: the plan path sees only a value restamp.
        let cold1 = solver.solve_fresh(&g1).expect("cold solve g1");
        let warm1 = solver.solve(&g1).expect("planned solve g1");
        let cold2 = solver.solve_fresh(&g2).expect("cold solve g2");
        let warm2 = solver.solve(&g2).expect("planned solve g2");

        let tol = |r: f64| 1e-12 * r.abs().max(1.0);
        for (cold, warm, label) in [(&cold1, &warm1, "g1"), (&cold2, &warm2, "g2")] {
            prop_assert!(
                (warm.value - cold.value).abs() < tol(cold.value),
                "{label}: templated value {} vs fresh {}",
                warm.value,
                cold.value
            );
            for (e, (a, b)) in warm.edge_flows.iter().zip(&cold.edge_flows).enumerate() {
                prop_assert!(
                    (a - b).abs() < tol(*b),
                    "{label}: edge {e} flow {a} vs fresh {b}"
                );
            }
        }
    }

    #[test]
    fn instantiate_direct_agrees_with_fresh_build(seed in any::<u64>()) {
        // The explicit staged path: one plan, a redrawn capacity vector
        // instantiated through it, solved as a built circuit.
        let mut rng = StdRng::seed_from_u64(seed);
        let g1 = random_graph(&mut rng);
        let g2 = redraw_capacities(&g1, &mut rng);
        let mut cfg = SolveOptions::ideal();
        cfg.build = random_build_options(&mut rng);
        let solver = MaxFlowSolver::new(cfg);

        // The staged path: plan g1's topology once, then instantiate the
        // redrawn capacities through it — value-only work.
        let plan = solver.plan(&g1).expect("plan");
        let warm = plan
            .instance(&g2)
            .expect("instance")
            .solve()
            .expect("instance solve");
        let cold = solver.solve_fresh(&g2).expect("cold solve");

        let tol = |r: f64| 1e-12 * r.abs().max(1.0);
        prop_assert!(
            (warm.value - cold.value).abs() < tol(cold.value),
            "value {} vs fresh {}",
            warm.value,
            cold.value
        );
        for (e, (a, b)) in warm.edge_flows.iter().zip(&cold.edge_flows).enumerate() {
            prop_assert!((a - b).abs() < tol(*b), "edge {e} flow {a} vs fresh {b}");
        }
    }
}

#[test]
fn shared_symbolic_serves_concurrent_numeric_factorizations() {
    use ohmflow_linalg::{SparseLu, SymbolicLu, TripletMatrix};
    use rayon::prelude::*;
    use std::sync::Arc;

    // One sparsity pattern (a 2-D grid Laplacian + identity), many value
    // assignments: every rayon worker derives its own numeric factor from
    // the one shared symbolic plan and must reproduce a fresh pivoting
    // factorization's solution.
    let side = 12;
    let n = side * side;
    let grid = |scale_of: &dyn Fn(usize) -> f64| {
        let mut t = TripletMatrix::new(n, n);
        let id = |r: usize, c: usize| r * side + c;
        for r in 0..side {
            for c in 0..side {
                let me = id(r, c);
                let mut deg = 1.0;
                for (nr, nc) in [
                    (r.wrapping_sub(1), c),
                    (r + 1, c),
                    (r, c.wrapping_sub(1)),
                    (r, c + 1),
                ] {
                    if nr < side && nc < side {
                        let w = scale_of(me * n + id(nr, nc));
                        t.push(me, id(nr, nc), -w);
                        deg += w;
                    }
                }
                t.push(me, me, deg);
            }
        }
        t.to_csc()
    };

    let base = grid(&|_| 1.0);
    let lu0 = SparseLu::factor(&base).expect("base factor");
    let sym = Arc::clone(lu0.symbolic());

    let seeds: Vec<u64> = (1..=8).collect();
    let results: Vec<f64> = seeds
        .par_iter()
        .map(|&s| {
            let a = grid(&|k| 1.0 + 0.3 * (((k as u64).wrapping_mul(s) % 7) as f64) / 7.0);
            let b: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.13).sin()).collect();
            let lu = SymbolicLu::numeric(&sym, &a).expect("numeric factor");
            assert!(Arc::ptr_eq(lu.symbolic(), &sym), "symbolic not shared");
            let x = lu.solve(&b).expect("solve");
            let x_ref = SparseLu::factor(&a)
                .expect("fresh")
                .solve(&b)
                .expect("solve");
            let mut max_err = 0.0f64;
            for (xi, ri) in x.iter().zip(&x_ref) {
                max_err = max_err.max((xi - ri).abs());
            }
            max_err
        })
        .collect();
    for (s, err) in seeds.iter().zip(&results) {
        assert!(*err < 1e-10, "seed {s}: max deviation {err}");
    }
}
