//! Delta-session equivalence under random streaming walks: every batch
//! of graph deltas — capacity drift, edge removals, in-place revivals,
//! novel insertions — applied through `DeltaSession::apply_deltas` must
//! leave the session agreeing with a cold fresh solve of its own live
//! graph at 1e-9 on the flow value, no matter which mechanism the batch
//! rode (value-only restamp, rank-k excision surgery, re-key against the
//! plan cache, or a numeric consolidation). The walks are generated so
//! they cross those mechanism boundaries at random; the deterministic
//! per-mechanism cases live next to the implementation in
//! `crates/core/src/solver/delta.rs`.
//!
//! The shadow model here tracks only the session's *id space* (which ids
//! are live and what the endpoints are), fed from `DeltaReport::
//! new_edge_ids` — the graph the session claims to represent is read
//! back through `live_graph()` and re-solved from scratch, so a
//! bookkeeping bug and a numeric bug are both caught by the same
//! comparison.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ohmflow::solver::facade::{MaxFlowSolver, SolveOptions};
use ohmflow::{DeltaBatch, DeltaSession};
use ohmflow_graph::FlowNetwork;

/// A random small flow network with a guaranteed source→sink spine plus
/// random chords (the family the facade-equivalence suite uses). The
/// spine edges are ids `0..n-1`; the walk never removes them, so the
/// live graph always keeps a source→sink path.
fn random_base(rng: &mut StdRng) -> FlowNetwork {
    let n = rng.gen_range(5..9);
    let mut g = FlowNetwork::new(n, 0, n - 1).expect("endpoints");
    for v in 0..n - 1 {
        g.add_edge(v, v + 1, rng.gen_range(1..=20)).expect("spine");
    }
    for _ in 0..rng.gen_range(2..2 * n) {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            let _ = g.add_edge(a, b, rng.gen_range(1..=20));
        }
    }
    g
}

/// Test-side mirror of the session's edge-id space.
#[derive(Clone)]
struct ShadowEdge {
    from: usize,
    to: usize,
    live: bool,
}

/// Session flow value vs a cold fresh solve of the session's live graph,
/// plus conservation/capacity feasibility of the live flows.
fn assert_tracks_fresh(
    session: &DeltaSession,
    solver: &MaxFlowSolver,
    shadow: &[ShadowEdge],
    tag: &str,
) {
    let live = session.live_graph().expect("live graph");
    prop_assert_eq!(
        live.edge_count(),
        shadow.iter().filter(|e| e.live).count(),
        "{}: live graph disagrees with the shadow id space",
        tag
    );
    let fresh = solver.solve_fresh(&live).expect("fresh solve");
    let v = session.flow_value();
    prop_assert!(
        (v - fresh.value).abs() < 1e-9 * fresh.value.abs().max(1.0),
        "{}: session value {} vs fresh {}",
        tag,
        v,
        fresh.value
    );
    // Analog solutions overshoot capacity by the clamp knee (~1e-4
    // relative) — the repo-wide feasibility tolerance is 0.05; value
    // agreement above is the tight check.
    let all = session.edge_flows();
    let live_flows: Vec<f64> = shadow
        .iter()
        .zip(&all)
        .filter(|(e, _)| e.live)
        .map(|(_, f)| *f)
        .collect();
    prop_assert!(
        live.validate_flow(&live_flows, 0.05).is_some(),
        "{}: session flows infeasible on the live graph",
        tag
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Capacity-only drift: a stream of `SetCapacity` batches (including
    /// ones that move the global maximum and force a full level-source
    /// rescale) never re-keys and always tracks the fresh solve.
    #[test]
    fn capacity_walk_tracks_fresh_solves(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_base(&mut rng);
        let solver = MaxFlowSolver::new(SolveOptions::ideal());
        let mut session = solver.delta_session(&g).expect("session");
        session.apply_deltas(&DeltaBatch::new()).expect("opening");
        let shadow: Vec<ShadowEdge> = g
            .edges()
            .iter()
            .map(|e| ShadowEdge { from: e.from, to: e.to, live: true })
            .collect();
        for round in 0..5 {
            let mut batch = DeltaBatch::new();
            for _ in 0..rng.gen_range(1..=3) {
                let edge = rng.gen_range(0..shadow.len());
                batch = batch.set_capacity(edge, rng.gen_range(1..=30));
            }
            let report = session.apply_deltas(&batch).expect("capacity batch");
            prop_assert!(!report.replanned, "round {}: capacity drift re-keyed", round);
            assert_tracks_fresh(&session, &solver, &shadow, &format!("capacity round {round}"));
        }
        prop_assert_eq!(session.replans(), 0, "value-only stream must never re-key");
    }

    /// The full mixed walk: capacity drift, chord removals, revivals and
    /// novel insertions in random proportions, so individual cases land
    /// on every routing — pure restamps, excision surgery on the standing
    /// factor, plan-cache re-keys for novel structure, and consolidation
    /// crossings as the Woodbury rank accumulates.
    #[test]
    fn mixed_delta_walk_tracks_fresh_solves(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_base(&mut rng);
        let n = g.vertex_count();
        let spine = n - 1; // ids `0..spine` are never removed
        let solver = MaxFlowSolver::new(SolveOptions::ideal());
        let mut session = solver.delta_session(&g).expect("session");
        session.apply_deltas(&DeltaBatch::new()).expect("opening");
        let mut shadow: Vec<ShadowEdge> = g
            .edges()
            .iter()
            .map(|e| ShadowEdge { from: e.from, to: e.to, live: true })
            .collect();

        for round in 0..6 {
            let mut batch = DeltaBatch::new();
            let mut staged = shadow.clone();
            for _ in 0..rng.gen_range(1..=3) {
                match rng.gen_range(0..4) {
                    0 => {
                        let live: Vec<usize> = (0..staged.len())
                            .filter(|&i| staged[i].live)
                            .collect();
                        let edge = live[rng.gen_range(0..live.len())];
                        batch = batch.set_capacity(edge, rng.gen_range(1..=30));
                    }
                    1 => {
                        // Remove a live chord (spine stays, so the live
                        // graph keeps a source→sink path).
                        let chords: Vec<usize> = (spine..staged.len())
                            .filter(|&i| staged[i].live)
                            .collect();
                        if let Some(&edge) = chords.get(rng.gen_range(0..chords.len().max(1))) {
                            batch = batch.remove_edge(edge);
                            staged[edge].live = false;
                        }
                    }
                    2 => {
                        // Revive a removed edge in place (value restamp).
                        let dead: Vec<usize> = (0..staged.len())
                            .filter(|&i| !staged[i].live)
                            .collect();
                        if let Some(&edge) = dead.get(rng.gen_range(0..dead.len().max(1))) {
                            let (from, to) = (staged[edge].from, staged[edge].to);
                            batch = batch.insert_edge(from, to, rng.gen_range(1..=30));
                            staged[edge].live = true;
                        }
                    }
                    _ => {
                        // Insert a pair no *live* edge carries: either a
                        // revival of a dead id or genuinely novel
                        // structure (the session decides — the shadow
                        // follows `new_edge_ids` below either way).
                        for _ in 0..8 {
                            let a = rng.gen_range(0..n);
                            let b = rng.gen_range(0..n);
                            let dup = a == b
                                || staged.iter().any(|e| e.live && e.from == a && e.to == b);
                            if !dup {
                                batch = batch.insert_edge(a, b, rng.gen_range(1..=30));
                                staged.push(ShadowEdge { from: a, to: b, live: true });
                                break;
                            }
                        }
                    }
                }
            }
            if batch.is_empty() {
                continue;
            }
            let inserts: Vec<(usize, usize)> = batch
                .deltas()
                .iter()
                .filter_map(|d| match *d {
                    ohmflow::GraphDelta::InsertEdge { from, to, .. } => Some((from, to)),
                    _ => None,
                })
                .collect();
            let report = session.apply_deltas(&batch).expect("mixed batch");

            // Fold the batch into the shadow, using the session's own id
            // assignments for the insertions.
            for d in batch.deltas() {
                if let ohmflow::GraphDelta::RemoveEdge { edge } = *d {
                    shadow[edge].live = false;
                }
            }
            prop_assert_eq!(report.new_edge_ids.len(), inserts.len());
            for (&id, &(from, to)) in report.new_edge_ids.iter().zip(&inserts) {
                if id < shadow.len() {
                    prop_assert_eq!(
                        (shadow[id].from, shadow[id].to),
                        (from, to),
                        "revived id must keep its endpoints"
                    );
                    shadow[id].live = true;
                } else {
                    prop_assert_eq!(id, shadow.len(), "novel ids are assigned densely");
                    shadow.push(ShadowEdge { from, to, live: true });
                }
            }

            assert_tracks_fresh(&session, &solver, &shadow, &format!("mixed round {round}"));
        }
    }
}
