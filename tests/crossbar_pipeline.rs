//! Integration of the reconfigurable-substrate pipeline: crossbar
//! programming (§3.1), tuning (§4.3.2), the §6 extensions (min-cut dual,
//! dual decomposition, clustered architectures), and the §5.2 power model
//! — everything a deployment of the substrate chains together.

use ohmflow::clustered::ClusteredArchitecture;
use ohmflow::crossbar::Crossbar;
use ohmflow::decompose::{DecomposeOptions, DualDecomposition};
use ohmflow::mincut::{cut_from_analog, DualMeshArchitecture};
use ohmflow::power::{EnergyComparison, PowerModel};
use ohmflow::solver::facade::{MaxFlowSolver, SolveOptions};
use ohmflow::tuning::TuningCircuit;
use ohmflow::SubstrateParams;
use ohmflow_graph::generators;
use ohmflow_graph::rmat::RmatConfig;
use ohmflow_graph::FlowNetwork;
use ohmflow_maxflow::min_cut;

#[test]
fn program_solve_reprogram_cycle() {
    let params = SubstrateParams::table1();
    let mut xbar = Crossbar::new(&params, 48).unwrap();
    let mut cfg = SolveOptions::ideal();
    cfg.params.v_flow = 600.0;
    let solver = MaxFlowSolver::new(cfg);

    let mut last_value = None;
    for seed in 0..3u64 {
        let g = RmatConfig::sparse(40, seed).generate().unwrap();
        let rep = xbar.program(&g).unwrap();
        assert_eq!(rep.cycles, 48);
        assert!(xbar.encodes(&g));
        let sol = solver.solve(&g).unwrap();
        let exact = ohmflow_maxflow::edmonds_karp(&g).value as f64;
        assert!(
            (sol.value - exact).abs() / exact.max(1.0) < 0.02,
            "seed {seed}"
        );
        last_value = Some(sol.value);
    }
    assert!(last_value.is_some());
}

#[test]
fn tuning_then_solve_recovers_accuracy() {
    // Tune a parasitic-skewed negation widget, then verify the residual is
    // small enough for the substrate's error budget.
    let mut tc = TuningCircuit::new(10.2e3, 10e3, 5.3e3);
    let before = tc.negation_error().unwrap();
    let result = tc.tune(1e-3, 16).unwrap();
    assert!(result.residual < before, "tuning must improve the widget");
    assert!(result.residual < 1e-3);
}

#[test]
fn dual_readouts_are_consistent() {
    // Max-flow value (primal) == analog-extracted cut (dual certificate)
    // == exact min-cut, end to end.
    let g = generators::grid(4, 4, 5, 8).unwrap();
    let mut cfg = SolveOptions::ideal();
    cfg.params.v_flow = 600.0;
    let sol = MaxFlowSolver::new(cfg).solve_fresh(&g).unwrap();
    let cut = cut_from_analog(&g, &sol.edge_flows, 0.25);
    let exact = min_cut(&g);
    assert_eq!(cut.capacity, exact.capacity);
    assert!((sol.value - exact.capacity as f64).abs() < 0.05);
}

#[test]
fn dual_mesh_and_primal_substrate_agree() {
    let g = generators::fig5a();
    let mesh = DualMeshArchitecture::new(8).unwrap();
    let dual = mesh.solve(&g, 2_000).unwrap();
    let sol = MaxFlowSolver::new(SolveOptions::ideal())
        .solve_fresh(&g)
        .unwrap();
    assert_eq!(dual.rounded_capacity as f64, sol.value.round());
}

#[test]
fn decomposition_handles_a_graph_bigger_than_one_substrate() {
    // Two well-separated communities joined by a thin bridge — the shape
    // §6.4 targets. A substrate too small for the whole 62-vertex graph
    // still fits each ~33-vertex half.
    let mut g = FlowNetwork::new(62, 0, 61).unwrap();
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(7);
    for base in [0usize, 31] {
        for i in 0..31 {
            for _ in 0..3 {
                let j = rng.gen_range(0..31);
                if i != j {
                    let _ = g.add_edge(base + i, base + j, rng.gen_range(1..=9));
                }
            }
        }
    }
    g.add_edge(5, 40, 4).unwrap();
    g.add_edge(12, 52, 3).unwrap();
    // Anchor s and t into their communities so the instance is solvable
    // regardless of the random intra-community wiring direction.
    g.add_edge(0, 5, 9).unwrap();
    g.add_edge(0, 12, 9).unwrap();
    g.add_edge(40, 61, 9).unwrap();
    g.add_edge(52, 61, 9).unwrap();
    assert!(g.sink_reachable());

    let mut params = SubstrateParams::table1();
    params.crossbar_dim = 45; // too small for 62 vertices, fits each half
    let d = DualDecomposition::new(DecomposeOptions::default());
    let r = d.solve(&g, &params).unwrap();
    let opt = min_cut(&g).capacity;
    assert!(r.cut_value >= opt);
    assert!(r.cut_value <= 2 * opt.max(1), "{} vs {opt}", r.cut_value);
    assert!(r.programming_cycles > 0, "reconfiguration cost is tracked");
}

#[test]
fn clustered_mapping_beats_monolithic_area_on_sparse_graphs() {
    let g = RmatConfig::sparse(120, 5).generate().unwrap();
    let arch = ClusteredArchitecture::two_dimensional(3, 3, 20, 4_000);
    let m = arch.map_graph(&g).unwrap();
    assert!(arch.area_advantage(&g, &m) > 1.5);
}

#[test]
fn power_budget_limits_match_section_5_2() {
    let model = PowerModel::paper();
    assert_eq!(model.max_edges(5.0), 10_000);
    assert_eq!(model.max_edges(150.0), 300_000);

    // Energy story: a substrate solving in 1 µs at graph scale vs a CPU
    // spending 1 ms at 100 W is ~4 orders of magnitude more efficient.
    let g = RmatConfig::sparse(100, 1).generate().unwrap();
    let cmp = EnergyComparison::new(&model, &g, 1e-6, 1e-3, 100.0);
    assert!(cmp.efficiency_factor > 1e3);
}
