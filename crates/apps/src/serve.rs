//! The `ohmflow-serve` multi-tenant serving tier: a length-prefixed TCP
//! protocol over the staged [`MaxFlowSolver`] facade.
//!
//! # Wire protocol
//!
//! Every message (both directions) is one *frame*: a `u32` little-endian
//! payload length followed by that many payload bytes. Frames above
//! [`MAX_FRAME_BYTES`] are rejected (a corrupt length prefix must not
//! make the server allocate gigabytes).
//!
//! **Request payload** — one graph to solve:
//!
//! ```text
//! tag     u8    0 = DIMACS max-flow text, 1 = OFG1 binary (ohmflow_graph::binfmt)
//! graph   …     the encoded graph
//! ```
//!
//! **Response payload** — flow value, per-edge flows and solver telemetry:
//!
//! ```text
//! status  u8    0 = ok, 1 = error
//! -- status 0 --
//! value       f64 le    flow value |f| (flow units)
//! m           u32 le    edge count
//! flows       m × f64   per-edge flows, edge-id order
//! iterations  u32 le    state iterations of the DC engine
//! factor_nnz  u64 le    nnz(L)+nnz(U) behind the answer
//! block_count u32 le    BTF diagonal blocks
//! templated   u8        1 when the solve rode a cached plan
//! -- status 1 --
//! message     …         UTF-8 human-readable error
//! ```
//!
//! A connection carries any number of request/response round trips in
//! order; the server answers every request and closes when the client
//! half-closes.
//!
//! # Architecture
//!
//! One acceptor thread hands each connection to its own reader thread;
//! readers decode graphs and enqueue jobs on one shared queue. A pool of
//! worker threads drains the queue in *batches*: each wake-up takes every
//! queued job at once and pushes the batch through
//! [`MaxFlowSolver::solve_many`], so a burst of same-topology requests
//! (the multi-tenant steady state) is fingerprint-grouped through one
//! shared plan and the sharded plan cache amortizes the symbolic cold
//! path across tenants. Per-request errors travel back on the job's reply
//! channel — one bad graph never poisons a batch.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use ohmflow::solver::facade::{MaxFlowSolver, Problem, SolveOptions};
use ohmflow::AnalogSolution;
use ohmflow_graph::{binfmt, dimacs, FlowNetwork};

/// Request tag: DIMACS max-flow text.
pub const TAG_DIMACS: u8 = 0;
/// Request tag: `OFG1` binary graph ([`ohmflow_graph::binfmt`]).
pub const TAG_BINARY: u8 = 1;

/// Hard ceiling on one frame's payload (64 MiB) — large enough for
/// million-edge instances, small enough that a corrupt length prefix
/// cannot drive allocation.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// One solved answer as carried by the wire protocol.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveResponse {
    /// Flow value `|f|` (flow units).
    pub value: f64,
    /// Per-edge flows, edge-id order.
    pub edge_flows: Vec<f64>,
    /// State iterations of the DC engine.
    pub iterations: u32,
    /// `nnz(L) + nnz(U)` of the factorization behind the answer.
    pub factor_nnz: u64,
    /// Diagonal blocks of the block-triangular form.
    pub block_count: u32,
    /// Whether the solve rode a cached plan's shared symbolic work.
    pub templated: bool,
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads draining the solve queue.
    pub workers: usize,
    /// Solver options every request is served under (the plan cache's
    /// byte capacity rides in here — see
    /// [`SolveOptions::with_plan_cache_bytes`]).
    pub options: SolveOptions,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: std::thread::available_parallelism().map_or(2, |n| n.get()),
            options: SolveOptions::ideal(),
        }
    }
}

/// One queued solve: the decoded graph and where its answer goes.
struct Job {
    graph: FlowNetwork,
    reply: mpsc::Sender<Result<AnalogSolution, String>>,
}

/// The shared work queue: jobs in, batch-drained by workers, condvar
/// wake-ups, sticky shutdown flag.
struct Queue {
    jobs: Mutex<VecDeque<Job>>,
    ready: Condvar,
    shutdown: AtomicBool,
}

impl Queue {
    fn new() -> Self {
        Queue {
            jobs: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
        }
    }

    fn push(&self, job: Job) {
        self.jobs.lock().expect("serve queue").push_back(job);
        self.ready.notify_one();
    }

    /// Blocks until work or shutdown; returns every queued job at once
    /// (the batching funnel into `solve_many`).
    fn drain(&self) -> Option<Vec<Job>> {
        let mut jobs = self.jobs.lock().expect("serve queue");
        loop {
            if !jobs.is_empty() {
                return Some(jobs.drain(..).collect());
            }
            if self.shutdown.load(Ordering::SeqCst) {
                return None;
            }
            jobs = self.ready.wait(jobs).expect("serve queue");
        }
    }

    fn close(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.ready.notify_all();
    }
}

/// A running server: bound address plus shutdown/join control. Dropping
/// the handle without calling [`ServerHandle::shutdown`] leaves the
/// server running for the life of the process (the binary's mode).
pub struct ServerHandle {
    addr: SocketAddr,
    queue: Arc<Queue>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl ServerHandle {
    /// The address the server accepts connections on (useful with an
    /// ephemeral `:0` bind).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains in-flight work and joins every thread.
    pub fn shutdown(mut self) {
        self.queue.close();
        // Unblock the acceptor's blocking `accept` with one throwaway
        // connection; it observes the shutdown flag and exits.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Binds `addr` (use port 0 for an ephemeral port) and spawns the
/// acceptor and worker threads.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn spawn(addr: &str, config: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let queue = Arc::new(Queue::new());
    let solver = MaxFlowSolver::new(config.options);

    let workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
        .map(|_| {
            let queue = Arc::clone(&queue);
            // Clones share the sharded plan cache: every worker amortizes
            // every other worker's cold paths.
            let solver = solver.clone();
            std::thread::spawn(move || worker_loop(&queue, &solver))
        })
        .collect();

    let acceptor = {
        let queue = Arc::clone(&queue);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                if queue.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let queue = Arc::clone(&queue);
                std::thread::spawn(move || {
                    let _ = serve_connection(stream, &queue);
                });
            }
        })
    };

    Ok(ServerHandle {
        addr: local,
        queue,
        acceptor: Some(acceptor),
        workers,
    })
}

/// One worker: batch-drain the queue, fan the batch through
/// `solve_many`'s fingerprint grouping, answer every member.
fn worker_loop(queue: &Queue, solver: &MaxFlowSolver) {
    while let Some(batch) = queue.drain() {
        if batch.len() == 1 {
            // No grouping to exploit; skip the rayon fan-out.
            let job = batch.into_iter().next().expect("one job");
            let result = solver.solve(&job.graph).map_err(|e| e.to_string());
            let _ = job.reply.send(result);
            continue;
        }
        let results = solver.solve_many(batch.iter().map(|j| Problem::Graph(&j.graph)));
        for (job, result) in batch.into_iter().zip(results) {
            let _ = job.reply.send(result.map_err(|e| e.to_string()));
        }
    }
}

/// One connection: frames in, frames out, in order, until EOF.
fn serve_connection(mut stream: TcpStream, queue: &Queue) -> std::io::Result<()> {
    loop {
        let Some(payload) = read_frame(&mut stream)? else {
            return Ok(()); // clean EOF between frames
        };
        let response = match decode_request(&payload) {
            Ok(graph) => {
                let (tx, rx) = mpsc::channel();
                queue.push(Job { graph, reply: tx });
                match rx.recv() {
                    Ok(Ok(sol)) => encode_ok(&sol),
                    Ok(Err(msg)) => encode_err(&msg),
                    Err(_) => encode_err("server shutting down"),
                }
            }
            Err(msg) => encode_err(&msg),
        };
        write_frame(&mut stream, &response)?;
    }
}

/// Reads one length-prefixed frame; `Ok(None)` on clean EOF at a frame
/// boundary.
///
/// # Errors
///
/// I/O failures, truncation inside a frame, oversized length prefixes.
pub fn read_frame(stream: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match stream.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"),
        ));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// I/O failures; payloads above [`MAX_FRAME_BYTES`].
pub fn write_frame(stream: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame exceeds the payload limit",
        ));
    }
    stream.write_all(&(payload.len() as u32).to_le_bytes())?;
    stream.write_all(payload)?;
    stream.flush()
}

/// Builds a request payload from an already-encoded graph body.
pub fn encode_request(tag: u8, graph_bytes: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(1 + graph_bytes.len());
    payload.push(tag);
    payload.extend_from_slice(graph_bytes);
    payload
}

/// Decodes a request payload into the graph it carries.
fn decode_request(payload: &[u8]) -> Result<FlowNetwork, String> {
    let (&tag, body) = payload
        .split_first()
        .ok_or_else(|| "empty request payload".to_owned())?;
    match tag {
        TAG_DIMACS => {
            let text =
                std::str::from_utf8(body).map_err(|e| format!("DIMACS body is not UTF-8: {e}"))?;
            dimacs::parse(text).map_err(|e| e.to_string())
        }
        TAG_BINARY => binfmt::parse_binary(body).map_err(|e| e.to_string()),
        other => Err(format!("unknown request tag {other}")),
    }
}

fn encode_ok(sol: &AnalogSolution) -> Vec<u8> {
    let m = sol.edge_flows.len();
    let mut payload = Vec::with_capacity(1 + 8 + 4 + m * 8 + 4 + 8 + 4 + 1);
    payload.push(0);
    payload.extend_from_slice(&sol.value.to_le_bytes());
    payload.extend_from_slice(&(m as u32).to_le_bytes());
    for f in &sol.edge_flows {
        payload.extend_from_slice(&f.to_le_bytes());
    }
    payload.extend_from_slice(&(sol.report.iterations as u32).to_le_bytes());
    payload.extend_from_slice(&(sol.report.factor_nnz as u64).to_le_bytes());
    payload.extend_from_slice(&(sol.report.block_count as u32).to_le_bytes());
    payload.push(u8::from(sol.report.templated));
    payload
}

fn encode_err(message: &str) -> Vec<u8> {
    let mut payload = Vec::with_capacity(1 + message.len());
    payload.push(1);
    payload.extend_from_slice(message.as_bytes());
    payload
}

/// Decodes a response payload: `Ok` carries the solved answer, `Err` the
/// server-reported message.
///
/// # Errors
///
/// `Err(String)` both for server-reported errors (status 1) and for
/// malformed payloads.
pub fn decode_response(payload: &[u8]) -> Result<SolveResponse, String> {
    let (&status, body) = payload
        .split_first()
        .ok_or_else(|| "empty response payload".to_owned())?;
    if status == 1 {
        return Err(String::from_utf8_lossy(body).into_owned());
    }
    if status != 0 {
        return Err(format!("unknown response status {status}"));
    }
    let take = |body: &[u8], at: usize, n: usize| -> Result<Vec<u8>, String> {
        body.get(at..at + n)
            .map(<[u8]>::to_vec)
            .ok_or_else(|| "truncated response".to_owned())
    };
    let f64_at = |at: usize| -> Result<f64, String> {
        Ok(f64::from_le_bytes(take(body, at, 8)?.try_into().unwrap()))
    };
    let u32_at = |at: usize| -> Result<u32, String> {
        Ok(u32::from_le_bytes(take(body, at, 4)?.try_into().unwrap()))
    };
    let value = f64_at(0)?;
    let m = u32_at(8)? as usize;
    let mut edge_flows = Vec::with_capacity(m);
    for i in 0..m {
        edge_flows.push(f64_at(12 + i * 8)?);
    }
    let tail = 12 + m * 8;
    let iterations = u32_at(tail)?;
    let factor_nnz = u64::from_le_bytes(take(body, tail + 4, 8)?.try_into().unwrap());
    let block_count = u32_at(tail + 12)?;
    let templated = *body
        .get(tail + 16)
        .ok_or_else(|| "truncated response".to_owned())?
        != 0;
    Ok(SolveResponse {
        value,
        edge_flows,
        iterations,
        factor_nnz,
        block_count,
        templated,
    })
}

/// Client convenience: one request/response round trip on an open
/// connection.
///
/// # Errors
///
/// `Err(String)` for transport failures, server-reported errors and
/// malformed responses.
pub fn request(
    stream: &mut TcpStream,
    tag: u8,
    graph_bytes: &[u8],
) -> Result<SolveResponse, String> {
    write_frame(stream, &encode_request(tag, graph_bytes)).map_err(|e| e.to_string())?;
    let payload = read_frame(stream)
        .map_err(|e| e.to_string())?
        .ok_or_else(|| "connection closed before response".to_owned())?;
    decode_response(&payload)
}
