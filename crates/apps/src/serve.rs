//! The `ohmflow-serve` multi-tenant serving tier: a length-prefixed TCP
//! protocol over the staged [`MaxFlowSolver`] facade.
//!
//! # Wire protocol
//!
//! Every message (both directions) is one *frame*: a `u32` little-endian
//! payload length followed by that many payload bytes. Frames above
//! [`MAX_FRAME_BYTES`] are rejected (a corrupt length prefix must not
//! make the server allocate gigabytes).
//!
//! **Request payload** — one graph to solve:
//!
//! ```text
//! tag     u8    0 = DIMACS max-flow text, 1 = OFG1 binary (ohmflow_graph::binfmt)
//! graph   …     the encoded graph
//! ```
//!
//! **Response payload** — flow value, per-edge flows and solver telemetry:
//!
//! ```text
//! status  u8    0 = ok, 1 = error
//! -- status 0 --
//! value       f64 le    flow value |f| (flow units)
//! m           u32 le    edge count
//! flows       m × f64   per-edge flows, edge-id order
//! iterations  u32 le    state iterations of the DC engine
//! factor_nnz  u64 le    nnz(L)+nnz(U) behind the answer
//! block_count u32 le    BTF diagonal blocks
//! templated   u8        1 when the solve rode a cached plan
//! -- status 1 --
//! message     …         UTF-8 human-readable error
//! ```
//!
//! A connection carries any number of request/response round trips in
//! order; the server answers every request and closes when the client
//! half-closes.
//!
//! # Delta sessions
//!
//! Three further tags expose streaming [`DeltaSession`]s — one live
//! analog substrate absorbing graph deltas across requests:
//!
//! ```text
//! tag 2 (open)   sub-tag u8 (0/1 as above) + encoded graph
//! tag 3 (apply)  session u64 le, count u32 le, then per delta:
//!                  kind 0: edge u64, capacity i64   (set capacity)
//!                  kind 1: edge u64                 (remove edge)
//!                  kind 2: from u64, to u64, capacity i64 (insert edge)
//! tag 4 (close)  session u64 le
//! ```
//!
//! Open and apply answer with a **delta response** (status `0`, session
//! id, flow value, per-session-edge flows, ids assigned to the batch's
//! inserts, replanned/consolidated flags, state iterations); close echoes
//! the session id. Session ids are process-global: a session opened on
//! one connection may be driven from another. Requests for the same
//! session are serialized by checking the session out of the registry for
//! the duration of its solve — a concurrent request for a checked-out id
//! reports `session … unknown or busy` rather than blocking the
//! connection.
//!
//! # Architecture
//!
//! One acceptor thread hands each connection to its own reader thread;
//! readers decode graphs and enqueue jobs on one shared queue. A pool of
//! worker threads drains the queue in *batches*: each wake-up takes every
//! queued job at once and pushes the batch through
//! [`MaxFlowSolver::solve_many`], so a burst of same-topology requests
//! (the multi-tenant steady state) is fingerprint-grouped through one
//! shared plan and the sharded plan cache amortizes the symbolic cold
//! path across tenants. Per-request errors travel back on the job's reply
//! channel — one bad graph never poisons a batch.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use ohmflow::solver::facade::{MaxFlowSolver, Problem, SolveOptions};
use ohmflow::{AnalogSolution, DeltaBatch, DeltaReport, DeltaSession, GraphDelta};
use ohmflow_graph::{binfmt, dimacs, FlowNetwork};

/// Request tag: DIMACS max-flow text.
pub const TAG_DIMACS: u8 = 0;
/// Request tag: `OFG1` binary graph ([`ohmflow_graph::binfmt`]).
pub const TAG_BINARY: u8 = 1;
/// Request tag: open a [`DeltaSession`] on the carried graph.
pub const TAG_OPEN_SESSION: u8 = 2;
/// Request tag: apply a delta batch to an open session.
pub const TAG_APPLY_DELTAS: u8 = 3;
/// Request tag: close a session.
pub const TAG_CLOSE_SESSION: u8 = 4;

/// Hard ceiling on one frame's payload (64 MiB) — large enough for
/// million-edge instances, small enough that a corrupt length prefix
/// cannot drive allocation.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// One solved answer as carried by the wire protocol.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveResponse {
    /// Flow value `|f|` (flow units).
    pub value: f64,
    /// Per-edge flows, edge-id order.
    pub edge_flows: Vec<f64>,
    /// State iterations of the DC engine.
    pub iterations: u32,
    /// `nnz(L) + nnz(U)` of the factorization behind the answer.
    pub factor_nnz: u64,
    /// Diagonal blocks of the block-triangular form.
    pub block_count: u32,
    /// Whether the solve rode a cached plan's shared symbolic work.
    pub templated: bool,
}

/// One delta-session answer (open or apply) as carried by the wire
/// protocol.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaResponse {
    /// Process-global session id.
    pub session_id: u64,
    /// Flow value `|f|` (flow units) after the batch.
    pub value: f64,
    /// Per-edge flows in **session id** order (removed edges report 0).
    pub edge_flows: Vec<f64>,
    /// Session ids assigned to the batch's inserts, batch order.
    pub new_edge_ids: Vec<u64>,
    /// Whether the batch re-keyed against the plan cache.
    pub replanned: bool,
    /// Whether the numeric consolidation budget refactored afterwards.
    pub consolidated: bool,
    /// Complementarity iterations the solve took.
    pub state_iterations: u32,
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads draining the solve queue.
    pub workers: usize,
    /// Solver options every request is served under (the plan cache's
    /// byte capacity rides in here — see
    /// [`SolveOptions::with_plan_cache_bytes`]).
    pub options: SolveOptions,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: std::thread::available_parallelism().map_or(2, |n| n.get()),
            options: SolveOptions::ideal(),
        }
    }
}

/// Process-global registry of open [`DeltaSession`]s. Sessions are
/// checked *out* of the map for the duration of a solve, so the registry
/// lock is only ever held for map operations.
struct Sessions {
    next_id: std::sync::atomic::AtomicU64,
    open: Mutex<std::collections::HashMap<u64, DeltaSession>>,
}

impl Sessions {
    fn new() -> Self {
        Sessions {
            next_id: std::sync::atomic::AtomicU64::new(1),
            open: Mutex::new(std::collections::HashMap::new()),
        }
    }

    fn insert_new(&self, session: DeltaSession) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.open
            .lock()
            .expect("invariant: session-registry lock is never poisoned")
            .insert(id, session);
        id
    }

    fn check_out(&self, id: u64) -> Option<DeltaSession> {
        self.open
            .lock()
            .expect("invariant: session-registry lock is never poisoned")
            .remove(&id)
    }

    fn check_in(&self, id: u64, session: DeltaSession) {
        self.open
            .lock()
            .expect("invariant: session-registry lock is never poisoned")
            .insert(id, session);
    }
}

/// One queued solve: the decoded graph and where its answer goes.
struct Job {
    graph: FlowNetwork,
    reply: mpsc::Sender<Result<AnalogSolution, String>>,
}

/// The shared work queue: jobs in, batch-drained by workers, condvar
/// wake-ups, sticky shutdown flag.
struct Queue {
    jobs: Mutex<VecDeque<Job>>,
    ready: Condvar,
    shutdown: AtomicBool,
}

impl Queue {
    fn new() -> Self {
        Queue {
            jobs: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
        }
    }

    fn push(&self, job: Job) {
        self.jobs
            .lock()
            .expect("invariant: serve-queue lock is never poisoned")
            .push_back(job);
        self.ready.notify_one();
    }

    /// Blocks until work or shutdown; returns every queued job at once
    /// (the batching funnel into `solve_many`).
    fn drain(&self) -> Option<Vec<Job>> {
        let mut jobs = self
            .jobs
            .lock()
            .expect("invariant: serve-queue lock is never poisoned");
        loop {
            if !jobs.is_empty() {
                return Some(jobs.drain(..).collect());
            }
            if self.shutdown.load(Ordering::SeqCst) {
                return None;
            }
            jobs = self
                .ready
                .wait(jobs)
                .expect("invariant: serve-queue lock is never poisoned");
        }
    }

    fn close(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.ready.notify_all();
    }
}

/// A running server: bound address plus shutdown/join control. Dropping
/// the handle without calling [`ServerHandle::shutdown`] leaves the
/// server running for the life of the process (the binary's mode).
pub struct ServerHandle {
    addr: SocketAddr,
    queue: Arc<Queue>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl ServerHandle {
    /// The address the server accepts connections on (useful with an
    /// ephemeral `:0` bind).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains in-flight work and joins every thread.
    pub fn shutdown(mut self) {
        self.queue.close();
        // Unblock the acceptor's blocking `accept` with one throwaway
        // connection; it observes the shutdown flag and exits.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Binds `addr` (use port 0 for an ephemeral port) and spawns the
/// acceptor and worker threads.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn spawn(addr: &str, config: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let queue = Arc::new(Queue::new());
    let sessions = Arc::new(Sessions::new());
    let solver = MaxFlowSolver::new(config.options);

    let workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
        .map(|_| {
            let queue = Arc::clone(&queue);
            // Clones share the sharded plan cache: every worker amortizes
            // every other worker's cold paths.
            let solver = solver.clone();
            std::thread::spawn(move || worker_loop(&queue, &solver))
        })
        .collect();

    let acceptor = {
        let queue = Arc::clone(&queue);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                if queue.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let queue = Arc::clone(&queue);
                let sessions = Arc::clone(&sessions);
                // Session frames solve on the connection thread (they are
                // stateful and per-session serialized); stateless solves
                // still funnel through the shared worker queue.
                let solver = solver.clone();
                std::thread::spawn(move || {
                    let _ = serve_connection(stream, &queue, &sessions, &solver);
                });
            }
        })
    };

    Ok(ServerHandle {
        addr: local,
        queue,
        acceptor: Some(acceptor),
        workers,
    })
}

/// One worker: batch-drain the queue, fan the batch through
/// `solve_many`'s fingerprint grouping, answer every member.
fn worker_loop(queue: &Queue, solver: &MaxFlowSolver) {
    while let Some(batch) = queue.drain() {
        if batch.len() == 1 {
            // No grouping to exploit; skip the rayon fan-out. Plan
            // explicitly rather than `solve`: a server's workload is
            // repeated topologies, which amortize a plan even below the
            // adaptive small-instance threshold that makes one-shot
            // `solve` calls skip plan building.
            let job = batch
                .into_iter()
                .next()
                .expect("invariant: drained batches are nonempty");
            let result = solver
                .plan(&job.graph)
                .and_then(|p| p.instance(&job.graph)?.solve())
                .map_err(|e| e.to_string());
            let _ = job.reply.send(result);
            continue;
        }
        let results = solver.solve_many(batch.iter().map(|j| Problem::Graph(&j.graph)));
        for (job, result) in batch.into_iter().zip(results) {
            let _ = job.reply.send(result.map_err(|e| e.to_string()));
        }
    }
}

/// One connection: frames in, frames out, in order, until EOF.
fn serve_connection(
    mut stream: TcpStream,
    queue: &Queue,
    sessions: &Sessions,
    solver: &MaxFlowSolver,
) -> std::io::Result<()> {
    loop {
        let Some(payload) = read_frame(&mut stream)? else {
            return Ok(()); // clean EOF between frames
        };
        let response = match payload.first() {
            Some(&TAG_OPEN_SESSION) | Some(&TAG_APPLY_DELTAS) | Some(&TAG_CLOSE_SESSION) => {
                handle_session_frame(&payload, sessions, solver)
            }
            _ => match decode_request(&payload) {
                Ok(graph) => {
                    let (tx, rx) = mpsc::channel();
                    queue.push(Job { graph, reply: tx });
                    match rx.recv() {
                        Ok(Ok(sol)) => encode_ok(&sol),
                        Ok(Err(msg)) => encode_err(&msg),
                        Err(_) => encode_err("server shutting down"),
                    }
                }
                Err(msg) => encode_err(&msg),
            },
        };
        write_frame(&mut stream, &response)?;
    }
}

/// Serves one delta-session frame (open / apply / close) and encodes the
/// answer. Errors come back as status-1 payloads; an invalid batch leaves
/// its session open and untouched (the session's own atomicity).
fn handle_session_frame(payload: &[u8], sessions: &Sessions, solver: &MaxFlowSolver) -> Vec<u8> {
    let (&tag, body) = payload
        .split_first()
        .expect("invariant: framed payloads carry a tag byte");
    match tag {
        TAG_OPEN_SESSION => {
            let graph = match decode_request(body) {
                Ok(g) => g,
                Err(msg) => return encode_err(&msg),
            };
            let mut session = match solver.delta_session(&graph) {
                Ok(s) => s,
                Err(e) => return encode_err(&e.to_string()),
            };
            // The opening answer is the empty batch's solve.
            match session.apply_deltas(&DeltaBatch::new()) {
                Ok(report) => {
                    let id = sessions.insert_new(session);
                    encode_delta_ok(id, &report)
                }
                Err(e) => encode_err(&e.to_string()),
            }
        }
        TAG_APPLY_DELTAS => {
            let (id, batch) = match decode_delta_request(body) {
                Ok(parts) => parts,
                Err(msg) => return encode_err(&msg),
            };
            let Some(mut session) = sessions.check_out(id) else {
                return encode_err(&format!("session {id} unknown or busy"));
            };
            let result = session.apply_deltas(&batch);
            sessions.check_in(id, session);
            match result {
                Ok(report) => encode_delta_ok(id, &report),
                Err(e) => encode_err(&e.to_string()),
            }
        }
        TAG_CLOSE_SESSION => match body.try_into().map(u64::from_le_bytes) {
            Ok(id) => match sessions.check_out(id) {
                Some(session) => {
                    drop(session);
                    let mut payload = Vec::with_capacity(9);
                    payload.push(0);
                    payload.extend_from_slice(&id.to_le_bytes());
                    payload
                }
                None => encode_err(&format!("session {id} unknown or busy")),
            },
            Err(_) => encode_err("close payload must be one u64 session id"),
        },
        other => encode_err(&format!("unknown session tag {other}")),
    }
}

/// Decodes an apply-deltas body: session id + the delta batch.
fn decode_delta_request(body: &[u8]) -> Result<(u64, DeltaBatch), String> {
    let truncated = || "truncated delta request".to_owned();
    let u64_at = |at: usize| -> Result<u64, String> {
        body.get(at..at + 8)
            .map(|b| {
                u64::from_le_bytes(
                    b.try_into()
                        .expect("invariant: chunks_exact(8) yields 8-byte slices"),
                )
            })
            .ok_or_else(truncated)
    };
    let id = u64_at(0)?;
    let count = body
        .get(8..12)
        .map(|b| {
            u32::from_le_bytes(
                b.try_into()
                    .expect("invariant: chunks_exact(4) yields 4-byte slices"),
            )
        })
        .ok_or_else(truncated)? as usize;
    let mut batch = DeltaBatch::new();
    let mut at = 12;
    for _ in 0..count {
        let &kind = body.get(at).ok_or_else(truncated)?;
        at += 1;
        match kind {
            0 => {
                let edge = u64_at(at)? as usize;
                let capacity = u64_at(at + 8)? as i64;
                at += 16;
                batch.push(GraphDelta::SetCapacity { edge, capacity });
            }
            1 => {
                let edge = u64_at(at)? as usize;
                at += 8;
                batch.push(GraphDelta::RemoveEdge { edge });
            }
            2 => {
                let from = u64_at(at)? as usize;
                let to = u64_at(at + 8)? as usize;
                let capacity = u64_at(at + 16)? as i64;
                at += 24;
                batch.push(GraphDelta::InsertEdge { from, to, capacity });
            }
            other => return Err(format!("unknown delta kind {other}")),
        }
    }
    if at != body.len() {
        return Err(format!(
            "{} trailing bytes after delta batch",
            body.len() - at
        ));
    }
    Ok((id, batch))
}

fn encode_delta_ok(id: u64, report: &DeltaReport) -> Vec<u8> {
    let m = report.edge_flows.len();
    let k = report.new_edge_ids.len();
    let mut payload = Vec::with_capacity(1 + 8 + 8 + 4 + m * 8 + 4 + k * 8 + 2 + 4);
    payload.push(0);
    payload.extend_from_slice(&id.to_le_bytes());
    payload.extend_from_slice(&report.value.to_le_bytes());
    payload.extend_from_slice(&(m as u32).to_le_bytes());
    for f in &report.edge_flows {
        payload.extend_from_slice(&f.to_le_bytes());
    }
    payload.extend_from_slice(&(k as u32).to_le_bytes());
    for &e in &report.new_edge_ids {
        payload.extend_from_slice(&(e as u64).to_le_bytes());
    }
    payload.push(u8::from(report.replanned));
    payload.push(u8::from(report.consolidated));
    payload.extend_from_slice(&(report.state_iterations as u32).to_le_bytes());
    payload
}

/// Reads one length-prefixed frame; `Ok(None)` on clean EOF at a frame
/// boundary.
///
/// # Errors
///
/// I/O failures, truncation inside a frame, oversized length prefixes.
pub fn read_frame(stream: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match stream.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"),
        ));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// I/O failures; payloads above [`MAX_FRAME_BYTES`].
pub fn write_frame(stream: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame exceeds the payload limit",
        ));
    }
    stream.write_all(&(payload.len() as u32).to_le_bytes())?;
    stream.write_all(payload)?;
    stream.flush()
}

/// Builds a request payload from an already-encoded graph body.
pub fn encode_request(tag: u8, graph_bytes: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(1 + graph_bytes.len());
    payload.push(tag);
    payload.extend_from_slice(graph_bytes);
    payload
}

/// Decodes a request payload into the graph it carries.
fn decode_request(payload: &[u8]) -> Result<FlowNetwork, String> {
    let (&tag, body) = payload
        .split_first()
        .ok_or_else(|| "empty request payload".to_owned())?;
    match tag {
        TAG_DIMACS => {
            let text =
                std::str::from_utf8(body).map_err(|e| format!("DIMACS body is not UTF-8: {e}"))?;
            dimacs::parse(text).map_err(|e| e.to_string())
        }
        TAG_BINARY => binfmt::parse_binary(body).map_err(|e| e.to_string()),
        other => Err(format!("unknown request tag {other}")),
    }
}

fn encode_ok(sol: &AnalogSolution) -> Vec<u8> {
    let m = sol.edge_flows.len();
    let mut payload = Vec::with_capacity(1 + 8 + 4 + m * 8 + 4 + 8 + 4 + 1);
    payload.push(0);
    payload.extend_from_slice(&sol.value.to_le_bytes());
    payload.extend_from_slice(&(m as u32).to_le_bytes());
    for f in &sol.edge_flows {
        payload.extend_from_slice(&f.to_le_bytes());
    }
    payload.extend_from_slice(&(sol.report.iterations as u32).to_le_bytes());
    payload.extend_from_slice(&(sol.report.factor_nnz as u64).to_le_bytes());
    payload.extend_from_slice(&(sol.report.block_count as u32).to_le_bytes());
    payload.push(u8::from(sol.report.templated));
    payload
}

fn encode_err(message: &str) -> Vec<u8> {
    let mut payload = Vec::with_capacity(1 + message.len());
    payload.push(1);
    payload.extend_from_slice(message.as_bytes());
    payload
}

/// Decodes a response payload: `Ok` carries the solved answer, `Err` the
/// server-reported message.
///
/// # Errors
///
/// `Err(String)` both for server-reported errors (status 1) and for
/// malformed payloads.
pub fn decode_response(payload: &[u8]) -> Result<SolveResponse, String> {
    let (&status, body) = payload
        .split_first()
        .ok_or_else(|| "empty response payload".to_owned())?;
    if status == 1 {
        return Err(String::from_utf8_lossy(body).into_owned());
    }
    if status != 0 {
        return Err(format!("unknown response status {status}"));
    }
    let take = |body: &[u8], at: usize, n: usize| -> Result<Vec<u8>, String> {
        body.get(at..at + n)
            .map(<[u8]>::to_vec)
            .ok_or_else(|| "truncated response".to_owned())
    };
    let f64_at = |at: usize| -> Result<f64, String> {
        Ok(f64::from_le_bytes(
            take(body, at, 8)?
                .try_into()
                .expect("invariant: take(8) yields 8-byte slices"),
        ))
    };
    let u32_at = |at: usize| -> Result<u32, String> {
        Ok(u32::from_le_bytes(
            take(body, at, 4)?
                .try_into()
                .expect("invariant: take(4) yields 4-byte slices"),
        ))
    };
    let value = f64_at(0)?;
    let m = u32_at(8)? as usize;
    let mut edge_flows = Vec::with_capacity(m);
    for i in 0..m {
        edge_flows.push(f64_at(12 + i * 8)?);
    }
    let tail = 12 + m * 8;
    let iterations = u32_at(tail)?;
    let factor_nnz = u64::from_le_bytes(
        take(body, tail + 4, 8)?
            .try_into()
            .expect("invariant: take(8) yields 8-byte slices"),
    );
    let block_count = u32_at(tail + 12)?;
    let templated = *body
        .get(tail + 16)
        .ok_or_else(|| "truncated response".to_owned())?
        != 0;
    Ok(SolveResponse {
        value,
        edge_flows,
        iterations,
        factor_nnz,
        block_count,
        templated,
    })
}

/// Builds an open-session request payload from an already-encoded graph
/// body (`graph_tag` is [`TAG_DIMACS`] or [`TAG_BINARY`]).
pub fn encode_open_session(graph_tag: u8, graph_bytes: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(2 + graph_bytes.len());
    payload.push(TAG_OPEN_SESSION);
    payload.push(graph_tag);
    payload.extend_from_slice(graph_bytes);
    payload
}

/// Builds an apply-deltas request payload.
pub fn encode_apply_deltas(session_id: u64, deltas: &[GraphDelta]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(13 + deltas.len() * 25);
    payload.push(TAG_APPLY_DELTAS);
    payload.extend_from_slice(&session_id.to_le_bytes());
    payload.extend_from_slice(&(deltas.len() as u32).to_le_bytes());
    for &delta in deltas {
        match delta {
            GraphDelta::SetCapacity { edge, capacity } => {
                payload.push(0);
                payload.extend_from_slice(&(edge as u64).to_le_bytes());
                payload.extend_from_slice(&capacity.to_le_bytes());
            }
            GraphDelta::RemoveEdge { edge } => {
                payload.push(1);
                payload.extend_from_slice(&(edge as u64).to_le_bytes());
            }
            GraphDelta::InsertEdge { from, to, capacity } => {
                payload.push(2);
                payload.extend_from_slice(&(from as u64).to_le_bytes());
                payload.extend_from_slice(&(to as u64).to_le_bytes());
                payload.extend_from_slice(&capacity.to_le_bytes());
            }
        }
    }
    payload
}

/// Builds a close-session request payload.
pub fn encode_close_session(session_id: u64) -> Vec<u8> {
    let mut payload = Vec::with_capacity(9);
    payload.push(TAG_CLOSE_SESSION);
    payload.extend_from_slice(&session_id.to_le_bytes());
    payload
}

/// Decodes a delta response (open/apply answers).
///
/// # Errors
///
/// `Err(String)` both for server-reported errors (status 1) and for
/// malformed payloads.
pub fn decode_delta_response(payload: &[u8]) -> Result<DeltaResponse, String> {
    let (&status, body) = payload
        .split_first()
        .ok_or_else(|| "empty response payload".to_owned())?;
    if status == 1 {
        return Err(String::from_utf8_lossy(body).into_owned());
    }
    if status != 0 {
        return Err(format!("unknown response status {status}"));
    }
    let truncated = || "truncated delta response".to_owned();
    let u64_at = |at: usize| -> Result<u64, String> {
        body.get(at..at + 8)
            .map(|b| {
                u64::from_le_bytes(
                    b.try_into()
                        .expect("invariant: chunks_exact(8) yields 8-byte slices"),
                )
            })
            .ok_or_else(truncated)
    };
    let u32_at = |at: usize| -> Result<u32, String> {
        body.get(at..at + 4)
            .map(|b| {
                u32::from_le_bytes(
                    b.try_into()
                        .expect("invariant: chunks_exact(4) yields 4-byte slices"),
                )
            })
            .ok_or_else(truncated)
    };
    let session_id = u64_at(0)?;
    let value = f64::from_bits(u64_at(8)?);
    let m = u32_at(16)? as usize;
    let mut edge_flows = Vec::with_capacity(m);
    for i in 0..m {
        edge_flows.push(f64::from_bits(u64_at(20 + i * 8)?));
    }
    let mut at = 20 + m * 8;
    let k = u32_at(at)? as usize;
    at += 4;
    let mut new_edge_ids = Vec::with_capacity(k);
    for i in 0..k {
        new_edge_ids.push(u64_at(at + i * 8)?);
    }
    at += k * 8;
    let flags = body.get(at..at + 2).ok_or_else(truncated)?;
    let state_iterations = u32_at(at + 2)?;
    Ok(DeltaResponse {
        session_id,
        value,
        edge_flows,
        new_edge_ids,
        replanned: flags[0] != 0,
        consolidated: flags[1] != 0,
        state_iterations,
    })
}

/// Client convenience: opens a delta session on an open connection and
/// returns the opening answer (its `session_id` names the session in
/// later [`apply_deltas`]/[`close_session`] calls).
///
/// # Errors
///
/// `Err(String)` for transport failures, server-reported errors and
/// malformed responses.
pub fn open_session(
    stream: &mut TcpStream,
    graph_tag: u8,
    graph_bytes: &[u8],
) -> Result<DeltaResponse, String> {
    write_frame(stream, &encode_open_session(graph_tag, graph_bytes)).map_err(|e| e.to_string())?;
    let payload = read_frame(stream)
        .map_err(|e| e.to_string())?
        .ok_or_else(|| "connection closed before response".to_owned())?;
    decode_delta_response(&payload)
}

/// Client convenience: applies one delta batch to an open session.
///
/// # Errors
///
/// `Err(String)` for transport failures, server-reported errors
/// (including invalid batches, which leave the session untouched) and
/// malformed responses.
pub fn apply_deltas(
    stream: &mut TcpStream,
    session_id: u64,
    deltas: &[GraphDelta],
) -> Result<DeltaResponse, String> {
    write_frame(stream, &encode_apply_deltas(session_id, deltas)).map_err(|e| e.to_string())?;
    let payload = read_frame(stream)
        .map_err(|e| e.to_string())?
        .ok_or_else(|| "connection closed before response".to_owned())?;
    decode_delta_response(&payload)
}

/// Client convenience: closes a session, returning its echoed id.
///
/// # Errors
///
/// `Err(String)` for transport failures and unknown session ids.
pub fn close_session(stream: &mut TcpStream, session_id: u64) -> Result<u64, String> {
    write_frame(stream, &encode_close_session(session_id)).map_err(|e| e.to_string())?;
    let payload = read_frame(stream)
        .map_err(|e| e.to_string())?
        .ok_or_else(|| "connection closed before response".to_owned())?;
    let (&status, body) = payload
        .split_first()
        .ok_or_else(|| "empty response payload".to_owned())?;
    if status == 1 {
        return Err(String::from_utf8_lossy(body).into_owned());
    }
    body.try_into()
        .map(u64::from_le_bytes)
        .map_err(|_| "malformed close response".to_owned())
}

/// Client convenience: one request/response round trip on an open
/// connection.
///
/// # Errors
///
/// `Err(String)` for transport failures, server-reported errors and
/// malformed responses.
pub fn request(
    stream: &mut TcpStream,
    tag: u8,
    graph_bytes: &[u8],
) -> Result<SolveResponse, String> {
    write_frame(stream, &encode_request(tag, graph_bytes)).map_err(|e| e.to_string())?;
    let payload = read_frame(stream)
        .map_err(|e| e.to_string())?
        .ok_or_else(|| "connection closed before response".to_owned())?;
    decode_response(&payload)
}
