//! Host crate for the workspace examples (`/examples`) and integration tests (`/tests`); see `Cargo.toml` for the target wiring.
