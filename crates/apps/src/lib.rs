//! Host crate for the workspace examples (`/examples`), integration tests
//! (`/tests`) and the [`serve`] multi-tenant serving tier behind the
//! `ohmflow-serve` binary; see `Cargo.toml` for the target wiring.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod serve;
