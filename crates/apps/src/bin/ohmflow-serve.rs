//! `ohmflow-serve` — the analog max-flow substrate as a network service.
//!
//! ```text
//! ohmflow-serve [--addr HOST:PORT] [--workers N] [--cache-mb MB]
//! ```
//!
//! Accepts length-prefixed solve requests (DIMACS text or `OFG1` binary
//! graphs) over TCP and answers with the flow value, per-edge flows and
//! solver telemetry; see `ohmflow_apps::serve` for the wire protocol.
//! Requests arriving together are batched through the facade's
//! fingerprint-grouped `solve_many`, and all workers share one sharded
//! plan cache, so repeat topologies across tenants pay the symbolic cold
//! path once.

use ohmflow::solver::facade::SolveOptions;
use ohmflow_apps::serve::{spawn, ServeConfig};

fn usage() -> ! {
    eprintln!("usage: ohmflow-serve [--addr HOST:PORT] [--workers N] [--cache-mb MB]");
    std::process::exit(2);
}

fn main() {
    let mut addr = "127.0.0.1:7878".to_owned();
    let mut config = ServeConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a {what}");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => addr = value("HOST:PORT"),
            "--workers" => match value("count").parse() {
                Ok(n) if n > 0 => config.workers = n,
                _ => usage(),
            },
            "--cache-mb" => match value("megabyte count").parse::<usize>() {
                Ok(mb) if mb > 0 => {
                    config.options = SolveOptions::ideal().with_plan_cache_bytes(mb << 20);
                }
                _ => usage(),
            },
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    let workers = config.workers;
    match spawn(&addr, config) {
        Ok(handle) => {
            println!(
                "ohmflow-serve listening on {} ({workers} workers)",
                handle.addr()
            );
            // Serve for the life of the process: park the main thread
            // (the acceptor and workers own the actual work).
            loop {
                std::thread::park();
            }
        }
        Err(e) => {
            eprintln!("failed to bind {addr}: {e}");
            std::process::exit(1);
        }
    }
}
