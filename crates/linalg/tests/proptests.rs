//! Property-based tests for the linear-algebra kernels.

use proptest::prelude::*;

use ohmflow_linalg::{
    min_degree_ordering, reverse_cuthill_mckee, ColumnOrdering, DenseMatrix, LowRankUpdate,
    SparseLu, SparseLuOptions, TripletMatrix,
};

/// A random diagonally-dominant sparse system (always solvable).
fn arb_system(max_n: usize) -> impl Strategy<Value = (TripletMatrix, Vec<f64>)> {
    (2..max_n, any::<u64>()).prop_map(|(n, seed)| {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            let mut row_sum = 0.0;
            for _ in 0..3 {
                let j = rng.gen_range(0..n);
                if j != i {
                    let v: f64 = rng.gen_range(-1.0..1.0);
                    t.push(i, j, v);
                    row_sum += v.abs();
                }
            }
            // Indefinite but dominant diagonal (negative-resistor style).
            let sign = if rng.gen_bool(0.25) { -1.0 } else { 1.0 };
            t.push(i, i, sign * (row_sum + rng.gen_range(1.0..3.0)));
        }
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-4.0..4.0)).collect();
        (t, b)
    })
}

fn dense_reference(t: &TripletMatrix, b: &[f64]) -> Vec<f64> {
    let csr = t.to_csr();
    let mut d = DenseMatrix::zeros(csr.rows(), csr.cols());
    for r in 0..csr.rows() {
        for (c, v) in csr.row(r) {
            d[(r, c)] += v;
        }
    }
    d.solve(b).expect("reference solve")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sparse_lu_matches_dense_reference((t, b) in arb_system(24)) {
        let lu = SparseLu::factor(&t.to_csc()).unwrap();
        let x = lu.solve(&b).unwrap();
        let xref = dense_reference(&t, &b);
        for (a, r) in x.iter().zip(&xref) {
            prop_assert!((a - r).abs() < 1e-7, "{a} vs {r}");
        }
    }

    #[test]
    fn every_ordering_solves_the_same_system((t, b) in arb_system(16)) {
        let csc = t.to_csc();
        let xref = dense_reference(&t, &b);
        for ordering in [ColumnOrdering::Natural, ColumnOrdering::MinDegree, ColumnOrdering::Rcm] {
            let opts = SparseLuOptions { ordering, ..Default::default() };
            let x = SparseLu::factor_with(&csc, &opts).unwrap().solve(&b).unwrap();
            for (a, r) in x.iter().zip(&xref) {
                prop_assert!((a - r).abs() < 1e-7, "{ordering:?}: {a} vs {r}");
            }
        }
    }

    #[test]
    fn orderings_are_permutations((t, _b) in arb_system(24)) {
        let csc = t.to_csc();
        for perm in [min_degree_ordering(&csc), reverse_cuthill_mckee(&csc)] {
            let n = csc.cols();
            let mut seen = vec![false; n];
            prop_assert_eq!(perm.len(), n);
            for &p in &perm {
                prop_assert!(p < n && !seen[p]);
                seen[p] = true;
            }
        }
    }

    #[test]
    fn csr_csc_matvec_agree((t, b) in arb_system(24)) {
        let y1 = t.to_csr().mul_vec(&b);
        let y2 = t.to_csc().mul_vec(&b);
        for (a, c) in y1.iter().zip(&y2) {
            prop_assert!((a - c).abs() < 1e-12);
        }
    }

    /// Rank-1 Woodbury updates must agree with a from-scratch
    /// factorization of the updated matrix to 1e-9 — including on the
    /// indefinite systems (negative diagonal entries) the substrate's
    /// negative resistors produce. This is the correctness contract the
    /// incremental frozen-DC engine relies on for clamp-diode toggles.
    #[test]
    fn rank1_update_matches_full_refactorization(
        (t, b) in arb_system(24),
        pick in any::<u64>(),
        dg in 0.5..50.0f64,
    ) {
        let n = b.len();
        let csc = t.to_csc();
        let base = SparseLu::factor(&csc).unwrap();

        // A conductance-style symmetric rank-1 change between two unknowns
        // (or one unknown and "ground"), like a clamp diode toggling.
        let a = (pick % n as u64) as usize;
        let bnode = ((pick >> 32) % n as u64) as usize;
        let d: Vec<(usize, f64)> = if a == bnode {
            vec![(a, 1.0)]
        } else {
            vec![(a, 1.0), (bnode, -1.0)]
        };
        let u: Vec<(usize, f64)> = d.iter().map(|&(i, s)| (i, dg * s)).collect();

        let mut up = LowRankUpdate::new(n);
        up.push(&base, &u, &d).unwrap();

        // Reference: stamp the same change into the matrix and refactor.
        let mut t2 = t;
        for &(i, si) in &d {
            for &(j, sj) in &d {
                t2.push(i, j, dg * si * sj);
            }
        }
        let refactored = SparseLu::factor(&t2.to_csc()).unwrap();

        let x_up = up.solve(&base, &b).unwrap();
        let x_ref = refactored.solve(&b).unwrap();
        for (xu, xr) in x_up.iter().zip(&x_ref) {
            prop_assert!((xu - xr).abs() < 1e-9, "update {xu} vs refactor {xr}");
        }
    }

    /// Numeric-only refactorization (same pattern, new values) must agree
    /// with a fresh pivoting factorization on solvable systems.
    #[test]
    fn numeric_refactor_matches_fresh_factor((t, b) in arb_system(20), scale in 0.5..2.0f64) {
        let csc = t.to_csc();
        let mut lu = SparseLu::factor(&csc).unwrap();
        // Same pattern, uniformly scaled values (stays diagonally dominant).
        let mut t2 = TripletMatrix::new(csc.rows(), csc.cols());
        for c in 0..csc.cols() {
            for (r, v) in csc.col(c) {
                t2.push(r, c, v * scale);
            }
        }
        let csc2 = t2.to_csc();
        lu.refactor(&csc2).unwrap();
        let x = lu.solve(&b).unwrap();
        let x_ref = SparseLu::factor(&csc2).unwrap().solve(&b).unwrap();
        for (a, r) in x.iter().zip(&x_ref) {
            prop_assert!((a - r).abs() < 1e-9, "{a} vs {r}");
        }
    }
}
