//! Property-based tests for the linear-algebra kernels.

use proptest::prelude::*;

use ohmflow_linalg::{
    min_degree_ordering, reverse_cuthill_mckee, ColumnOrdering, DenseMatrix, LowRankUpdate,
    RankOneTermRef, SparseLu, SparseLuOptions, TripletMatrix,
};

/// A random diagonally-dominant sparse system (always solvable).
fn arb_system(max_n: usize) -> impl Strategy<Value = (TripletMatrix, Vec<f64>)> {
    (2..max_n, any::<u64>()).prop_map(|(n, seed)| {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            let mut row_sum = 0.0;
            for _ in 0..3 {
                let j = rng.gen_range(0..n);
                if j != i {
                    let v: f64 = rng.gen_range(-1.0..1.0);
                    t.push(i, j, v);
                    row_sum += v.abs();
                }
            }
            // Indefinite but dominant diagonal (negative-resistor style).
            let sign = if rng.gen_bool(0.25) { -1.0 } else { 1.0 };
            t.push(i, i, sign * (row_sum + rng.gen_range(1.0..3.0)));
        }
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-4.0..4.0)).collect();
        (t, b)
    })
}

fn dense_reference(t: &TripletMatrix, b: &[f64]) -> Vec<f64> {
    let csr = t.to_csr();
    let mut d = DenseMatrix::zeros(csr.rows(), csr.cols());
    for r in 0..csr.rows() {
        for (c, v) in csr.row(r) {
            d[(r, c)] += v;
        }
    }
    d.solve(b).expect("reference solve")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sparse_lu_matches_dense_reference((t, b) in arb_system(24)) {
        let lu = SparseLu::factor(&t.to_csc()).unwrap();
        let x = lu.solve(&b).unwrap();
        let xref = dense_reference(&t, &b);
        for (a, r) in x.iter().zip(&xref) {
            prop_assert!((a - r).abs() < 1e-7, "{a} vs {r}");
        }
    }

    #[test]
    fn every_ordering_solves_the_same_system((t, b) in arb_system(16)) {
        let csc = t.to_csc();
        let xref = dense_reference(&t, &b);
        for ordering in [ColumnOrdering::Natural, ColumnOrdering::MinDegree, ColumnOrdering::Rcm] {
            let opts = SparseLuOptions { ordering, ..Default::default() };
            let x = SparseLu::factor_with(&csc, &opts).unwrap().solve(&b).unwrap();
            for (a, r) in x.iter().zip(&xref) {
                prop_assert!((a - r).abs() < 1e-7, "{ordering:?}: {a} vs {r}");
            }
        }
    }

    #[test]
    fn orderings_are_permutations((t, _b) in arb_system(24)) {
        let csc = t.to_csc();
        for perm in [min_degree_ordering(&csc), reverse_cuthill_mckee(&csc)] {
            let n = csc.cols();
            let mut seen = vec![false; n];
            prop_assert_eq!(perm.len(), n);
            for &p in &perm {
                prop_assert!(p < n && !seen[p]);
                seen[p] = true;
            }
        }
    }

    #[test]
    fn csr_csc_matvec_agree((t, b) in arb_system(24)) {
        let y1 = t.to_csr().mul_vec(&b);
        let y2 = t.to_csc().mul_vec(&b);
        for (a, c) in y1.iter().zip(&y2) {
            prop_assert!((a - c).abs() < 1e-12);
        }
    }

    /// Rank-1 Woodbury updates must agree with a from-scratch
    /// factorization of the updated matrix to 1e-9 — including on the
    /// indefinite systems (negative diagonal entries) the substrate's
    /// negative resistors produce. This is the correctness contract the
    /// incremental frozen-DC engine relies on for clamp-diode toggles.
    #[test]
    fn rank1_update_matches_full_refactorization(
        (t, b) in arb_system(24),
        pick in any::<u64>(),
        dg in 0.5..50.0f64,
    ) {
        let n = b.len();
        let csc = t.to_csc();
        let base = SparseLu::factor(&csc).unwrap();

        // A conductance-style symmetric rank-1 change between two unknowns
        // (or one unknown and "ground"), like a clamp diode toggling.
        let a = (pick % n as u64) as usize;
        let bnode = ((pick >> 32) % n as u64) as usize;
        let d: Vec<(usize, f64)> = if a == bnode {
            vec![(a, 1.0)]
        } else {
            vec![(a, 1.0), (bnode, -1.0)]
        };
        let u: Vec<(usize, f64)> = d.iter().map(|&(i, s)| (i, dg * s)).collect();

        let mut up = LowRankUpdate::new(n);
        up.push(&base, &u, &d).unwrap();

        // Reference: stamp the same change into the matrix and refactor.
        let mut t2 = t;
        for &(i, si) in &d {
            for &(j, sj) in &d {
                t2.push(i, j, dg * si * sj);
            }
        }
        let refactored = SparseLu::factor(&t2.to_csc()).unwrap();

        let x_up = up.solve(&base, &b).unwrap();
        let x_ref = refactored.solve(&b).unwrap();
        for (xu, xr) in x_up.iter().zip(&x_ref) {
            prop_assert!((xu - xr).abs() < 1e-9, "update {xu} vs refactor {xr}");
        }
    }

    /// Numeric-only refactorization (same pattern, new values) must agree
    /// with a fresh pivoting factorization on solvable systems.
    #[test]
    fn numeric_refactor_matches_fresh_factor((t, b) in arb_system(20), scale in 0.5..2.0f64) {
        let csc = t.to_csc();
        let mut lu = SparseLu::factor(&csc).unwrap();
        // Same pattern, uniformly scaled values (stays diagonally dominant).
        let mut t2 = TripletMatrix::new(csc.rows(), csc.cols());
        for c in 0..csc.cols() {
            for (r, v) in csc.col(c) {
                t2.push(r, c, v * scale);
            }
        }
        let csc2 = t2.to_csc();
        lu.refactor(&csc2).unwrap();
        let x = lu.solve(&b).unwrap();
        let x_ref = SparseLu::factor(&csc2).unwrap().solve(&b).unwrap();
        for (a, r) in x.iter().zip(&x_ref) {
            prop_assert!((a - r).abs() < 1e-9, "{a} vs {r}");
        }
    }
}

/// A same-pattern second value assignment for `csc`: the diagonal is
/// inflated and off-diagonals get a position-dependent rescale in
/// `[0.5, 1.5)`, so diagonal dominance (hence solvability and pivot
/// stability) is preserved while every entry actually changes.
fn same_pattern_variant(csc: &ohmflow_linalg::CscMatrix) -> ohmflow_linalg::CscMatrix {
    let mut t2 = TripletMatrix::new(csc.rows(), csc.cols());
    for c in 0..csc.cols() {
        for (r, v) in csc.col(c) {
            let f = if r == c {
                1.7
            } else {
                0.5 + ((r * 31 + c * 17) % 100) as f64 / 100.0
            };
            t2.push(r, c, v * f);
        }
    }
    t2.to_csc()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The level-scheduled parallel refactorization runs the identical
    /// per-column arithmetic as the serial replay, so across random
    /// systems and thread counts the two must agree to 1e-12 (they are in
    /// fact bit-identical) and reuse the same column ordering and pivot
    /// permutation.
    #[test]
    fn parallel_refactor_matches_serial(
        (t, b) in arb_system(32),
        threads in 2..5usize,
    ) {
        use ohmflow_linalg::{LuWorkspace, RefactorStrategy};
        let csc = t.to_csc();
        let base = SparseLu::factor(&csc).unwrap();
        let csc2 = same_pattern_variant(&csc);
        let mut ws = LuWorkspace::new();

        let mut serial = base.clone();
        serial.refactor_with_strategy(&csc2, &mut ws, RefactorStrategy::Serial).unwrap();
        let mut par = base.clone();
        par.refactor_with_strategy(&csc2, &mut ws, RefactorStrategy::Parallel { threads }).unwrap();

        // Same elimination plan: identical column ordering and pivot rows.
        prop_assert_eq!(serial.symbolic().col_order(), par.symbolic().col_order());
        prop_assert_eq!(serial.symbolic().pivot_rows(), par.symbolic().pivot_rows());

        let xs = serial.solve(&b).unwrap();
        let xp = par.solve(&b).unwrap();
        for (a, r) in xp.iter().zip(&xs) {
            prop_assert!((a - r).abs() < 1e-12 * r.abs().max(1.0), "threads {threads}: {a} vs {r}");
        }
    }
}

proptest! {
    // Each case factors ~500-column systems; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// `RefactorStrategy::Auto` must be correct on both sides of the
    /// serial-fallback threshold (`SparseLu::PAR_COL_THRESHOLD`): banded
    /// systems straddling the boundary, random values, verified against
    /// the always-serial path.
    #[test]
    fn auto_refactor_agrees_across_threshold_boundary(
        offset in 0..4usize,
        seed in any::<u64>(),
    ) {
        use ohmflow_linalg::{LuWorkspace, RefactorStrategy};
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let n = SparseLu::PAR_COL_THRESHOLD - 2 + offset;
        let mut rng = StdRng::seed_from_u64(seed);
        let band = |rng: &mut StdRng| {
            let mut t = TripletMatrix::new(n, n);
            for i in 0..n {
                let mut row_sum = 0.0;
                for d in [1usize, 5, 19] {
                    if i + d < n {
                        let v: f64 = rng.gen_range(-0.8..0.8);
                        t.push(i, i + d, v);
                        t.push(i + d, i, -v * 0.5);
                        row_sum += v.abs().max(v.abs() * 0.5);
                    }
                }
                t.push(i, i, 2.0 * row_sum + rng.gen_range(1.0..2.0));
            }
            t.to_csc()
        };
        let a1 = band(&mut rng);
        let a2 = band(&mut rng);
        let base = SparseLu::factor(&a1).unwrap();
        let mut ws = LuWorkspace::new();
        let mut auto_lu = base.clone();
        auto_lu.refactor_with_strategy(&a2, &mut ws, RefactorStrategy::Auto).unwrap();
        let mut serial = base.clone();
        serial.refactor_with_strategy(&a2, &mut ws, RefactorStrategy::Serial).unwrap();
        let b: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.37).sin()).collect();
        let xa = auto_lu.solve(&b).unwrap();
        let xs = serial.solve(&b).unwrap();
        for (a, r) in xa.iter().zip(&xs) {
            prop_assert!((a - r).abs() < 1e-12 * r.abs().max(1.0), "n {n}: {a} vs {r}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Reach-based sparse-RHS solves must match the dense solve exactly on
    /// their reach set (identical update sequence) and be exactly zero off
    /// it — across random systems and random RHS patterns including the
    /// empty and full ones.
    #[test]
    fn sparse_solve_matches_dense_for_random_patterns(
        (t, b) in arb_system(28),
        density_pick in 0..4usize,
        pattern_seed in any::<u64>(),
    ) {
        use ohmflow_linalg::SparseSolveWorkspace;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let n = b.len();
        let csc = t.to_csc();
        let lu = SparseLu::factor(&csc).unwrap();

        // Empty, sparse (1-2 nonzeros, the Woodbury shape), medium, full.
        let mut rng = StdRng::seed_from_u64(pattern_seed);
        let sparse_b: Vec<(usize, f64)> = match density_pick {
            0 => Vec::new(),
            1 => (0..rng.gen_range(1..3usize))
                .map(|_| (rng.gen_range(0..n), rng.gen_range(-3.0..3.0)))
                .collect(),
            2 => {
                let mut pat = Vec::new();
                for i in 0..n {
                    if rng.gen_bool(0.3) {
                        pat.push((i, rng.gen_range(-3.0..3.0)));
                    }
                }
                pat
            }
            _ => (0..n).map(|i| (i, b[i])).collect(),
        };

        let mut dense_b = vec![0.0; n];
        for &(i, v) in &sparse_b {
            dense_b[i] += v;
        }
        let (mut work, mut dense_out) = (Vec::new(), Vec::new());
        lu.solve_into(&dense_b, &mut work, &mut dense_out).unwrap();

        let mut ws = SparseSolveWorkspace::new();
        let mut sparse_out = Vec::new();
        lu.solve_sparse_into(&sparse_b, &mut ws, &mut sparse_out).unwrap();

        prop_assert_eq!(sparse_out.len(), n);
        let mut on_pattern = vec![false; n];
        for &i in ws.pattern() {
            on_pattern[i] = true;
        }
        for i in 0..n {
            // Exact agreement on the reach; exact zeros off it.
            prop_assert!(
                sparse_out[i] == dense_out[i],
                "unknown {}: sparse {} vs dense {}", i, sparse_out[i], dense_out[i]
            );
            if !on_pattern[i] {
                prop_assert_eq!(sparse_out[i], 0.0);
            }
        }
    }
}

/// An arbitrary sparse *pattern* (square, possibly disconnected, possibly
/// structurally singular — empty rows/columns included): ordering
/// construction must produce a valid permutation on anything.
fn arb_pattern(max_n: usize) -> impl Strategy<Value = TripletMatrix> {
    (1..max_n, any::<u64>(), 0..4usize).prop_map(|(n, seed, shape)| {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = TripletMatrix::new(n, n);
        match shape {
            // Fully random, no diagonal guarantee (often singular).
            0 => {
                for _ in 0..rng.gen_range(0..3 * n + 1) {
                    t.push(rng.gen_range(0..n), rng.gen_range(0..n), 1.0);
                }
            }
            // Disconnected islands: pairs plus isolated vertices.
            1 => {
                for i in (0..n.saturating_sub(1)).step_by(3) {
                    t.push(i, i, 1.0);
                    t.push(i + 1, i + 1, 1.0);
                    t.push(i, i + 1, 1.0);
                    t.push(i + 1, i, 1.0);
                }
            }
            // Diagonal-free permutation-ish pattern.
            2 => {
                for i in 0..n {
                    t.push((i + 1) % n, i, 1.0);
                }
            }
            // Diagonal plus random coupling (the well-posed case).
            _ => {
                for i in 0..n {
                    t.push(i, i, 1.0);
                }
                for _ in 0..rng.gen_range(0..2 * n + 1) {
                    t.push(rng.gen_range(0..n), rng.gen_range(0..n), 1.0);
                }
            }
        }
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// AMD, AMD+BTF, nested dissection and the AMD+BTF+ND hybrid must
    /// produce valid permutations on arbitrary patterns — random,
    /// disconnected, structurally singular — and the BTF block pointers
    /// must partition the steps.
    #[test]
    fn amd_and_btf_orderings_are_valid_permutations(t in arb_pattern(40)) {
        use ohmflow_linalg::{
            amd_btf_nd_ordering, amd_btf_ordering, amd_ordering, nested_dissection_ordering,
        };
        let csc = t.to_csc();
        let n = csc.cols();

        let is_perm = |perm: &[usize]| {
            let mut seen = vec![false; n];
            perm.len() == n
                && perm.iter().all(|&p| {
                    let fresh = p < n && !seen[p];
                    if fresh {
                        seen[p] = true;
                    }
                    fresh
                })
        };
        let amd = amd_ordering(&csc);
        prop_assert!(is_perm(&amd), "AMD not a permutation: {:?}", amd);
        let nd = nested_dissection_ordering(&csc);
        prop_assert!(is_perm(&nd), "ND not a permutation: {:?}", nd);

        for block in [amd_btf_ordering(&csc), amd_btf_nd_ordering(&csc)] {
            prop_assert!(is_perm(&block.perm), "block ordering not a permutation: {:?}", block.perm);
            prop_assert_eq!(block.diag_rows.len(), n);
            prop_assert_eq!(*block.block_ptr.first().unwrap(), 0);
            prop_assert_eq!(*block.block_ptr.last().unwrap(), n);
            prop_assert!(block.block_ptr.windows(2).all(|w| w[0] < w[1]));
        }
    }

    /// The top-level nested-dissection split must partition the vertices,
    /// and the separator must actually separate: no symmetrized-pattern
    /// entry may couple `part_a` and `part_b` directly.
    #[test]
    fn nd_split_separates_on_arbitrary_patterns(t in arb_pattern(60)) {
        use ohmflow_linalg::nested_dissection_split;
        let csc = t.to_csc();
        let n = csc.cols();
        let split = nested_dissection_split(&csc);
        prop_assert_eq!(
            split.part_a.len() + split.part_b.len() + split.separator.len(),
            n
        );
        let mut claimed = vec![0u8; n];
        for (tag, set) in [(1u8, &split.part_a), (2, &split.part_b), (3, &split.separator)] {
            for &v in set {
                prop_assert!(v < n && claimed[v] == 0, "vertex {} claimed twice", v);
                claimed[v] = tag;
            }
        }
        // Symmetrized adjacency: checking both column directions covers
        // entries of either triangle.
        for c in 0..n {
            for (r, _) in csc.col(c) {
                let (a, b) = (claimed[r], claimed[c]);
                prop_assert!(
                    !((a == 1 && b == 2) || (a == 2 && b == 1)),
                    "entry ({}, {}) couples the two parts", r, c
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Factors under every ordering — including the new AMD and AMD+BTF —
    /// must agree with the Natural-order factorization to 1e-12: the
    /// permutation changes the elimination sequence, never the solution.
    #[test]
    fn all_orderings_agree_with_natural_to_1e12((t, b) in arb_system(24)) {
        let csc = t.to_csc();
        let natural = SparseLu::factor_with(
            &csc,
            &SparseLuOptions { ordering: ColumnOrdering::Natural, ..Default::default() },
        )
        .unwrap()
        .solve(&b)
        .unwrap();
        for ordering in [
            ColumnOrdering::MinDegree,
            ColumnOrdering::Rcm,
            ColumnOrdering::Amd,
            ColumnOrdering::AmdBtf,
            ColumnOrdering::NestedDissection,
            ColumnOrdering::AmdBtfNd,
        ] {
            let opts = SparseLuOptions { ordering, ..Default::default() };
            let x = SparseLu::factor_with(&csc, &opts).unwrap().solve(&b).unwrap();
            for (a, r) in x.iter().zip(&natural) {
                prop_assert!(
                    (a - r).abs() < 1e-12 * r.abs().max(1.0),
                    "{:?}: {} vs natural {}", ordering, a, r
                );
            }
        }
    }

    /// Under the block orderings each diagonal block factors
    /// independently: **neither** `L` nor `U` may cross its diagonal
    /// block, and every raw cross-block (`A_off`) entry must target a row
    /// pivoted in a strictly earlier block. Refactoring with new
    /// same-pattern values preserves it.
    #[test]
    fn btf_factor_never_crosses_block_boundaries((t, _b) in arb_system(28)) {
        let csc = t.to_csc();
        for ordering in [ColumnOrdering::AmdBtf, ColumnOrdering::AmdBtfNd] {
            let opts = SparseLuOptions { ordering, ..Default::default() };
            let mut lu = SparseLu::factor_with(&csc, &opts).unwrap();
            lu.refactor(&same_pattern_variant(&csc)).unwrap();
            let sym = lu.symbolic();
            let n = sym.dim();

            // Step -> block index.
            let mut block_of = vec![0usize; n];
            for t_blk in 0..sym.block_count() {
                for s in sym.block_range(t_blk) {
                    block_of[s] = t_blk;
                }
            }
            for k in 0..n {
                for &row in sym.l_column_rows(k) {
                    let step = sym.pivot_step_of_row(row);
                    prop_assert_eq!(
                        block_of[step], block_of[k],
                        "L entry of step {} (row {}, step {}) crosses blocks", k, row, step
                    );
                }
                for &s in sym.u_column_steps(k) {
                    prop_assert_eq!(
                        block_of[s], block_of[k],
                        "U entry of step {} escapes to block {}", k, block_of[s]
                    );
                }
                for &row in sym.off_column_rows(k) {
                    let step = sym.pivot_step_of_row(row);
                    prop_assert!(
                        block_of[step] < block_of[k],
                        "off entry of step {} (row {}) not in an earlier block", k, row
                    );
                }
            }
        }
    }
}

/// A random system whose trailing `tail` columns are fully dense: the
/// dense tail gives the supernode detector exactly-nested L-column
/// patterns, so every case exercises the blocked kernels (a purely random
/// sparse pattern often amalgamates nothing, which would make the
/// supernodal-vs-scalar properties vacuous).
fn arb_dense_tail_system() -> impl Strategy<Value = (TripletMatrix, Vec<f64>)> {
    (10..36usize, 4..9usize, any::<u64>()).prop_map(|(n, tail, seed)| {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let tail = tail.min(n - 2);
        let mut t = TripletMatrix::new(n, n);
        let mut row_sum = vec![0.0f64; n];
        // Sparse diagonally-dominant front.
        for (i, rs) in row_sum.iter_mut().enumerate() {
            for _ in 0..3 {
                let j = rng.gen_range(0..n);
                if j != i {
                    let v: f64 = rng.gen_range(-1.0..1.0);
                    t.push(i, j, v);
                    *rs += v.abs();
                }
            }
        }
        // Fully dense trailing block (rows and columns `n - tail ..`).
        for (i, rs) in row_sum.iter_mut().enumerate().skip(n - tail) {
            for j in n - tail..n {
                if i != j {
                    let v: f64 = rng.gen_range(-1.0..1.0);
                    t.push(i, j, v);
                    *rs += v.abs();
                }
            }
        }
        for (i, rs) in row_sum.iter().enumerate() {
            t.push(i, i, rs + rng.gen_range(1.0..3.0));
        }
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-4.0..4.0)).collect();
        (t, b)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The supernodal blocked refactorization is a pure performance
    /// transform: on the same pivot sequence it must agree with the
    /// scalar per-column replay to 1e-12. The dense-tail generator
    /// guarantees every case actually contains multi-column supernodes.
    #[test]
    fn supernodal_refactor_matches_scalar((t, b) in arb_dense_tail_system()) {
        let csc = t.to_csc();
        let sn_opts = SparseLuOptions {
            ordering: ColumnOrdering::Natural,
            ..SparseLuOptions::default()
        };
        let sc_opts = SparseLuOptions {
            supernodal: false,
            ..sn_opts
        };
        let mut lu_sn = SparseLu::factor_with(&csc, &sn_opts).unwrap();
        let mut lu_sc = SparseLu::factor_with(&csc, &sc_opts).unwrap();
        // Same elimination plan, so the comparison is kernel-vs-kernel.
        prop_assert_eq!(lu_sn.symbolic().pivot_rows(), lu_sc.symbolic().pivot_rows());
        let stats = lu_sn.symbolic().supernode_stats().expect("detection enabled");
        prop_assert!(stats.multi >= 1, "dense tail must amalgamate: {stats:?}");

        let csc2 = same_pattern_variant(&csc);
        lu_sn.refactor(&csc2).unwrap();
        lu_sc.refactor(&csc2).unwrap();
        let x_sn = lu_sn.solve(&b).unwrap();
        let x_sc = lu_sc.solve(&b).unwrap();
        for (a, r) in x_sn.iter().zip(&x_sc) {
            prop_assert!((a - r).abs() < 1e-12 * r.abs().max(1.0), "{a} vs {r}");
        }
    }

    /// Relaxed amalgamation only changes how columns are grouped into
    /// panels (admitting explicit-zero padding cells), never the numeric
    /// result: solves under amalgamation 0, the default, and an extreme
    /// knob agree to 1e-12 after a refactorization.
    #[test]
    fn amalgamation_never_changes_solve_results((t, b) in arb_dense_tail_system()) {
        let csc = t.to_csc();
        let csc2 = same_pattern_variant(&csc);
        let mut solutions = Vec::new();
        for relax in [0usize, 4, 64] {
            let opts = SparseLuOptions {
                ordering: ColumnOrdering::Natural,
                amalgamation: relax,
                ..SparseLuOptions::default()
            };
            let mut lu = SparseLu::factor_with(&csc, &opts).unwrap();
            lu.refactor(&csc2).unwrap();
            solutions.push(lu.solve(&b).unwrap());
        }
        let base = &solutions[0];
        for (i, x) in solutions.iter().enumerate().skip(1) {
            for (a, r) in x.iter().zip(base) {
                prop_assert!(
                    (a - r).abs() < 1e-12 * r.abs().max(1.0),
                    "knob {i}: {a} vs {r}"
                );
            }
        }
    }

    /// `Precision::F32Refined` stores the factor in f32 but solves still
    /// run in f64 against the downconverted values; one refined solve
    /// ([`SparseLu::solve_refined`]) must land within 1e-9 of the full
    /// f64 factorization on well-conditioned systems.
    #[test]
    fn f32_refined_solve_matches_f64((t, b) in arb_dense_tail_system()) {
        use ohmflow_linalg::Precision;
        let csc = t.to_csc();
        let f64_lu = SparseLu::factor(&csc).unwrap();
        let x64 = f64_lu.solve(&b).unwrap();
        let opts = SparseLuOptions {
            precision: Precision::F32Refined,
            ..SparseLuOptions::default()
        };
        let f32_lu = SparseLu::factor_with(&csc, &opts).unwrap();
        let x32 = f32_lu.solve_refined(&csc, &b).unwrap();
        for (a, r) in x32.iter().zip(&x64) {
            prop_assert!((a - r).abs() < 1e-9 * r.abs().max(1.0), "{a} vs {r}");
        }
    }
}

/// Lane-interleaves `k` dense right-hand sides: `out[row * k + lane]`.
fn interleave(columns: &[Vec<f64>]) -> Vec<f64> {
    let (n, k) = (columns[0].len(), columns.len());
    let mut out = vec![0.0; n * k];
    for (lane, col) in columns.iter().enumerate() {
        for (r, &v) in col.iter().enumerate() {
            out[r * k + lane] = v;
        }
    }
    out
}

/// Asserts `solve_multi_into` against `k` single-RHS solves at 1e-12 —
/// the scalar path is the oracle for every lane count.
fn assert_multi_matches_single(lu: &SparseLu, columns: &[Vec<f64>]) {
    let (n, k) = (columns[0].len(), columns.len());
    let rhs = interleave(columns);
    let (mut work, mut out) = (Vec::new(), Vec::new());
    lu.solve_multi_into(&rhs, k, &mut work, &mut out).unwrap();
    for (lane, col) in columns.iter().enumerate() {
        let x = lu.solve(col).unwrap();
        for r in 0..n {
            let (a, e) = (out[r * k + lane], x[r]);
            assert!(
                (a - e).abs() < 1e-12 * e.abs().max(1.0),
                "lane {lane} row {r}: {a} vs {e}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Multi-RHS solves must reproduce the single-RHS scalar path to
    /// 1e-12 for every lane count 1..=8 — this is the oracle contract
    /// the rank-k batched Woodbury push builds on.
    #[test]
    fn multi_rhs_solve_matches_single_rhs(
        (t, b) in arb_system(24),
        seed in any::<u64>(),
        k in 1usize..9,
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let n = b.len();
        let lu = SparseLu::factor(&t.to_csc()).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cols = vec![b];
        // Later lanes include a sparse one (mostly zeros), the Woodbury
        // push's actual lane shape.
        for lane in 1..k {
            cols.push(
                (0..n)
                    .map(|_| {
                        if lane % 2 == 1 && rng.gen_bool(0.8) {
                            0.0
                        } else {
                            rng.gen_range(-4.0..4.0)
                        }
                    })
                    .collect(),
            );
        }
        let rhs = interleave(&cols);
        let (mut work, mut out) = (Vec::new(), Vec::new());
        lu.solve_multi_into(&rhs, k, &mut work, &mut out).unwrap();
        for (lane, col) in cols.iter().enumerate() {
            let x = lu.solve(col).unwrap();
            for r in 0..n {
                let (a, e) = (out[r * k + lane], x[r]);
                prop_assert!(
                    (a - e).abs() < 1e-12 * e.abs().max(1.0),
                    "lane {} row {}: {} vs {}", lane, r, a, e
                );
            }
        }
    }

    /// A rank-k batch push must accumulate exactly the same update as the
    /// same terms pushed one at a time.
    #[test]
    fn push_batch_matches_sequential_pushes(
        (t, b) in arb_system(24),
        seed in any::<u64>(),
        k in 2usize..11,
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let n = b.len();
        let csc = t.to_csc();
        let base = SparseLu::factor(&csc).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        #[allow(clippy::type_complexity)]
        let mut terms: Vec<(Vec<(usize, f64)>, Vec<(usize, f64)>)> = Vec::new();
        for _ in 0..k {
            let a = rng.gen_range(0..n);
            let bn = rng.gen_range(0..n);
            let dg: f64 = rng.gen_range(0.1..2.0);
            let d: Vec<(usize, f64)> = if a == bn {
                vec![(a, 1.0)]
            } else {
                vec![(a, 1.0), (bn, -1.0)]
            };
            let u: Vec<(usize, f64)> = d.iter().map(|&(i, s)| (i, dg * s)).collect();
            terms.push((u, d));
        }

        let mut seq = LowRankUpdate::new(n);
        for (u, v) in &terms {
            seq.push(&base, u, v).unwrap();
        }
        let mut bat = LowRankUpdate::new(n);
        let refs: Vec<RankOneTermRef<'_>> =
            terms.iter().map(|(u, v)| (u.as_slice(), v.as_slice())).collect();
        bat.push_batch(&base, &refs).unwrap();
        prop_assert_eq!(bat.rank(), seq.rank());

        let x_seq = seq.solve(&base, &b).unwrap();
        let x_bat = bat.solve(&base, &b).unwrap();
        for (a, r) in x_bat.iter().zip(&x_seq) {
            prop_assert!((a - r).abs() < 1e-12 * r.abs().max(1.0), "{} vs {}", a, r);
        }
    }
}

/// Pushes a diagonally-dominant dense-tail block into `t` at row/column
/// offset `off` — sized so compositions clear the blocked-solve gate
/// (`n >= 512`) and the supernodal multi-RHS kernels actually run.
fn push_dense_tail_block(t: &mut TripletMatrix, off: usize, n: usize, tail: usize, seed: u64) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut row_sum = vec![0.0f64; n];
    for (i, rs) in row_sum.iter_mut().enumerate() {
        for _ in 0..3 {
            let j = rng.gen_range(0..n);
            if j != i {
                let v: f64 = rng.gen_range(-1.0..1.0);
                t.push(off + i, off + j, v);
                *rs += v.abs();
            }
        }
    }
    for (i, rs) in row_sum.iter_mut().enumerate().skip(n - tail) {
        for j in n - tail..n {
            if i != j {
                let v: f64 = rng.gen_range(-1.0..1.0);
                t.push(off + i, off + j, v);
                *rs += v.abs();
            }
        }
    }
    for (i, rs) in row_sum.iter().enumerate() {
        t.push(off + i, off + i, rs + rng.gen_range(1.0..3.0));
    }
}

/// The supernodal (blocked-panel) multi-RHS path must match the
/// single-RHS solves at 1e-12: `n >= 512` plus a dense tail guarantees
/// the lane kernels run through the panels, not the scalar fallback.
#[test]
fn multi_rhs_blocked_supernodal_path_matches_single() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let n = 560;
    let mut t = TripletMatrix::new(n, n);
    push_dense_tail_block(&mut t, 0, n, 48, 9);
    let lu = SparseLu::factor(&t.to_csc()).unwrap();
    let stats = lu.symbolic().supernode_stats().expect("detection enabled");
    assert!(stats.multi >= 1, "dense tail must amalgamate: {stats:?}");
    let mut rng = StdRng::seed_from_u64(77);
    for k in [2usize, 5, 8] {
        let cols: Vec<Vec<f64>> = (0..k)
            .map(|_| (0..n).map(|_| rng.gen_range(-4.0..4.0)).collect())
            .collect();
        assert_multi_matches_single(&lu, &cols);
    }
}

/// Multi-RHS solves across a multi-block (BTF) factorization: two
/// decoupled dense-tail systems with one-way coupling split into
/// separate blocks, exercising the per-lane cross-block `A_off` apply.
#[test]
fn multi_rhs_multiblock_btf_matches_single() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let half = 300;
    let n = 2 * half;
    let mut t = TripletMatrix::new(n, n);
    push_dense_tail_block(&mut t, 0, half, 32, 11);
    push_dense_tail_block(&mut t, half, half, 32, 12);
    // One-way coupling (block 0 reads block 1) keeps the BTF split.
    let mut rng = StdRng::seed_from_u64(13);
    for _ in 0..24 {
        let r = rng.gen_range(0..half);
        let c = half + rng.gen_range(0..half);
        t.push(r, c, rng.gen_range(-0.5..0.5));
    }
    let lu = SparseLu::factor(&t.to_csc()).unwrap();
    assert!(
        lu.symbolic().block_count() > 1,
        "coupling must stay one-way"
    );
    let cols: Vec<Vec<f64>> = (0..8)
        .map(|lane| {
            (0..n)
                .map(|r| ((r * (lane + 3)) as f64 * 0.37).sin())
                .collect()
        })
        .collect();
    assert_multi_matches_single(&lu, &cols);
}
