//! Dense and sparse linear-algebra kernels for the `ohmflow` workspace.
//!
//! The circuit simulator ([`ohmflow-circuit`]) assembles modified-nodal-analysis
//! (MNA) systems whose matrices are large, very sparse, unsymmetric and — because
//! the analog max-flow substrate contains *negative* resistors — indefinite.
//! This crate provides everything needed to solve them without external
//! dependencies:
//!
//! * [`DenseMatrix`] with partial-pivoting LU ([`DenseLu`]) for small systems
//!   and for tests,
//! * [`TripletMatrix`] (coordinate) assembly and [`CsrMatrix`] / [`CscMatrix`]
//!   compressed storage,
//! * [`SparseLu`], a left-looking Gilbert–Peierls LU with partial pivoting and
//!   an approximate-minimum-degree fill-reducing ordering,
//! * iterative refinement and the small vector helpers in [`vecops`].
//!
//! # Example
//!
//! ```
//! use ohmflow_linalg::{TripletMatrix, SparseLu};
//!
//! # fn main() -> Result<(), ohmflow_linalg::LinalgError> {
//! let mut a = TripletMatrix::new(2, 2);
//! a.push(0, 0, 4.0);
//! a.push(0, 1, 1.0);
//! a.push(1, 0, 1.0);
//! a.push(1, 1, 3.0);
//! let lu = SparseLu::factor(&a.to_csc())?;
//! let x = lu.solve(&[1.0, 2.0])?;
//! assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```
//!
//! [`ohmflow-circuit`]: https://example.com/ohmflow

#![deny(missing_docs)]

mod dense;
mod error;
mod ordering;
mod sparse;
mod sparse_lu;
pub mod vecops;

pub use dense::{DenseLu, DenseMatrix};
pub use error::LinalgError;
pub use ordering::{min_degree_ordering, reverse_cuthill_mckee};
pub use sparse::{CscMatrix, CsrMatrix, TripletMatrix};
pub use sparse_lu::{ColumnOrdering, SparseLu, SparseLuOptions};
