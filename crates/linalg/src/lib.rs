//! Dense and sparse linear-algebra kernels for the `ohmflow` workspace.
//!
//! The circuit simulator ([`ohmflow-circuit`]) assembles modified-nodal-analysis
//! (MNA) systems whose matrices are large, very sparse, unsymmetric and — because
//! the analog max-flow substrate contains *negative* resistors — indefinite.
//! This crate provides everything needed to solve them without external
//! dependencies:
//!
//! * [`DenseMatrix`] with partial-pivoting LU ([`DenseLu`]) for small systems
//!   and for tests,
//! * [`TripletMatrix`] (coordinate) assembly and [`CsrMatrix`] / [`CscMatrix`]
//!   compressed storage,
//! * [`SparseLu`], a left-looking Gilbert–Peierls LU with partial pivoting,
//!   ordered by default through a block-triangular permutation (maximum
//!   transversal + Tarjan SCC, [`block_triangular_form`]) with a hybrid
//!   per-block ordering — nested dissection
//!   ([`nested_dissection_ordering`]) on large diagonal blocks, a true
//!   quotient-graph approximate minimum degree ([`amd_ordering`]) on small
//!   ones ([`amd_btf_nd_ordering`]). Each diagonal block factors
//!   independently, KLU-style: cross-block entries are kept as raw matrix
//!   values applied during substitution rather than folded into `U`.
//!   Alongside sits a KLU-style numeric-only
//!   [`SparseLu::refactor`] path reusing the ordering, symbolic
//!   pattern and pivot sequence for value-only matrix changes. The
//!   factorization is split into an immutable, `Arc`-shared [`SymbolicLu`]
//!   elimination plan and per-thread numeric values ([`NumericLu`]), so
//!   same-topology batch members factor concurrently against one symbolic
//!   analysis ([`SymbolicLu::numeric`]). The symbolic plan carries the
//!   elimination tree and its level schedule, so a single numeric
//!   refactorization can also run *internally* parallel
//!   ([`RefactorStrategy`]), and [`SparseLu::solve_sparse_into`] performs
//!   Gilbert–Peierls reach-based triangular solves that touch only the
//!   factor columns a sparse right-hand side can influence,
//! * [`LowRankUpdate`] — Sherman–Morrison–Woodbury rank-k solve updates, so
//!   a 1–2 entry conductance change (a clamp-diode toggle) updates an
//!   existing factorization instead of discarding it,
//! * iterative refinement and the small vector helpers in [`vecops`].
//!
//! # Example
//!
//! ```
//! use ohmflow_linalg::{TripletMatrix, SparseLu};
//!
//! # fn main() -> Result<(), ohmflow_linalg::LinalgError> {
//! let mut a = TripletMatrix::new(2, 2);
//! a.push(0, 0, 4.0);
//! a.push(0, 1, 1.0);
//! a.push(1, 0, 1.0);
//! a.push(1, 1, 3.0);
//! let lu = SparseLu::factor(&a.to_csc())?;
//! let x = lu.solve(&[1.0, 2.0])?;
//! assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```
//!
//! [`ohmflow-circuit`]: https://example.com/ohmflow

#![deny(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod dense;
mod error;
mod lowrank;
mod ordering;
mod sparse;
mod sparse_lu;
mod supernode;
pub mod vecops;
pub mod verify;

pub use dense::{DenseLu, DenseMatrix, LuScalar};
pub use error::LinalgError;
pub use lowrank::{LowRankUpdate, RankOneTermRef};
pub use ordering::{
    amd_btf_nd_ordering, amd_btf_ordering, amd_ordering, block_triangular_form,
    maximum_transversal, min_degree_ordering, nested_dissection_ordering, nested_dissection_split,
    reverse_cuthill_mckee, BlockOrdering, BtfStructure, NdSplit, ND_BLOCK_CUTOFF,
};
pub use sparse::{CscMatrix, CsrMatrix, TripletMatrix};
pub use sparse_lu::{
    ColumnOrdering, LuWorkspace, NumericLu, Precision, RefactorStrategy, SparseLu, SparseLuOptions,
    SparseSolveWorkspace, SymbolicLu,
};
pub use supernode::SupernodeStats;
pub use verify::AuditError;
