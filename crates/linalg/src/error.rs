use std::error::Error;
use std::fmt;

/// Errors produced by the linear-algebra kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LinalgError {
    /// The matrix is structurally or numerically singular.
    ///
    /// Carries the pivot column at which elimination broke down.
    Singular {
        /// Column index where no acceptable pivot was found.
        column: usize,
    },
    /// Operand dimensions do not agree (e.g. solving an `n x n` system with a
    /// right-hand side of different length).
    DimensionMismatch {
        /// What was expected.
        expected: usize,
        /// What was provided.
        found: usize,
    },
    /// The matrix is not square but the operation requires a square matrix.
    NotSquare {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
    },
    /// A numeric-only refactorization was attempted with a matrix whose
    /// sparsity pattern is not covered by the existing symbolic
    /// factorization (see [`crate::SparseLu::refactor`]).
    PatternChanged {
        /// Column (of the new matrix) holding the uncovered entry.
        column: usize,
        /// Row of the uncovered entry.
        row: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::Singular { column } => {
                write!(f, "matrix is singular at pivot column {column}")
            }
            LinalgError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix is not square: {rows} x {cols}")
            }
            LinalgError::PatternChanged { column, row } => write!(
                f,
                "matrix entry ({row}, {column}) is outside the factorized sparsity pattern"
            ),
        }
    }
}

impl Error for LinalgError {}
