//! Supernode detection and dense-panel layout over a frozen symbolic LU
//! pattern.
//!
//! A *supernode* is a maximal run of consecutive pivot steps whose `L`
//! columns share one nonzero structure: each member's pattern is contained
//! in its predecessor's (minus the predecessor's pivot row), and the
//! member's pivot row lies in the predecessor's pattern (elimination-tree
//! adjacency). Such runs are what the trailing, nearly-dense columns of an
//! irreducible substrate core produce, and they let the numeric replay and
//! the triangular solves work on small dense blocks — contiguous loads,
//! fixed-trip inner loops, one `U`-coefficient finalize per supernode
//! instead of one scatter per entry — rather than per-entry indexed
//! scatters (see the kernels in [`crate::dense`]).
//!
//! Detection runs once per symbolic analysis, after the pivot order is
//! frozen, in `O(nnz(L) + nnz(U))`:
//!
//! * step `k` joins the supernode started at `k0` iff the current width is
//!   below [`MAX_SN_WIDTH`], `k` stays inside `k0`'s BTF diagonal block,
//!   `row_perm[k] ∈ L(:, k-1)`, `L(:, k) ⊆ L(:, k-1)` (checked with a
//!   stamp array), and the *relaxed amalgamation* bound holds: merging may
//!   store at most `relax` explicit-zero cells in column `k`'s panel
//!   column (`relax = 0` admits only exactly-nested chains).
//!
//! Each multi-column supernode owns one contiguous region of the panel
//! value array, laid out as `[ body r×w row-major | ldiag w×w | udiag w×w ]`:
//! the body holds the `L` rows below the supernode (one row per original
//! row id in `rows`), `ldiag` the within-supernode strictly-lower `L`
//! (column-major by source step), `udiag` the within-supernode `U`
//! including the pivots (column-major by target step). Absent (padded)
//! positions hold exact `0.0`, which is what makes the dense kernels
//! correct: a padded cell contributes `x - 0.0` to any update it touches.
//! The plan precomputes, per stored `L`/`U` index, the absolute panel slot
//! it mirrors into ([`SupernodePlan::l_slot`] / [`SupernodePlan::u_slot`]),
//! so the numeric replay fills panels with a straight gather.

/// Maximum supernode width. Bounds the blocked kernels' local coefficient
/// buffers (stack arrays of this size) and keeps one panel column within
/// L1-friendly reach; 32 matches the width at which the rank-update's
/// O(w²) dense triangular finalize stops being negligible against the
/// O(r·w) body update it amortizes.
pub(crate) const MAX_SN_WIDTH: usize = 32;

/// Sentinel slot for stored entries outside any multi-column supernode.
pub(crate) const NO_SLOT: usize = usize::MAX;

/// Aggregate supernode statistics of a symbolic plan — see
/// [`SymbolicLu::supernode_stats`](crate::SymbolicLu::supernode_stats).
/// Exposed so perf guards and benches can assert that a substrate actually
/// amalgamates (a plan with `multi == 0` runs the scalar kernels).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SupernodeStats {
    /// Total supernodes (width-1 singletons included).
    pub supernodes: usize,
    /// Supernodes of width ≥ 2 — the ones the blocked kernels act on.
    pub multi: usize,
    /// Pivot steps covered by multi-column supernodes.
    pub covered_steps: usize,
    /// Width of the widest supernode.
    pub max_width: usize,
    /// Mean width of the multi-column supernodes (0 when there are none).
    pub mean_width: f64,
    /// Explicit-zero cells admitted by relaxed amalgamation (panel padding
    /// below the diagonal; the dense `ldiag`/`udiag` triangles' structural
    /// zeros are not counted).
    pub padding: usize,
}

/// Borrowed view of the symbolic-pattern slices the plan builder needs —
/// passed explicitly so this module does not reach into
/// [`SymbolicLu`](crate::SymbolicLu)'s private fields.
pub(crate) struct SymbolicView<'a> {
    pub(crate) n: usize,
    /// `L` pattern by column; row ids are *original* rows.
    pub(crate) l_ptr: &'a [usize],
    pub(crate) l_rows: &'a [usize],
    /// `U` pattern by column; entries are pivot steps ascending, pivot last.
    pub(crate) u_ptr: &'a [usize],
    pub(crate) u_rows: &'a [usize],
    /// Pivot step → original row.
    pub(crate) row_perm: &'a [usize],
    /// Original row → pivot step.
    pub(crate) pinv: &'a [usize],
    /// BTF diagonal-block boundaries in step space.
    pub(crate) block_ptr: &'a [usize],
}

/// The supernode partition of a symbolic plan plus everything the blocked
/// numeric kernels need precomputed: panel regions, body-row lists, the
/// `L`/`U`-index → panel-slot gather maps and a supernode-level dependency
/// schedule for the parallel replay.
#[derive(Debug)]
pub(crate) struct SupernodePlan {
    /// Supernode `s` owns pivot steps `sn_ptr[s]..sn_ptr[s + 1]`.
    pub(crate) sn_ptr: Vec<usize>,
    /// Pivot step → owning supernode.
    pub(crate) sn_of_step: Vec<usize>,
    /// Panel region of supernode `s`: `panel_ptr[s]..panel_ptr[s + 1]`
    /// (empty for singletons). Layout `[body r×w | ldiag w×w | udiag w×w]`.
    pub(crate) panel_ptr: Vec<usize>,
    /// Body rows of supernode `s`: `rows[row_ptr[s]..row_ptr[s + 1]]` —
    /// the original row ids below the supernode, in first-column pattern
    /// order (the body block's row order).
    pub(crate) row_ptr: Vec<usize>,
    pub(crate) rows: Vec<usize>,
    /// Per stored `L` index: the panel slot mirroring it, or [`NO_SLOT`]
    /// for entries of singleton supernodes.
    pub(crate) l_slot: Vec<usize>,
    /// Per stored `U` index: the `udiag` slot for within-supernode entries
    /// (pivots included), [`NO_SLOT`] for entries crossing supernodes.
    pub(crate) u_slot: Vec<usize>,
    /// Total panel storage (value-array length).
    pub(crate) panel_len: usize,
    /// Supernode dependency levels: level `l` holds
    /// `level_sns[level_ptr[l]..level_ptr[l + 1]]`; supernodes of one level
    /// never read each other's columns, so the parallel replay fans each
    /// level over its workers with a barrier between levels.
    pub(crate) level_ptr: Vec<usize>,
    pub(crate) level_sns: Vec<usize>,
    pub(crate) stats: SupernodeStats,
}

impl SupernodePlan {
    /// Detects the supernode partition and builds the panel layout.
    /// `relax` is the relaxed-amalgamation knob: the maximum number of
    /// explicit-zero cells a merged column may store in its panel column.
    pub(crate) fn build(sym: &SymbolicView<'_>, relax: usize) -> SupernodePlan {
        let n = sym.n;
        let mut sn_ptr = vec![0usize];
        // Detection: one stamped-containment pass per column against its
        // immediate predecessor.
        let mut stamp = vec![usize::MAX; n];
        for b in sym.block_ptr.windows(2) {
            let (lo, hi) = (b[0], b[1]);
            if lo >= hi {
                continue;
            }
            if sn_ptr.last() != Some(&lo) {
                sn_ptr.push(lo);
            }
            let mut start = lo;
            for k in lo + 1..hi {
                for &r in &sym.l_rows[sym.l_ptr[k - 1]..sym.l_ptr[k]] {
                    stamp[r] = k - 1;
                }
                let w = k - start;
                let len0 = sym.l_ptr[start + 1] - sym.l_ptr[start];
                let lenk = sym.l_ptr[k + 1] - sym.l_ptr[k];
                let ok = w < MAX_SN_WIDTH
                    && stamp[sym.row_perm[k]] == k - 1
                    && len0 >= w + lenk
                    && len0 - (w + lenk) <= relax
                    && sym.l_rows[sym.l_ptr[k]..sym.l_ptr[k + 1]]
                        .iter()
                        .all(|&r| stamp[r] == k - 1);
                if !ok {
                    sn_ptr.push(k);
                    start = k;
                }
            }
        }
        if sn_ptr.last() != Some(&n) && n > 0 {
            sn_ptr.push(n);
        }
        let n_sn = sn_ptr.len() - 1;

        // Panel layout, gather maps, stats.
        let mut sn_of_step = vec![0usize; n];
        let mut panel_ptr = vec![0usize; n_sn + 1];
        let mut row_ptr = vec![0usize; n_sn + 1];
        let mut rows: Vec<usize> = Vec::new();
        let mut l_slot = vec![NO_SLOT; sym.l_rows.len()];
        let mut u_slot = vec![NO_SLOT; sym.u_rows.len()];
        // Body-row position scratch: only read for rows just written (every
        // member column's body pattern nests inside the first column's).
        let mut rowpos = vec![0usize; n];
        let mut panel_len = 0usize;
        let mut stats = SupernodeStats {
            supernodes: n_sn,
            ..SupernodeStats::default()
        };
        for s in 0..n_sn {
            let (k0, k1) = (sn_ptr[s], sn_ptr[s + 1]);
            let w = k1 - k0;
            sn_of_step[k0..k1].fill(s);
            if w == 1 {
                panel_ptr[s + 1] = panel_len;
                row_ptr[s + 1] = rows.len();
                continue;
            }
            stats.multi += 1;
            stats.covered_steps += w;
            stats.max_width = stats.max_width.max(w);
            let mut r_cnt = 0usize;
            for &r in &sym.l_rows[sym.l_ptr[k0]..sym.l_ptr[k0 + 1]] {
                if sym.pinv[r] >= k1 {
                    rowpos[r] = r_cnt;
                    rows.push(r);
                    r_cnt += 1;
                }
            }
            let base = panel_len;
            let ldiag_base = base + r_cnt * w;
            let udiag_base = ldiag_base + w * w;
            panel_len = udiag_base + w * w;
            for t in 0..w {
                let k = k0 + t;
                let lenk = sym.l_ptr[k + 1] - sym.l_ptr[k];
                stats.padding += r_cnt + (w - 1 - t) - lenk;
                let lr = sym.l_ptr[k]..sym.l_ptr[k + 1];
                for (slot, &r) in l_slot[lr.clone()].iter_mut().zip(&sym.l_rows[lr]) {
                    let p = sym.pinv[r];
                    *slot = if p < k1 {
                        ldiag_base + t * w + (p - k0)
                    } else {
                        base + rowpos[r] * w + t
                    };
                }
                let ur = sym.u_ptr[k]..sym.u_ptr[k + 1];
                for (slot, &step) in u_slot[ur.clone()].iter_mut().zip(&sym.u_rows[ur]) {
                    if step >= k0 {
                        *slot = udiag_base + t * w + (step - k0);
                    }
                }
            }
            panel_ptr[s + 1] = panel_len;
            row_ptr[s + 1] = rows.len();
        }
        if stats.multi > 0 {
            stats.mean_width = stats.covered_steps as f64 / stats.multi as f64;
        }

        // Supernode-level dependency schedule: a supernode's level is one
        // past the deepest *external* supernode any member column reads
        // (within-supernode dependencies are satisfied by the member order
        // inside one work unit).
        let mut level = vec![0usize; n_sn];
        let mut max_level = 0usize;
        for s in 0..n_sn {
            let mut lv = 0usize;
            for k in sn_ptr[s]..sn_ptr[s + 1] {
                for &dep in &sym.u_rows[sym.u_ptr[k]..sym.u_ptr[k + 1] - 1] {
                    let ds = sn_of_step[dep];
                    if ds != s {
                        lv = lv.max(level[ds] + 1);
                    }
                }
            }
            level[s] = lv;
            max_level = max_level.max(lv);
        }
        let n_levels = if n_sn == 0 { 0 } else { max_level + 1 };
        let mut level_ptr = vec![0usize; n_levels + 1];
        for &lv in &level {
            level_ptr[lv + 1] += 1;
        }
        for l in 0..n_levels {
            level_ptr[l + 1] += level_ptr[l];
        }
        let mut cursor = level_ptr.clone();
        let mut level_sns = vec![0usize; n_sn];
        for (s, &lv) in level.iter().enumerate() {
            level_sns[cursor[lv]] = s;
            cursor[lv] += 1;
        }

        SupernodePlan {
            sn_ptr,
            sn_of_step,
            panel_ptr,
            row_ptr,
            rows,
            l_slot,
            u_slot,
            panel_len,
            level_ptr,
            level_sns,
            stats,
        }
    }

    /// Number of supernodes.
    pub(crate) fn count(&self) -> usize {
        self.sn_ptr.len() - 1
    }

    /// Body rows of supernode `s` (original row ids).
    pub(crate) fn body_rows(&self, s: usize) -> &[usize] {
        &self.rows[self.row_ptr[s]..self.row_ptr[s + 1]]
    }

    /// Number of supernode dependency levels.
    pub(crate) fn level_count(&self) -> usize {
        self.level_ptr.len() - 1
    }
}
