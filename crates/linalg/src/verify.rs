//! Structural invariant auditor for the factorization stack.
//!
//! Nine PRs of ordering, supernode, and low-rank machinery have stacked up
//! implicit structural invariants — block confinement of `L`/`U`, level
//! schedule completeness, panel slot-map bijectivity — that, until this
//! module, were only enforced indirectly by end-to-end proptests. KLU-style
//! sparse-LU practice treats factor-structure validation as a first-class
//! debugging tool: ordering and refactorization bugs corrupt *silently*
//! and surface as slow convergence or subtly wrong flows, not crashes.
//!
//! Every audit returns a structured [`AuditError`] naming the violated
//! invariant, the structure it belongs to and where in the structure it
//! was observed. Audits run in three modes:
//!
//! 1. **Auto-audit** under `debug_assertions` at the construction /
//!    refactor / push seams (`SparseLu::factor_with`, `SparseLu::refactor*`,
//!    `LowRankUpdate::push*`) — compiled out of release builds entirely.
//! 2. **Public API**: [`SymbolicLu::audit`](crate::SymbolicLu::audit),
//!    [`SparseLu::audit`](crate::SparseLu::audit) and
//!    [`LowRankUpdate::audit`](crate::LowRankUpdate::audit) for callers
//!    (e.g. the serving tier) that want an explicit check.
//! 3. The `ohmflow-audit` CLI binary, which builds plans for the bench
//!    substrates and audits every structure end-to-end.
//!
//! The mutation-kill tests at the bottom of this module seed deliberate
//! corruptions — swapped permutation entries, an `L` row moved across a
//! block boundary, a dropped level-schedule step, a broken supernode slot
//! map — and assert each is caught under the *right* invariant name. An
//! auditor that passes corrupt structures is worse than none.

use std::error::Error;
use std::fmt;

use crate::lowrank::LowRankUpdate;
use crate::sparse_lu::{SymbolicLu, NO_PIVOT};
use crate::supernode::{SupernodePlan, MAX_SN_WIDTH, NO_SLOT};

/// A violated structural invariant: which structure, which named
/// invariant, and where inside the structure it was observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditError {
    /// The audited structure (`"SymbolicLu"`, `"SupernodePlan"`,
    /// `"LowRankUpdate"`, `"SparseLu"`, `"PlanCache"`, `"DeltaMetadata"`).
    pub structure: &'static str,
    /// Stable name of the violated invariant (e.g.
    /// `"l-block-confinement"`); the mutation-kill suite pins these.
    pub invariant: &'static str,
    /// Human-readable location of the violation (step / index / shard).
    pub location: String,
}

impl AuditError {
    /// Constructs an audit failure (exposed so sibling crates can report
    /// their own structures through the same type).
    pub fn new(structure: &'static str, invariant: &'static str, location: String) -> Self {
        AuditError {
            structure,
            invariant,
            location,
        }
    }
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "audit failed: {} invariant `{}` violated at {}",
            self.structure, self.invariant, self.location
        )
    }
}

impl Error for AuditError {}

/// Runs `$e` (an expression returning `Result<(), AuditError>`) in debug
/// builds and panics with the structured error on violation; compiled to
/// nothing in release builds. The seam hook of auto-audit mode.
macro_rules! debug_auto_audit {
    ($e:expr) => {
        if cfg!(debug_assertions) {
            if let Err(err) = $e {
                panic!("{err}");
            }
        }
    };
}
pub(crate) use debug_auto_audit;

fn fail(structure: &'static str, invariant: &'static str, location: String) -> AuditError {
    AuditError::new(structure, invariant, location)
}

/// `true` iff `xs` is a permutation of `0..n` (uses a scratch seen-vector).
fn is_permutation(xs: &[usize], n: usize) -> Result<(), usize> {
    if xs.len() != n {
        return Err(xs.len().min(n));
    }
    let mut seen = vec![false; n];
    for (i, &x) in xs.iter().enumerate() {
        if x >= n || seen[x] {
            return Err(i);
        }
        seen[x] = true;
    }
    Ok(())
}

/// `ptr` must start at 0, be monotone non-decreasing, and end at `len`.
fn check_csr_ptr(
    structure: &'static str,
    ptr: &[usize],
    len: usize,
    name: &str,
) -> Result<(), AuditError> {
    if ptr.first() != Some(&0) || ptr.last() != Some(&len) {
        return Err(fail(
            structure,
            "csr-monotone",
            format!(
                "{name}: bounds {:?}..{:?} vs len {len}",
                ptr.first(),
                ptr.last()
            ),
        ));
    }
    for w in ptr.windows(2) {
        if w[0] > w[1] {
            return Err(fail(
                structure,
                "csr-monotone",
                format!("{name}: decreasing offsets {} > {}", w[0], w[1]),
            ));
        }
    }
    Ok(())
}

impl SymbolicLu {
    /// Audits every structural invariant of the elimination plan: the
    /// permutations, the CSR layout, BTF block confinement of `L`/`U`,
    /// cross-block entries reaching only earlier blocks, elimination-tree
    /// parent ordering, level-schedule completeness, and transposed-U
    /// agreement. Forces the lazy scheduling structures.
    ///
    /// # Errors
    ///
    /// The first violated invariant, as a structured [`AuditError`].
    pub fn audit(&self) -> Result<(), AuditError> {
        const S: &str = "SymbolicLu";
        let n = self.n;

        // Permutation bijectivity — column order, pivot rows, and the
        // stored inverse must agree.
        if let Err(i) = is_permutation(&self.q, n) {
            return Err(fail(S, "col-perm-bijective", format!("q[{i}]")));
        }
        if let Err(i) = is_permutation(&self.row_perm, n) {
            return Err(fail(S, "row-perm-bijective", format!("row_perm[{i}]")));
        }
        for (k, &r) in self.row_perm.iter().enumerate() {
            if self.pinv.get(r) != Some(&k) {
                return Err(fail(S, "pinv-inverse", format!("step {k} row {r}")));
            }
        }

        // Block pointers: a strictly increasing partition of step space.
        if self.block_ptr.first() != Some(&0)
            || self.block_ptr.last() != Some(&n)
            || self.block_ptr.windows(2).any(|w| w[0] >= w[1]) && n > 0
        {
            return Err(fail(
                S,
                "block-ptr-monotone",
                format!("block_ptr {:?}", &self.block_ptr),
            ));
        }

        // CSR offset arrays.
        check_csr_ptr(S, &self.l_ptr, self.l_rows.len(), "l_ptr")?;
        check_csr_ptr(S, &self.u_ptr, self.u_rows.len(), "u_ptr")?;
        check_csr_ptr(S, &self.off_ptr, self.off_rows.len(), "off_ptr")?;
        if self.l_ptr.len() != n + 1 || self.u_ptr.len() != n + 1 || self.off_ptr.len() != n + 1 {
            return Err(fail(S, "csr-monotone", "ptr length != n + 1".to_owned()));
        }

        let mut block_idx = 0usize;
        for k in 0..n {
            while k >= self.block_ptr[block_idx + 1] {
                block_idx += 1;
            }
            let (blk_lo, blk_hi) = (self.block_ptr[block_idx], self.block_ptr[block_idx + 1]);

            // U column: off-diagonal steps strictly ascending, all inside
            // this block and strictly before k, pivot entry stored last
            // and equal to k itself.
            let (ulo, uhi) = (self.u_ptr[k], self.u_ptr[k + 1]);
            if uhi <= ulo || self.u_rows[uhi - 1] != k {
                return Err(fail(S, "u-column-sorted", format!("step {k}: pivot slot")));
            }
            let mut prev = None;
            for &s in &self.u_rows[ulo..uhi - 1] {
                if prev.is_some_and(|p| p >= s) {
                    return Err(fail(S, "u-column-sorted", format!("step {k}: U step {s}")));
                }
                prev = Some(s);
                if s >= k || s < blk_lo {
                    return Err(fail(
                        S,
                        "u-block-confinement",
                        format!("step {k}: U reaches step {s} outside block {blk_lo}..{blk_hi}"),
                    ));
                }
            }

            // L column: every row pivoted strictly later than k, inside
            // the same diagonal block.
            for &r in &self.l_rows[self.l_ptr[k]..self.l_ptr[k + 1]] {
                if r >= n {
                    return Err(fail(S, "l-block-confinement", format!("step {k}: row {r}")));
                }
                let s = self.pinv[r];
                if s <= k || s >= blk_hi {
                    return Err(fail(
                        S,
                        "l-block-confinement",
                        format!("step {k}: L row {r} pivots at step {s}, block {blk_lo}..{blk_hi}"),
                    ));
                }
            }

            // Cross-block entries: original rows pivoted in a strictly
            // earlier diagonal block.
            for &r in &self.off_rows[self.off_ptr[k]..self.off_ptr[k + 1]] {
                if r >= n || self.pinv[r] >= blk_lo {
                    return Err(fail(
                        S,
                        "off-earlier-block",
                        format!("step {k}: off row {r} not pivoted before block {blk_lo}"),
                    ));
                }
            }
        }

        self.audit_schedule()?;
        Ok(())
    }

    /// The scheduling-structure half of [`SymbolicLu::audit`]: elimination
    /// tree, level schedule and transposed-U agreement (forces the lazy
    /// extras).
    fn audit_schedule(&self) -> Result<(), AuditError> {
        const S: &str = "SymbolicLu";
        let n = self.n;
        let ex = self.extras();

        // Elimination-tree parents are strictly later than their children
        // and really are dependents (the child appears in the parent's U
        // column).
        for s in 0..n {
            match ex.etree[s] {
                NO_PIVOT => {}
                p if p <= s || p >= n => {
                    return Err(fail(S, "etree-parent-later", format!("etree[{s}] = {p}")));
                }
                p => {
                    let deps = &self.u_rows[self.u_ptr[p]..self.u_ptr[p + 1] - 1];
                    if deps.binary_search(&s).is_err() {
                        return Err(fail(
                            S,
                            "etree-parent-later",
                            format!("etree[{s}] = {p} is not a dependent"),
                        ));
                    }
                }
            }
        }

        // Level schedule: every step exactly once, and each step's level
        // is exactly one past its deepest dependency.
        check_csr_ptr(S, &ex.level_ptr, ex.level_cols.len(), "level_ptr")?;
        if is_permutation(&ex.level_cols, n).is_err() {
            return Err(fail(
                S,
                "level-schedule-coverage",
                format!("level_cols covers {} of {n} steps", ex.level_cols.len()),
            ));
        }
        let mut level_of = vec![0usize; n];
        for lev in 0..ex.level_ptr.len() - 1 {
            for &k in &ex.level_cols[ex.level_ptr[lev]..ex.level_ptr[lev + 1]] {
                level_of[k] = lev;
            }
        }
        for k in 0..n {
            let want = self.u_rows[self.u_ptr[k]..self.u_ptr[k + 1] - 1]
                .iter()
                .map(|&s| level_of[s] + 1)
                .max()
                .unwrap_or(0);
            if level_of[k] != want {
                return Err(fail(
                    S,
                    "level-schedule-coverage",
                    format!(
                        "step {k}: level {} != 1 + deepest dependency {want}",
                        level_of[k]
                    ),
                ));
            }
        }

        // Transposed-U agreement: the scatter-form structure must encode
        // exactly the stored U, entry for entry.
        let mut cursor = ex.ut_ptr.to_vec();
        if ex.ut_ptr.len() != n + 1 || ex.ut_steps.len() != ex.ut_vals_idx.len() {
            return Err(fail(S, "ut-agreement", "shape mismatch".to_owned()));
        }
        for k in 0..n {
            for idx in self.u_ptr[k]..self.u_ptr[k + 1] - 1 {
                let s = self.u_rows[idx];
                let c = cursor[s];
                if c >= ex.ut_ptr[s + 1]
                    || ex.ut_steps.get(c) != Some(&k)
                    || ex.ut_vals_idx.get(c) != Some(&idx)
                {
                    return Err(fail(
                        S,
                        "ut-agreement",
                        format!("U({s}, {k}) at vals index {idx} missing from transposed U"),
                    ));
                }
                cursor[s] += 1;
            }
        }
        for (s, (&c, &end)) in cursor.iter().zip(&ex.ut_ptr[1..]).enumerate() {
            if c != end {
                return Err(fail(
                    S,
                    "ut-agreement",
                    format!("transposed-U row {s} has surplus entries"),
                ));
            }
        }
        Ok(())
    }

    /// Audits the supernode plan (when detection is enabled): partition
    /// integrity, width cap, block confinement, panel layout, slot-map
    /// bijectivity, contained-pattern property and level-schedule
    /// acyclicity. A no-op when supernode detection is disabled.
    ///
    /// # Errors
    ///
    /// The first violated invariant, as a structured [`AuditError`].
    pub fn audit_supernodes(&self) -> Result<(), AuditError> {
        match self.supernode_plan_raw() {
            Some(plan) => audit_supernode_plan(self, plan),
            None => Ok(()),
        }
    }
}

/// The [`SupernodePlan`] half of the audit; see
/// [`SymbolicLu::audit_supernodes`].
pub(crate) fn audit_supernode_plan(
    sym: &SymbolicLu,
    plan: &SupernodePlan,
) -> Result<(), AuditError> {
    const S: &str = "SupernodePlan";
    let n = sym.n;
    let count = plan.sn_ptr.len().saturating_sub(1);

    // Partition of step space, agreeing with the inverse map.
    if plan.sn_ptr.first() != Some(&0)
        || plan.sn_ptr.last() != Some(&n)
        || plan.sn_ptr.windows(2).any(|w| w[0] >= w[1])
        || plan.sn_of_step.len() != n
    {
        return Err(fail(
            S,
            "sn-partition",
            format!("sn_ptr {:?}", &plan.sn_ptr),
        ));
    }
    for s in 0..count {
        for k in plan.sn_ptr[s]..plan.sn_ptr[s + 1] {
            if plan.sn_of_step[k] != s {
                return Err(fail(
                    S,
                    "sn-partition",
                    format!("sn_of_step[{k}] = {} != {s}", plan.sn_of_step[k]),
                ));
            }
        }
    }

    check_csr_ptr(S, &plan.row_ptr, plan.rows.len(), "row_ptr")?;
    check_csr_ptr(S, &plan.panel_ptr, plan.panel_len, "panel_ptr")?;

    // Body-row membership stamp, reused across supernodes.
    let mut body_stamp = vec![usize::MAX; n];
    for s in 0..count {
        let (k0, k1) = (plan.sn_ptr[s], plan.sn_ptr[s + 1]);
        let w = k1 - k0;
        if w > MAX_SN_WIDTH {
            return Err(fail(
                S,
                "sn-width-cap",
                format!("supernode {s}: width {w} > {MAX_SN_WIDTH}"),
            ));
        }

        // A supernode never straddles a BTF diagonal-block boundary.
        let blk_of = |k: usize| sym.block_ptr.partition_point(|&b| b <= k) - 1;
        if w > 1 && blk_of(k0) != blk_of(k1 - 1) {
            return Err(fail(
                S,
                "sn-block-confinement",
                format!("supernode {s}: steps {k0}..{k1} straddle a block boundary"),
            ));
        }

        let r_cnt = plan.row_ptr[s + 1] - plan.row_ptr[s];
        let psize = plan.panel_ptr[s + 1] - plan.panel_ptr[s];
        if w == 1 {
            if psize != 0 || r_cnt != 0 {
                return Err(fail(
                    S,
                    "sn-panel-layout",
                    format!("singleton supernode {s} owns a panel region"),
                ));
            }
            continue;
        }
        if psize != r_cnt * w + 2 * w * w {
            return Err(fail(
                S,
                "sn-panel-layout",
                format!("supernode {s}: panel {psize} != {r_cnt}x{w} body + 2x{w}² triangles"),
            ));
        }

        // Contained-pattern property: every member's L rows are either
        // pivot rows of later members or body rows of the supernode.
        for (i, &r) in plan.rows[plan.row_ptr[s]..plan.row_ptr[s + 1]]
            .iter()
            .enumerate()
        {
            if r >= n {
                return Err(fail(S, "sn-contained-pattern", format!("body row {r}")));
            }
            body_stamp[r] = s * n + i; // unique per supernode
        }
        for k in k0..k1 {
            for &r in sym.l_column_rows(k) {
                let is_member_pivot = {
                    let p = sym.pinv[r];
                    p > k && p < k1
                };
                let is_body = body_stamp[r] != usize::MAX && body_stamp[r] / n == s;
                if !is_member_pivot && !is_body {
                    return Err(fail(
                        S,
                        "sn-contained-pattern",
                        format!("supernode {s}: member {k} L row {r} outside the panel pattern"),
                    ));
                }
            }
        }
    }

    // Slot maps: every slot lands inside its owner's panel region, and no
    // panel cell is claimed twice (bijectivity onto the claimed cells).
    let mut owner = vec![usize::MAX; plan.panel_len];
    let mut check_slot = |idx: usize, slot: usize, step: usize| -> Result<(), AuditError> {
        if slot == NO_SLOT {
            return Ok(());
        }
        let s = plan.sn_of_step[step];
        if slot >= plan.panel_len || slot < plan.panel_ptr[s] || slot >= plan.panel_ptr[s + 1] {
            return Err(fail(
                S,
                "sn-slot-bijective",
                format!("index {idx}: slot {slot} outside supernode {s}'s panel region"),
            ));
        }
        if owner[slot] != usize::MAX {
            return Err(fail(
                S,
                "sn-slot-bijective",
                format!("index {idx}: slot {slot} claimed twice"),
            ));
        }
        owner[slot] = idx;
        Ok(())
    };
    for k in 0..n {
        let multi = {
            let s = plan.sn_of_step[k];
            plan.sn_ptr[s + 1] - plan.sn_ptr[s] > 1
        };
        for i in sym.l_ptr[k]..sym.l_ptr[k + 1] {
            if multi && plan.l_slot[i] == NO_SLOT {
                return Err(fail(
                    S,
                    "sn-slot-bijective",
                    format!("L index {i} of multi-column supernode member {k} has no slot"),
                ));
            }
            check_slot(i, plan.l_slot[i], k)?;
        }
        for i in sym.u_ptr[k]..sym.u_ptr[k + 1] {
            check_slot(i, plan.u_slot[i], k)?;
        }
    }

    // Supernode level schedule: complete and acyclic — every external
    // dependency lives in a strictly earlier level.
    check_csr_ptr(S, &plan.level_ptr, plan.level_sns.len(), "level_ptr")?;
    if is_permutation(&plan.level_sns, count).is_err() {
        return Err(fail(
            S,
            "sn-level-acyclic",
            format!(
                "level_sns covers {} of {count} supernodes",
                plan.level_sns.len()
            ),
        ));
    }
    let mut level_of = vec![0usize; count];
    for lev in 0..plan.level_ptr.len() - 1 {
        for &s in &plan.level_sns[plan.level_ptr[lev]..plan.level_ptr[lev + 1]] {
            level_of[s] = lev;
        }
    }
    for s in 0..count {
        for k in plan.sn_ptr[s]..plan.sn_ptr[s + 1] {
            for &dep in sym.u_column_steps(k) {
                let ds = plan.sn_of_step[dep];
                if ds != s && level_of[ds] >= level_of[s] {
                    return Err(fail(
                        S,
                        "sn-level-acyclic",
                        format!(
                            "supernode {s} (level {}) depends on {ds} (level {})",
                            level_of[s], level_of[ds]
                        ),
                    ));
                }
            }
        }
    }
    Ok(())
}

impl LowRankUpdate {
    /// Audits the accumulated update: term-count consistency across the
    /// `u`/`v`/`z` arrays, index ranges, solve-image dimensions and the
    /// capacitance matrix's shape/presence.
    ///
    /// # Errors
    ///
    /// The first violated invariant, as a structured [`AuditError`].
    pub fn audit(&self) -> Result<(), AuditError> {
        const S: &str = "LowRankUpdate";
        let k = self.us.len();
        if self.vs.len() != k || self.zs.len() != k {
            return Err(fail(
                S,
                "rank-consistent",
                format!(
                    "{k} u terms vs {} v terms vs {} z images",
                    self.vs.len(),
                    self.zs.len()
                ),
            ));
        }
        for (i, z) in self.zs.iter().enumerate() {
            if z.len() != self.n {
                return Err(fail(
                    S,
                    "z-dimension",
                    format!("term {i}: z has {} entries, system is {}", z.len(), self.n),
                ));
            }
        }
        for (i, term) in self.us.iter().chain(self.vs.iter()).enumerate() {
            for &(idx, _) in term {
                if idx >= self.n {
                    return Err(fail(
                        S,
                        "term-index-range",
                        format!("term {i}: index {idx} >= {}", self.n),
                    ));
                }
            }
        }
        match (&self.cap, k) {
            (None, 0) => Ok(()),
            (Some(cap), k) if k > 0 && cap.dim() == k => Ok(()),
            (cap, k) => Err(fail(
                S,
                "capacitance-shape",
                format!(
                    "rank {k} vs capacitance {:?}",
                    cap.as_ref().map(|c| c.dim())
                ),
            )),
        }
    }
}

/// Mutation-kill suite: seed a deliberate corruption into an otherwise
/// valid structure and assert the audit reports it under the *right*
/// invariant name. Each test is one corruption; an audit that misses it,
/// or blames a different invariant, fails the test.
#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::sparse::{CscMatrix, TripletMatrix};
    use crate::sparse_lu::SparseLu;

    /// A dense SPD-ish matrix: full symbolic closure, so every column has
    /// predictable L/U patterns and supernode detection amalgamates the
    /// whole block.
    fn dense_matrix(n: usize) -> CscMatrix {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            for j in 0..n {
                let v = if i == j {
                    n as f64 + 1.0
                } else {
                    1.0 / (1.0 + (i as f64 - j as f64).abs())
                };
                t.push(i, j, v);
            }
        }
        t.to_csc()
    }

    /// Factors `dense_matrix(n)`, hands the sole-owner symbolic plan to
    /// `corrupt`, and returns the audit error the corruption must cause.
    fn corrupted_sym(n: usize, corrupt: impl FnOnce(&mut SymbolicLu)) -> AuditError {
        let lu = SparseLu::factor(&dense_matrix(n)).expect("factor");
        let mut sym = lu.symbolic().clone();
        drop(lu);
        let sym_mut = Arc::get_mut(&mut sym).expect("sole owner after dropping the factor");
        corrupt(sym_mut);
        sym.audit().expect_err("corruption must be caught")
    }

    /// Same, but the corruption targets the supernode plan and the audit
    /// is `audit_supernodes`.
    fn corrupted_sn(n: usize, corrupt: impl FnOnce(&mut SymbolicLu)) -> AuditError {
        let lu = SparseLu::factor(&dense_matrix(n)).expect("factor");
        let mut sym = lu.symbolic().clone();
        drop(lu);
        assert!(
            sym.supernode_stats().is_some_and(|s| s.multi > 0),
            "dense matrix must amalgamate"
        );
        let sym_mut = Arc::get_mut(&mut sym).expect("sole owner after dropping the factor");
        corrupt(sym_mut);
        sym.audit_supernodes()
            .expect_err("corruption must be caught")
    }

    #[test]
    fn pristine_factor_audits_clean() {
        let lu = SparseLu::factor(&dense_matrix(8)).expect("factor");
        lu.audit().expect("valid factor audits clean");
    }

    #[test]
    fn mutation_duplicate_column_order() {
        let err = corrupted_sym(8, |sym| sym.q[0] = sym.q[1]);
        assert_eq!(err.invariant, "col-perm-bijective");
    }

    #[test]
    fn mutation_duplicate_pivot_row() {
        let err = corrupted_sym(8, |sym| sym.row_perm[0] = sym.row_perm[1]);
        assert_eq!(err.invariant, "row-perm-bijective");
    }

    #[test]
    fn mutation_swapped_pivot_rows_desync_pinv() {
        let err = corrupted_sym(8, |sym| sym.row_perm.swap(0, 1));
        assert_eq!(err.invariant, "pinv-inverse");
    }

    #[test]
    fn mutation_degenerate_block_boundary() {
        let err = corrupted_sym(8, |sym| {
            let last = *sym.block_ptr.last().expect("nonempty");
            sym.block_ptr.insert(sym.block_ptr.len() - 1, last);
        });
        assert_eq!(err.invariant, "block-ptr-monotone");
    }

    #[test]
    fn mutation_decreasing_column_offsets() {
        let err = corrupted_sym(8, |sym| sym.l_ptr.swap(1, 2));
        assert_eq!(err.invariant, "csr-monotone");
    }

    #[test]
    fn mutation_unsorted_u_column() {
        let err = corrupted_sym(8, |sym| {
            let lo = sym.u_ptr[sym.n - 1];
            sym.u_rows.swap(lo, lo + 1);
        });
        assert_eq!(err.invariant, "u-column-sorted");
    }

    #[test]
    fn mutation_u_reaches_own_step() {
        let err = corrupted_sym(8, |sym| {
            let lo = sym.u_ptr[sym.n - 1];
            sym.u_rows[lo] = sym.n - 1;
        });
        assert_eq!(err.invariant, "u-block-confinement");
    }

    #[test]
    fn mutation_l_row_pivoted_earlier() {
        let err = corrupted_sym(8, |sym| {
            let early = sym.row_perm[0];
            let lo = sym.l_ptr[1];
            sym.l_rows[lo] = early;
        });
        assert_eq!(err.invariant, "l-block-confinement");
    }

    #[test]
    fn mutation_off_entry_inside_own_block() {
        let err = corrupted_sym(8, |sym| {
            // Inject a cross-block entry whose row pivots inside the (one
            // and only) diagonal block.
            let n = sym.n;
            sym.off_ptr[n] = 1;
            sym.off_rows.push(sym.row_perm[0]);
        });
        assert_eq!(err.invariant, "off-earlier-block");
    }

    #[test]
    fn mutation_etree_self_parent() {
        let err = corrupted_sym(8, |sym| {
            let _ = sym.extras();
            sym.extras.get_mut().expect("extras forced").etree[0] = 0;
        });
        assert_eq!(err.invariant, "etree-parent-later");
    }

    #[test]
    fn mutation_dropped_level_schedule_step() {
        let err = corrupted_sym(8, |sym| {
            let _ = sym.extras();
            let ex = sym.extras.get_mut().expect("extras forced");
            ex.level_cols.pop();
            *ex.level_ptr.last_mut().expect("nonempty") -= 1;
        });
        assert_eq!(err.invariant, "level-schedule-coverage");
    }

    #[test]
    fn mutation_transposed_u_desync() {
        let err = corrupted_sym(8, |sym| {
            let _ = sym.extras();
            sym.extras
                .get_mut()
                .expect("extras forced")
                .ut_steps
                .swap(0, 1);
        });
        assert_eq!(err.invariant, "ut-agreement");
    }

    #[test]
    fn mutation_supernode_inverse_map_desync() {
        let err = corrupted_sn(8, |sym| {
            let _ = sym.supernode_plan_raw();
            let plan = sym
                .sn_plan
                .get_mut()
                .expect("plan forced")
                .as_mut()
                .expect("enabled");
            plan.sn_of_step[0] = 1;
        });
        assert_eq!(err.invariant, "sn-partition");
    }

    #[test]
    fn mutation_supernode_over_width_cap() {
        // 40 columns amalgamate into >1 supernode under the 32-wide cap;
        // merging them all into one breaks the cap.
        let err = corrupted_sn(40, |sym| {
            let n = sym.n;
            let _ = sym.supernode_plan_raw();
            let plan = sym
                .sn_plan
                .get_mut()
                .expect("plan forced")
                .as_mut()
                .expect("enabled");
            plan.sn_ptr = vec![0, n];
            plan.sn_of_step = vec![0; n];
            plan.row_ptr = vec![0, plan.rows.len()];
            plan.panel_ptr = vec![0, plan.panel_len];
        });
        assert_eq!(err.invariant, "sn-width-cap");
    }

    #[test]
    fn mutation_supernode_panel_size_desync() {
        let err = corrupted_sn(8, |sym| {
            let _ = sym.supernode_plan_raw();
            let plan = sym
                .sn_plan
                .get_mut()
                .expect("plan forced")
                .as_mut()
                .expect("enabled");
            plan.panel_len += 1;
            *plan.panel_ptr.last_mut().expect("nonempty") += 1;
        });
        assert_eq!(err.invariant, "sn-panel-layout");
    }

    #[test]
    fn mutation_member_row_outside_panel_pattern() {
        let err = corrupted_sn(8, |sym| {
            // Point a member's L row at the step-0 pivot row: pivoted
            // before the member, and no supernode body row either.
            let early = sym.row_perm[0];
            let lo = sym.l_ptr[0];
            sym.l_rows[lo] = early;
        });
        assert_eq!(err.invariant, "sn-contained-pattern");
    }

    #[test]
    fn mutation_slot_map_dropped_slot() {
        let err = corrupted_sn(8, |sym| {
            let lo = sym.l_ptr[0];
            let _ = sym.supernode_plan_raw();
            let plan = sym
                .sn_plan
                .get_mut()
                .expect("plan forced")
                .as_mut()
                .expect("enabled");
            plan.l_slot[lo] = crate::supernode::NO_SLOT;
        });
        assert_eq!(err.invariant, "sn-slot-bijective");
    }

    #[test]
    fn mutation_supernode_level_schedule_truncated() {
        let err = corrupted_sn(8, |sym| {
            let _ = sym.supernode_plan_raw();
            let plan = sym
                .sn_plan
                .get_mut()
                .expect("plan forced")
                .as_mut()
                .expect("enabled");
            plan.level_sns.pop();
            *plan.level_ptr.last_mut().expect("nonempty") -= 1;
        });
        assert_eq!(err.invariant, "sn-level-acyclic");
    }

    /// A base factor plus one accumulated rank-1 term, ready to corrupt.
    fn pushed_update() -> LowRankUpdate {
        let lu = SparseLu::factor(&dense_matrix(6)).expect("factor");
        let mut up = LowRankUpdate::new(6);
        up.push(&lu, &[(0, 1.0)], &[(1, 0.5)]).expect("push");
        up.audit().expect("valid update audits clean");
        up
    }

    #[test]
    fn mutation_lowrank_term_arrays_desync() {
        let mut up = pushed_update();
        up.us.push(Vec::new());
        assert_eq!(up.audit().expect_err("caught").invariant, "rank-consistent");
    }

    #[test]
    fn mutation_lowrank_truncated_solve_image() {
        let mut up = pushed_update();
        up.zs[0].pop();
        assert_eq!(up.audit().expect_err("caught").invariant, "z-dimension");
    }

    #[test]
    fn mutation_lowrank_term_index_out_of_range() {
        let mut up = pushed_update();
        up.us[0][0].0 = up.n;
        assert_eq!(
            up.audit().expect_err("caught").invariant,
            "term-index-range"
        );
    }

    #[test]
    fn mutation_lowrank_dropped_capacitance() {
        let mut up = pushed_update();
        up.cap = None;
        assert_eq!(
            up.audit().expect_err("caught").invariant,
            "capacitance-shape"
        );
    }
}
