//! Left-looking (Gilbert–Peierls) sparse LU with threshold partial pivoting,
//! split into a shareable symbolic analysis and per-thread numeric factors.
//!
//! This is the solver behind every DC operating point and every transient
//! time step of the circuit simulator. It factors `A(:, q) = Pᵀ L U` where
//! `q` is a fill-reducing column ordering and `P` is the row permutation
//! chosen by pivoting. The algorithm follows Gilbert & Peierls (1988): for
//! each column, a depth-first search over the structure of the already
//! computed part of `L` predicts the nonzero pattern, and the numeric
//! update is applied in topological order.
//!
//! The factorization is stored in two pieces, KLU-style:
//!
//! * [`SymbolicLu`] — the column ordering, the `L`/`U` nonzero pattern and
//!   the pivot/elimination plan. It depends only on the matrix *sparsity
//!   pattern* (plus the pivot choices of the matrix it was derived from),
//!   is immutable, and is shared behind an [`Arc`] — many threads can
//!   factor same-pattern matrices against one symbolic analysis.
//! * [`SparseLu`] (alias [`NumericLu`]) — the numeric `L`/`U` values over a
//!   shared symbolic plan. Cloning one copies only the value arrays and
//!   bumps the symbolic refcount, which is what makes per-thread numeric
//!   scratch factors cheap.

use std::sync::Arc;

use crate::ordering::{min_degree_ordering, reverse_cuthill_mckee};
use crate::{CscMatrix, LinalgError};

const NO_PIVOT: usize = usize::MAX;

/// Sorts `keys` ascending, applying the same permutation to `vals`.
/// Segments are small (one U column), so insertion sort is the right tool.
fn sort_paired(keys: &mut [usize], vals: &mut [f64]) {
    for i in 1..keys.len() {
        let (k, v) = (keys[i], vals[i]);
        let mut j = i;
        while j > 0 && keys[j - 1] > k {
            keys[j] = keys[j - 1];
            vals[j] = vals[j - 1];
            j -= 1;
        }
        keys[j] = k;
        vals[j] = v;
    }
}

/// Column-ordering strategy for [`SparseLu`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ColumnOrdering {
    /// Factor in natural column order.
    Natural,
    /// Greedy minimum degree on the symmetrized pattern (default).
    #[default]
    MinDegree,
    /// Reverse Cuthill–McKee.
    Rcm,
}

/// Options controlling [`SparseLu::factor_with`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparseLuOptions {
    /// Column ordering strategy.
    pub ordering: ColumnOrdering,
    /// Threshold in `(0, 1]` for diagonal-preferring partial pivoting: the
    /// diagonal entry is accepted as pivot when its magnitude is at least
    /// `pivot_threshold` times the column maximum. `1.0` forces strict
    /// partial pivoting.
    pub pivot_threshold: f64,
    /// Entries with magnitude at or below this are treated as numerically
    /// zero when selecting pivots.
    pub zero_tolerance: f64,
}

impl Default for SparseLuOptions {
    fn default() -> Self {
        SparseLuOptions {
            ordering: ColumnOrdering::MinDegree,
            pivot_threshold: 0.1,
            zero_tolerance: 0.0,
        }
    }
}

/// Reusable scratch for the numeric factorization replay
/// ([`SparseLu::refactor_with`]): an `n`-sized workspace vector and a stamp
/// array. Hot loops (a template fanning out numeric refactorizations per
/// batch member, a session refactoring every few hundred time steps) keep
/// one per thread so the replay allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct LuWorkspace {
    x: Vec<f64>,
    stamp: Vec<usize>,
}

impl LuWorkspace {
    /// An empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    fn reset(&mut self, n: usize) {
        self.x.clear();
        self.x.resize(n, 0.0);
        self.stamp.clear();
        self.stamp.resize(n, usize::MAX);
    }
}

/// The immutable, shareable half of a sparse LU factorization: column
/// ordering `q`, pivot sequence, and the full symbolic `L`/`U` nonzero
/// structure (the elimination plan).
///
/// A `SymbolicLu` is produced by a full pivoting factorization
/// ([`SparseLu::factor`]) and then reused — across value-only
/// refactorizations ([`SparseLu::refactor`]) and across *threads*: it is
/// always held behind an [`Arc`], so concurrent workers on same-topology
/// systems share one symbolic analysis and carry only per-thread numeric
/// values ([`SymbolicLu::numeric`]).
#[derive(Debug)]
pub struct SymbolicLu {
    n: usize,
    /// Column ordering: column `q[k]` of `A` is eliminated at step `k`.
    q: Vec<usize>,
    /// `row_perm[k]` = original row chosen as pivot at step `k`.
    row_perm: Vec<usize>,
    /// L stored by columns (unit diagonal implicit); row indices are
    /// *original* row ids.
    l_ptr: Vec<usize>,
    l_rows: Vec<usize>,
    /// U stored by columns; row indices are pivot *steps* (`0..k`), sorted
    /// ascending within each column segment with the diagonal (pivot)
    /// stored last.
    u_ptr: Vec<usize>,
    u_rows: Vec<usize>,
    /// Pivot zero-tolerance carried from the factorization options so every
    /// numeric replay applies the same singularity test.
    zero_tol: f64,
}

impl SymbolicLu {
    /// System dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Total stored entries in the `L` and `U` patterns (a fill-in metric).
    pub fn pattern_nnz(&self) -> usize {
        self.l_rows.len() + self.u_rows.len()
    }

    /// Builds a fresh numeric factor of `a` over this shared symbolic plan
    /// — the template fan-out primitive: one symbolic analysis, many
    /// per-thread numeric factorizations. Equivalent to cloning an existing
    /// factor and [`SparseLu::refactor`]ing it, without copying stale
    /// values.
    ///
    /// # Errors
    ///
    /// Same as [`SparseLu::refactor`]: shape mismatches,
    /// [`LinalgError::PatternChanged`] if `a` has an entry outside this
    /// pattern, [`LinalgError::Singular`] if a frozen pivot is unusable for
    /// the new values.
    pub fn numeric(sym: &Arc<SymbolicLu>, a: &CscMatrix) -> Result<SparseLu, LinalgError> {
        let mut lu = SparseLu {
            sym: Arc::clone(sym),
            l_vals: vec![0.0; sym.l_rows.len()],
            u_vals: vec![0.0; sym.u_rows.len()],
        };
        lu.refactor(a)?;
        Ok(lu)
    }
}

/// Per-thread numeric half of the factorization: the `L`/`U` values over a
/// shared [`SymbolicLu`]. See [`SparseLu`].
pub type NumericLu = SparseLu;

/// Sparse LU factorization `A(:, q) = Pᵀ L U`.
///
/// Internally this is a *numeric* factor (value arrays) over an
/// [`Arc<SymbolicLu>`] elimination plan; [`SparseLu::symbolic`] exposes the
/// shared half and [`SymbolicLu::numeric`] builds sibling factors for other
/// matrices with the same pattern.
///
/// # Example
///
/// ```
/// use ohmflow_linalg::{SparseLu, TripletMatrix};
///
/// # fn main() -> Result<(), ohmflow_linalg::LinalgError> {
/// let mut t = TripletMatrix::new(3, 3);
/// t.push(0, 0, 2.0);
/// t.push(1, 1, -3.0); // indefinite is fine: the substrate has negative resistors
/// t.push(2, 2, 4.0);
/// t.push(0, 2, 1.0);
/// let lu = SparseLu::factor(&t.to_csc())?;
/// let x = lu.solve(&[5.0, -3.0, 4.0])?;
/// assert!((x[1] - 1.0).abs() < 1e-12 && (x[2] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SparseLu {
    sym: Arc<SymbolicLu>,
    l_vals: Vec<f64>,
    u_vals: Vec<f64>,
}

impl SparseLu {
    /// Factors `a` with default options.
    ///
    /// # Errors
    ///
    /// [`LinalgError::NotSquare`] if `a` is not square;
    /// [`LinalgError::Singular`] if a column has no usable pivot.
    pub fn factor(a: &CscMatrix) -> Result<Self, LinalgError> {
        Self::factor_with(a, &SparseLuOptions::default())
    }

    /// Factors `a` with explicit [`SparseLuOptions`].
    ///
    /// # Errors
    ///
    /// Same as [`SparseLu::factor`].
    pub fn factor_with(a: &CscMatrix, opts: &SparseLuOptions) -> Result<Self, LinalgError> {
        if a.rows() != a.cols() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.cols();
        let q = match opts.ordering {
            ColumnOrdering::Natural => (0..n).collect(),
            ColumnOrdering::MinDegree => min_degree_ordering(a),
            ColumnOrdering::Rcm => reverse_cuthill_mckee(a),
        };

        let mut pinv = vec![NO_PIVOT; n]; // original row -> pivot step
        let mut row_perm = vec![NO_PIVOT; n]; // pivot step -> original row
        let mut l_ptr = vec![0usize];
        let mut l_rows: Vec<usize> = Vec::with_capacity(4 * a.nnz() + n);
        let mut l_vals: Vec<f64> = Vec::with_capacity(4 * a.nnz() + n);
        let mut u_ptr = vec![0usize];
        let mut u_rows: Vec<usize> = Vec::with_capacity(4 * a.nnz() + n);
        let mut u_vals: Vec<f64> = Vec::with_capacity(4 * a.nnz() + n);

        // Workspaces reused across columns; `stamp` arrays avoid O(n) clears.
        let mut x = vec![0.0f64; n];
        let mut pattern: Vec<usize> = Vec::with_capacity(64);
        let mut row_stamp = vec![usize::MAX; n]; // row in pattern this column?
        let mut step_stamp = vec![usize::MAX; n]; // step visited by DFS this column?
        let mut topo: Vec<usize> = Vec::with_capacity(64); // post-order of pivot steps
        let mut dfs: Vec<(usize, usize)> = Vec::with_capacity(64);

        for k in 0..n {
            let col = q[k];
            pattern.clear();
            topo.clear();

            for (r, v) in a.col(col) {
                if row_stamp[r] != k {
                    row_stamp[r] = k;
                    pattern.push(r);
                    x[r] = v;
                } else {
                    x[r] += v;
                }
                let step = pinv[r];
                if step != NO_PIVOT && step_stamp[step] != k {
                    // DFS over L's structure starting at `step`.
                    step_stamp[step] = k;
                    dfs.push((step, l_ptr[step]));
                    while let Some(&mut (s, ref mut ptr)) = dfs.last_mut() {
                        let hi = l_ptr[s + 1];
                        let mut descended = false;
                        while *ptr < hi {
                            let child_row = l_rows[*ptr];
                            *ptr += 1;
                            if row_stamp[child_row] != k {
                                row_stamp[child_row] = k;
                                pattern.push(child_row);
                                x[child_row] = 0.0;
                            }
                            let child_step = pinv[child_row];
                            if child_step != NO_PIVOT && step_stamp[child_step] != k {
                                step_stamp[child_step] = k;
                                dfs.push((child_step, l_ptr[child_step]));
                                descended = true;
                                break;
                            }
                        }
                        if !descended && {
                            let (s2, p2) = *dfs.last().expect("stack nonempty");
                            p2 >= l_ptr[s2 + 1]
                        } {
                            let (s2, _) = dfs.pop().expect("stack nonempty");
                            topo.push(s2);
                        }
                    }
                }
            }

            // Numeric update in topological order (reverse post-order).
            for &s in topo.iter().rev() {
                let xval = x[row_perm[s]];
                if xval != 0.0 {
                    for idx in l_ptr[s]..l_ptr[s + 1] {
                        x[l_rows[idx]] -= xval * l_vals[idx];
                    }
                }
            }

            // Pivot selection with threshold preference for the diagonal
            // (original row id == col), which keeps MNA factorizations
            // stable without destroying sparsity.
            let mut max_mag = 0.0f64;
            let mut max_row = NO_PIVOT;
            let mut diag_mag = -1.0f64;
            for &r in &pattern {
                if pinv[r] == NO_PIVOT {
                    let mag = x[r].abs();
                    if mag > max_mag {
                        max_mag = mag;
                        max_row = r;
                    }
                    if r == col {
                        diag_mag = mag;
                    }
                }
            }
            if max_row == NO_PIVOT || max_mag <= opts.zero_tolerance {
                for &r in &pattern {
                    x[r] = 0.0;
                }
                return Err(LinalgError::Singular { column: col });
            }
            let pivot_row =
                if diag_mag >= opts.pivot_threshold * max_mag && diag_mag > opts.zero_tolerance {
                    col
                } else {
                    max_row
                };
            let pivot_val = x[pivot_row];
            pinv[pivot_row] = k;
            row_perm[k] = pivot_row;

            // Emit U column (entries at pivotal rows, ascending step order,
            // pivot last) and L column (non-pivotal rows scaled by the
            // pivot). The ascending order is a topological order of the
            // column's update dependencies, which is what lets `refactor`
            // replay the numeric phase without redoing the symbolic DFS.
            //
            // Entries that cancelled to exactly 0.0 are stored anyway: the
            // stored structure must be the *full* symbolic closure, or a
            // later `refactor` (same pattern, different values) would
            // silently skip the update paths through the cancelled
            // positions and produce a wrong factorization.
            let u_col_start = u_rows.len();
            for &r in &pattern {
                let step = pinv[r];
                if step != NO_PIVOT && step != k {
                    u_rows.push(step);
                    u_vals.push(x[r]);
                }
            }
            sort_paired(&mut u_rows[u_col_start..], &mut u_vals[u_col_start..]);
            u_rows.push(k);
            u_vals.push(pivot_val);
            u_ptr.push(u_rows.len());

            for &r in &pattern {
                if pinv[r] == NO_PIVOT {
                    l_rows.push(r);
                    l_vals.push(x[r] / pivot_val);
                }
            }
            l_ptr.push(l_rows.len());

            for &r in &pattern {
                x[r] = 0.0;
            }
        }

        Ok(SparseLu {
            sym: Arc::new(SymbolicLu {
                n,
                q,
                row_perm,
                l_ptr,
                l_rows,
                u_ptr,
                u_rows,
                zero_tol: opts.zero_tolerance,
            }),
            l_vals,
            u_vals,
        })
    }

    /// The shared symbolic half (ordering, pattern, pivot plan). Clone the
    /// `Arc` to hand the elimination plan to other threads; pair it with
    /// [`SymbolicLu::numeric`] to build sibling factors.
    pub fn symbolic(&self) -> &Arc<SymbolicLu> {
        &self.sym
    }

    /// Recomputes the numeric factorization for a matrix with the **same**
    /// (or a subset of the) sparsity pattern as the one originally
    /// factored, reusing the column ordering, the symbolic `L`/`U`
    /// structure and the pivot sequence — the KLU-style fast path for
    /// value-only matrix changes (a circuit re-stamped with different
    /// conductances).
    ///
    /// This skips the symbolic DFS and the pivot search entirely, so it is
    /// several times cheaper than [`SparseLu::factor`]; the cost is that
    /// the frozen pivot sequence may be less numerically favourable for
    /// the new values. A pivot that collapses below `10⁻¹⁰` of its
    /// column's magnitude is rejected as [`LinalgError::Singular`] so the
    /// caller can fall back to a fresh pivoting factorization.
    ///
    /// # Errors
    ///
    /// [`LinalgError::NotSquare`] / [`LinalgError::DimensionMismatch`] for
    /// shape mismatches, [`LinalgError::PatternChanged`] if `a` has an
    /// entry outside the factorized pattern, and [`LinalgError::Singular`]
    /// if a frozen pivot becomes numerically unusable.
    ///
    /// On error the factor values are partially overwritten: the
    /// factorization **must not** be used for further solves and should be
    /// replaced via [`SparseLu::factor`].
    pub fn refactor(&mut self, a: &CscMatrix) -> Result<(), LinalgError> {
        let mut ws = LuWorkspace::new();
        self.refactor_with(a, &mut ws)
    }

    /// [`SparseLu::refactor`] with caller-provided scratch, so repeated
    /// numeric replays (per-step rebases, template fan-outs) allocate
    /// nothing.
    ///
    /// # Errors
    ///
    /// Same as [`SparseLu::refactor`].
    pub fn refactor_with(
        &mut self,
        a: &CscMatrix,
        ws: &mut LuWorkspace,
    ) -> Result<(), LinalgError> {
        if a.rows() != a.cols() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let sym = &self.sym;
        if a.cols() != sym.n {
            return Err(LinalgError::DimensionMismatch {
                expected: sym.n,
                found: a.cols(),
            });
        }
        let n = sym.n;
        ws.reset(n);
        let x = &mut ws.x;
        let stamp = &mut ws.stamp;

        for k in 0..n {
            let col = sym.q[k];
            let (ulo, uhi) = (sym.u_ptr[k], sym.u_ptr[k + 1]);
            let (llo, lhi) = (sym.l_ptr[k], sym.l_ptr[k + 1]);

            // Zero the workspace over the column's factorized pattern.
            for idx in ulo..uhi - 1 {
                let r = sym.row_perm[sym.u_rows[idx]];
                stamp[r] = k;
                x[r] = 0.0;
            }
            let pivot_row = sym.row_perm[k];
            stamp[pivot_row] = k;
            x[pivot_row] = 0.0;
            for idx in llo..lhi {
                let r = sym.l_rows[idx];
                stamp[r] = k;
                x[r] = 0.0;
            }

            // Scatter the new values; anything outside the pattern means
            // the symbolic factorization no longer applies.
            for (r, v) in a.col(col) {
                if stamp[r] != k {
                    return Err(LinalgError::PatternChanged {
                        column: col,
                        row: r,
                    });
                }
                x[r] += v;
            }

            // Replay the numeric update. U entries are stored in ascending
            // pivot-step order, which is a topological order of the
            // dependencies (L column `s` only touches rows pivoted after
            // `s`), so x[row_perm[s]] is final when step `s` is applied.
            for idx in ulo..uhi - 1 {
                let s = sym.u_rows[idx];
                let xval = x[sym.row_perm[s]];
                self.u_vals[idx] = xval;
                if xval != 0.0 {
                    for j in sym.l_ptr[s]..sym.l_ptr[s + 1] {
                        x[sym.l_rows[j]] -= xval * self.l_vals[j];
                    }
                }
            }

            // Frozen pivot: check it is still usable for the new values.
            let pivot_val = x[pivot_row];
            let mut col_max = pivot_val.abs();
            for idx in llo..lhi {
                col_max = col_max.max(x[sym.l_rows[idx]].abs());
            }
            if !pivot_val.is_finite()
                || pivot_val.abs() <= sym.zero_tol
                || pivot_val.abs() < 1e-10 * col_max
            {
                return Err(LinalgError::Singular { column: col });
            }
            self.u_vals[uhi - 1] = pivot_val;
            for idx in llo..lhi {
                self.l_vals[idx] = x[sym.l_rows[idx]] / pivot_val;
            }
        }
        Ok(())
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] if `b.len()` differs from the
    /// system dimension.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let mut work = Vec::new();
        let mut out = Vec::new();
        self.solve_into(b, &mut work, &mut out)?;
        Ok(out)
    }

    /// Solves `A x = b` into caller-provided buffers: on success `out`
    /// holds the solution. Both buffers are resized as needed, so hot loops
    /// (a transient simulation solving thousands of time steps) reuse their
    /// allocations.
    ///
    /// # Errors
    ///
    /// Same as [`SparseLu::solve`].
    pub fn solve_into(
        &self,
        b: &[f64],
        work: &mut Vec<f64>,
        out: &mut Vec<f64>,
    ) -> Result<(), LinalgError> {
        let sym = &self.sym;
        if b.len() != sym.n {
            return Err(LinalgError::DimensionMismatch {
                expected: sym.n,
                found: b.len(),
            });
        }
        // Forward solve L z = P b; z (in `out`) indexed by pivot step.
        work.clear();
        work.extend_from_slice(b);
        out.clear();
        out.resize(sym.n, 0.0);
        for step in 0..sym.n {
            let zk = work[sym.row_perm[step]];
            out[step] = zk;
            if zk != 0.0 {
                for idx in sym.l_ptr[step]..sym.l_ptr[step + 1] {
                    work[sym.l_rows[idx]] -= zk * self.l_vals[idx];
                }
            }
        }
        // Backward solve U y = z in place; U columns hold steps, diagonal last.
        for step in (0..sym.n).rev() {
            let (lo, hi) = (sym.u_ptr[step], sym.u_ptr[step + 1]);
            let yk = out[step] / self.u_vals[hi - 1];
            out[step] = yk;
            if yk != 0.0 {
                for idx in lo..(hi - 1) {
                    out[sym.u_rows[idx]] -= yk * self.u_vals[idx];
                }
            }
        }
        // Undo the column permutation: x[q[k]] = y[k].
        for k in 0..sym.n {
            work[sym.q[k]] = out[k];
        }
        std::mem::swap(work, out);
        Ok(())
    }

    /// Solves `A x = b`, then applies one step of iterative refinement using
    /// the original matrix `a` to reduce the residual.
    ///
    /// # Errors
    ///
    /// Same as [`SparseLu::solve`].
    pub fn solve_refined(&self, a: &CscMatrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let mut x = self.solve(b)?;
        let ax = a.mul_vec(&x);
        let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, ai)| bi - ai).collect();
        let dx = self.solve(&r)?;
        for (xi, di) in x.iter_mut().zip(&dx) {
            *xi += di;
        }
        Ok(x)
    }

    /// System dimension.
    pub fn dim(&self) -> usize {
        self.sym.n
    }

    /// Total stored entries in `L` and `U` (a fill-in metric).
    pub fn factor_nnz(&self) -> usize {
        self.l_vals.len() + self.u_vals.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletMatrix;

    fn solve_dense_reference(t: &TripletMatrix, b: &[f64]) -> Vec<f64> {
        use crate::DenseMatrix;
        let csr = t.to_csr();
        let mut d = DenseMatrix::zeros(csr.rows(), csr.cols());
        for r in 0..csr.rows() {
            for (c, v) in csr.row(r) {
                d[(r, c)] += v;
            }
        }
        d.solve(b).expect("reference solve")
    }

    #[test]
    fn diagonal_system() {
        let mut t = TripletMatrix::new(3, 3);
        t.push(0, 0, 2.0);
        t.push(1, 1, 4.0);
        t.push(2, 2, -8.0);
        let lu = SparseLu::factor(&t.to_csc()).unwrap();
        let x = lu.solve(&[2.0, 4.0, 8.0]).unwrap();
        assert_eq!(x, vec![1.0, 1.0, -1.0]);
    }

    #[test]
    fn matches_dense_reference_on_random_systems() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..25 {
            let n = 2 + (trial % 12);
            let mut t = TripletMatrix::new(n, n);
            for i in 0..n {
                t.push(
                    i,
                    i,
                    rng.gen_range(1.0..4.0) * if rng.gen_bool(0.3) { -1.0 } else { 1.0 },
                );
            }
            for _ in 0..(2 * n) {
                let i = rng.gen_range(0..n);
                let j = rng.gen_range(0..n);
                t.push(i, j, rng.gen_range(-1.0..1.0) * 0.4);
            }
            let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let lu = SparseLu::factor(&t.to_csc()).unwrap();
            let x = lu.solve(&b).unwrap();
            let xref = solve_dense_reference(&t, &b);
            for (a, r) in x.iter().zip(&xref) {
                assert!((a - r).abs() < 1e-8, "trial {trial}: {a} vs {r}");
            }
        }
    }

    #[test]
    fn singular_matrix_detected() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(0, 1, 2.0);
        t.push(1, 0, 2.0);
        t.push(1, 1, 4.0);
        assert!(matches!(
            SparseLu::factor(&t.to_csc()),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn structurally_singular_detected() {
        // Empty column.
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 0, 1.0);
        assert!(SparseLu::factor(&t.to_csc()).is_err());
    }

    #[test]
    fn needs_row_pivoting() {
        // Zero diagonal forces off-diagonal pivot.
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 1, 1.0);
        t.push(1, 0, 1.0);
        let lu = SparseLu::factor(&t.to_csc()).unwrap();
        let x = lu.solve(&[3.0, 7.0]).unwrap();
        assert_eq!(x, vec![7.0, 3.0]);
    }

    #[test]
    fn all_orderings_agree() {
        let mut t = TripletMatrix::new(5, 5);
        for i in 0..5 {
            t.push(i, i, 3.0);
        }
        for i in 0..4 {
            t.push(i, i + 1, -1.0);
            t.push(i + 1, i, -1.0);
        }
        let b = [1.0, 2.0, 3.0, 4.0, 5.0];
        let csc = t.to_csc();
        let xref = solve_dense_reference(&t, &b);
        for ord in [
            ColumnOrdering::Natural,
            ColumnOrdering::MinDegree,
            ColumnOrdering::Rcm,
        ] {
            let opts = SparseLuOptions {
                ordering: ord,
                ..Default::default()
            };
            let x = SparseLu::factor_with(&csc, &opts)
                .unwrap()
                .solve(&b)
                .unwrap();
            for (a, r) in x.iter().zip(&xref) {
                assert!((a - r).abs() < 1e-10, "{ord:?}");
            }
        }
    }

    #[test]
    fn refinement_reduces_residual() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(0, 1, 1.0);
        t.push(1, 0, 1.0);
        t.push(1, 1, 1.0000001);
        let csc = t.to_csc();
        let lu = SparseLu::factor(&csc).unwrap();
        let b = [2.0, 2.0000001];
        let x = lu.solve_refined(&csc, &b).unwrap();
        let ax = csc.mul_vec(&x);
        assert!((ax[0] - b[0]).abs() < 1e-9 && (ax[1] - b[1]).abs() < 1e-9);
    }

    #[test]
    fn large_grid_system() {
        // 2-D resistor-grid Laplacian + identity: well-conditioned, sparse.
        let side = 20;
        let n = side * side;
        let mut t = TripletMatrix::new(n, n);
        let id = |r: usize, c: usize| r * side + c;
        for r in 0..side {
            for c in 0..side {
                let me = id(r, c);
                let mut deg = 1.0; // +1 keeps it nonsingular
                let mut nbrs = Vec::new();
                if r > 0 {
                    nbrs.push(id(r - 1, c));
                }
                if r + 1 < side {
                    nbrs.push(id(r + 1, c));
                }
                if c > 0 {
                    nbrs.push(id(r, c - 1));
                }
                if c + 1 < side {
                    nbrs.push(id(r, c + 1));
                }
                for &nb in &nbrs {
                    t.push(me, nb, -1.0);
                    deg += 1.0;
                }
                t.push(me, me, deg);
            }
        }
        let csc = t.to_csc();
        let b = vec![1.0; n];
        let lu = SparseLu::factor(&csc).unwrap();
        let x = lu.solve(&b).unwrap();
        let ax = csc.mul_vec(&x);
        for (ai, bi) in ax.iter().zip(&b) {
            assert!((ai - bi).abs() < 1e-9);
        }
        // Fill-in should stay modest relative to the dense n^2.
        assert!(lu.factor_nnz() < n * n / 4);
    }

    #[test]
    fn refactor_matches_fresh_factorization() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..20 {
            let n = 3 + (trial % 10);
            // Fixed pattern, two value assignments.
            let mut pos: Vec<(usize, usize)> = (0..n).map(|i| (i, i)).collect();
            for _ in 0..(2 * n) {
                pos.push((rng.gen_range(0..n), rng.gen_range(0..n)));
            }
            let fill = |rng: &mut StdRng| {
                let mut t = TripletMatrix::new(n, n);
                for (k, &(i, j)) in pos.iter().enumerate() {
                    let v = if k < n {
                        rng.gen_range(2.0..5.0) * if rng.gen_bool(0.3) { -1.0 } else { 1.0 }
                    } else {
                        rng.gen_range(-0.5..0.5)
                    };
                    t.push(i, j, v);
                }
                t
            };
            let a1 = fill(&mut rng).to_csc();
            let a2 = fill(&mut rng).to_csc();
            let mut lu = SparseLu::factor(&a1).unwrap();
            lu.refactor(&a2).unwrap();
            let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let x = lu.solve(&b).unwrap();
            let ax = a2.mul_vec(&x);
            for (ai, bi) in ax.iter().zip(&b) {
                assert!(
                    (ai - bi).abs() < 1e-8,
                    "trial {trial}: residual {}",
                    ai - bi
                );
            }
        }
    }

    #[test]
    fn symbolic_numeric_matches_fresh_factorization() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let n = 12;
        let mut pos: Vec<(usize, usize)> = (0..n).map(|i| (i, i)).collect();
        for _ in 0..(3 * n) {
            pos.push((rng.gen_range(0..n), rng.gen_range(0..n)));
        }
        let fill = |rng: &mut StdRng| {
            let mut t = TripletMatrix::new(n, n);
            for (k, &(i, j)) in pos.iter().enumerate() {
                let v = if k < n {
                    rng.gen_range(2.0..5.0)
                } else {
                    rng.gen_range(-0.4..0.4)
                };
                t.push(i, j, v);
            }
            t.to_csc()
        };
        let a1 = fill(&mut rng);
        let base = SparseLu::factor(&a1).unwrap();
        let sym = Arc::clone(base.symbolic());
        for _ in 0..5 {
            let a2 = fill(&mut rng);
            let lu = SymbolicLu::numeric(&sym, &a2).unwrap();
            // Sibling factors share the symbolic plan by pointer.
            assert!(Arc::ptr_eq(lu.symbolic(), &sym));
            let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let x = lu.solve(&b).unwrap();
            let x_ref = SparseLu::factor(&a2).unwrap().solve(&b).unwrap();
            for (a, r) in x.iter().zip(&x_ref) {
                assert!((a - r).abs() < 1e-9, "{a} vs {r}");
            }
        }
    }

    #[test]
    fn refactor_survives_exact_cancellation_in_original_factor() {
        // Elimination of this matrix cancels a fill entry to exactly 0.0.
        // The stored structure must still contain that position, or a
        // refactorization with different values silently skips the update
        // path through it and yields a wrong (but non-erroring) factor.
        let entries = [
            (0, 0, 3.0),
            (0, 3, -1.0),
            (1, 1, 3.0),
            (1, 3, 1.0),
            (2, 0, -1.0),
            (2, 1, -1.0),
            (2, 2, 2.0),
            (3, 3, 3.0),
        ];
        let fill = |scale: &dyn Fn(usize) -> f64| {
            let mut t = TripletMatrix::new(4, 4);
            for (i, &(r, c, v)) in entries.iter().enumerate() {
                t.push(r, c, v * scale(i));
            }
            t.to_csc()
        };
        let a1 = fill(&|_| 1.0);
        // Perturb every entry differently so any skipped update shows up.
        let a2 = fill(&|i| 1.0 + 0.1 * (i as f64 + 1.0));
        for ordering in [
            ColumnOrdering::Natural,
            ColumnOrdering::MinDegree,
            ColumnOrdering::Rcm,
        ] {
            let opts = SparseLuOptions {
                ordering,
                ..Default::default()
            };
            let mut lu = SparseLu::factor_with(&a1, &opts).unwrap();
            lu.refactor(&a2).unwrap();
            let b = [1.0, -2.0, 3.0, -4.0];
            let x = lu.solve(&b).unwrap();
            let x_ref = SparseLu::factor_with(&a2, &opts)
                .unwrap()
                .solve(&b)
                .unwrap();
            for (a, r) in x.iter().zip(&x_ref) {
                assert!((a - r).abs() < 1e-12, "{ordering:?}: {a} vs {r}");
            }
        }
    }

    #[test]
    fn refactor_rejects_new_pattern() {
        let mut t = TripletMatrix::new(3, 3);
        t.push(0, 0, 2.0);
        t.push(1, 1, 3.0);
        t.push(2, 2, 4.0);
        let mut lu = SparseLu::factor(&t.to_csc()).unwrap();
        t.push(0, 2, 1.0); // outside the factorized pattern
        assert!(matches!(
            lu.refactor(&t.to_csc()),
            Err(LinalgError::PatternChanged { .. })
        ));
    }

    #[test]
    fn refactor_subset_pattern_is_allowed() {
        // Dropping an entry (structural zero) keeps the factorization valid.
        let mut t = TripletMatrix::new(3, 3);
        t.push(0, 0, 2.0);
        t.push(1, 1, 3.0);
        t.push(2, 2, 4.0);
        t.push(0, 2, 1.0);
        t.push(2, 0, 0.5);
        let csc = t.to_csc();
        let mut lu = SparseLu::factor(&csc).unwrap();
        let mut t2 = TripletMatrix::new(3, 3);
        t2.push(0, 0, 5.0);
        t2.push(1, 1, 6.0);
        t2.push(2, 2, 7.0);
        let csc2 = t2.to_csc();
        lu.refactor(&csc2).unwrap();
        let x = lu.solve(&[5.0, 12.0, 21.0]).unwrap();
        for (xi, e) in x.iter().zip(&[1.0, 2.0, 3.0]) {
            assert!((xi - e).abs() < 1e-12);
        }
    }

    #[test]
    fn refactor_detects_collapsed_pivot() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 1, 1.0);
        let mut lu = SparseLu::factor(&t.to_csc()).unwrap();
        let mut t2 = TripletMatrix::new(2, 2);
        t2.push(0, 0, 0.0);
        t2.push(1, 1, 1.0);
        assert!(matches!(
            lu.refactor(&t2.to_csc()),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn refactor_with_reuses_workspace() {
        let mut t = TripletMatrix::new(3, 3);
        t.push(0, 0, 2.0);
        t.push(1, 1, 3.0);
        t.push(2, 2, 4.0);
        t.push(0, 2, 1.0);
        let csc = t.to_csc();
        let mut lu = SparseLu::factor(&csc).unwrap();
        let mut ws = LuWorkspace::new();
        for scale in [1.5, 2.0, 3.0] {
            let mut t2 = TripletMatrix::new(3, 3);
            t2.push(0, 0, 2.0 * scale);
            t2.push(1, 1, 3.0 * scale);
            t2.push(2, 2, 4.0 * scale);
            t2.push(0, 2, scale);
            let a = t2.to_csc();
            lu.refactor_with(&a, &mut ws).unwrap();
            let x = lu.solve(&[2.0 * scale, 3.0 * scale, 4.0 * scale]).unwrap();
            let ax = a.mul_vec(&x);
            for (ai, bi) in ax.iter().zip(&[2.0 * scale, 3.0 * scale, 4.0 * scale]) {
                assert!((ai - bi).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn solve_into_reuses_buffers() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 2.0);
        t.push(1, 1, 4.0);
        let lu = SparseLu::factor(&t.to_csc()).unwrap();
        let (mut work, mut out) = (Vec::new(), Vec::new());
        lu.solve_into(&[2.0, 4.0], &mut work, &mut out).unwrap();
        assert_eq!(out, vec![1.0, 1.0]);
        lu.solve_into(&[4.0, 8.0], &mut work, &mut out).unwrap();
        assert_eq!(out, vec![2.0, 2.0]);
    }

    #[test]
    fn dimension_mismatch_on_solve() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 1, 1.0);
        let lu = SparseLu::factor(&t.to_csc()).unwrap();
        assert!(matches!(
            lu.solve(&[1.0]),
            Err(LinalgError::DimensionMismatch {
                expected: 2,
                found: 1
            })
        ));
    }
}
