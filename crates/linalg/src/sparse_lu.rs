//! Left-looking (Gilbert–Peierls) sparse LU with threshold partial pivoting,
//! split into a shareable symbolic analysis and per-thread numeric factors.
//!
//! This is the solver behind every DC operating point and every transient
//! time step of the circuit simulator. It factors `A(:, q) = Pᵀ L U` where
//! `q` is a fill-reducing column ordering and `P` is the row permutation
//! chosen by pivoting. The algorithm follows Gilbert & Peierls (1988): for
//! each column, a depth-first search over the structure of the already
//! computed part of `L` predicts the nonzero pattern, and the numeric
//! update is applied in topological order.
//!
//! The factorization is stored in two pieces, KLU-style:
//!
//! * [`SymbolicLu`] — the column ordering, the `L`/`U` nonzero pattern and
//!   the pivot/elimination plan. It depends only on the matrix *sparsity
//!   pattern* (plus the pivot choices of the matrix it was derived from),
//!   is immutable, and is shared behind an [`Arc`] — many threads can
//!   factor same-pattern matrices against one symbolic analysis.
//! * [`SparseLu`] (alias [`NumericLu`]) — the numeric `L`/`U` values over a
//!   shared symbolic plan. Cloning one copies only the value arrays and
//!   bumps the symbolic refcount, which is what makes per-thread numeric
//!   scratch factors cheap.

use std::sync::Arc;

use crate::dense::{dot_lanes_f64, panel_rank_update, trsv_unit_lower, LuScalar};
use crate::ordering::{
    amd_btf_nd_ordering, amd_btf_ordering, amd_ordering, min_degree_ordering,
    nested_dissection_ordering, reverse_cuthill_mckee, BlockOrdering,
};
use crate::supernode::{SupernodePlan, SupernodeStats, SymbolicView, MAX_SN_WIDTH, NO_SLOT};
use crate::{CscMatrix, LinalgError};

pub(crate) const NO_PIVOT: usize = usize::MAX;

/// Numeric precision of a factorization's stored values.
///
/// The symbolic analysis, the pivot sequence and every solve interface stay
/// `f64`; the choice only affects the factor value arrays and the
/// refactorization arithmetic. [`Precision::F32Refined`] halves the factor
/// memory traffic — the dominant cost of a numeric replay — and relies on
/// `f64` iterative refinement (the residual is always computed against the
/// original `f64` matrix) to recover full accuracy; see
/// [`SparseLu::solve_refined`] and the DC layer's refinement loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Precision {
    /// Full double precision (the default; bit-identical to the historical
    /// behaviour).
    #[default]
    F64,
    /// Store factor values in `f32` and replay refactorizations in `f32`
    /// arithmetic; callers are expected to recover `f64`-level accuracy
    /// through iterative refinement against the original matrix. Unsafe
    /// without refinement whenever the system's conditioning eats the
    /// ~7 significant digits `f32` carries — see DESIGN.md.
    F32Refined,
}

/// Sorts `keys` ascending, applying the same permutation to `vals`: an
/// index permutation is `sort_unstable`d by key, then applied to both
/// slices in place by walking its cycles. `perm` is caller-provided scratch
/// so the factorization loop allocates nothing. Keys are distinct (one `U`
/// entry per pivot step), so the unstable sort is deterministic.
///
/// This replaced an insertion sort: fill-heavy columns of large substrate
/// matrices reach hundreds of entries, where the insertion sort's O(len²)
/// dominated the whole symbolic phase (see `sort_paired_insertion`, kept as
/// the test oracle, and the symbolic-factor entries in `BENCH_PR3.json`).
fn sort_paired(keys: &mut [usize], vals: &mut [f64], perm: &mut Vec<usize>) {
    let len = keys.len();
    if len < 2 {
        return;
    }
    perm.clear();
    perm.extend(0..len);
    perm.sort_unstable_by_key(|&i| keys[i]);
    // Apply in place: position `dst` receives the element at `perm[dst]`.
    // Consumed positions are marked so each cycle rotates exactly once.
    const DONE: usize = usize::MAX;
    for start in 0..len {
        let mut src = perm[start];
        if src == DONE || src == start {
            perm[start] = DONE;
            continue;
        }
        let (k0, v0) = (keys[start], vals[start]);
        let mut dst = start;
        while src != start {
            keys[dst] = keys[src];
            vals[dst] = vals[src];
            let next = perm[src];
            perm[src] = DONE;
            dst = src;
            src = next;
        }
        keys[dst] = k0;
        vals[dst] = v0;
        perm[start] = DONE;
    }
}

/// The pre-rewrite insertion-sort version of [`sort_paired`], kept as the
/// agreement oracle for the permutation-based implementation.
#[cfg(test)]
fn sort_paired_insertion(keys: &mut [usize], vals: &mut [f64]) {
    for i in 1..keys.len() {
        let (k, v) = (keys[i], vals[i]);
        let mut j = i;
        while j > 0 && keys[j - 1] > k {
            keys[j] = keys[j - 1];
            vals[j] = vals[j - 1];
            j -= 1;
        }
        keys[j] = k;
        vals[j] = v;
    }
}

/// How [`SparseLu::refactor_with_strategy`] schedules the numeric column
/// replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RefactorStrategy {
    /// Level-scheduled parallel replay when the system has at least
    /// [`SparseLu::PAR_COL_THRESHOLD`] columns, more than one rayon worker
    /// thread is available, and the caller is not itself running inside a
    /// rayon worker (batch fan-outs already saturate the machine one
    /// matrix per worker; nesting a second layer would oversubscribe).
    /// Serial otherwise.
    #[default]
    Auto,
    /// Always the serial replay (the reference path).
    Serial,
    /// Level-scheduled parallel replay on exactly `threads` workers,
    /// regardless of system size — the test/bench override.
    Parallel {
        /// Worker count (values `<= 1` degenerate to the serial path).
        threads: usize,
    },
}

/// Raw pointers to a factor's `L`/`U`/off-diagonal value arrays, handed to
/// concurrent refactorization workers.
///
/// SAFETY: sharing is sound because the level schedule partitions writes
/// (each pivot step owns disjoint `l_vals`/`u_vals`/`off_vals` ranges and
/// is claimed by exactly one worker through an atomic cursor) and orders
/// reads (a step only reads `L` columns of strictly lower levels,
/// separated by a [`std::sync::Barrier`], which gives the happens-before
/// edge; off-diagonal values are never read during a refactorization).
struct FactorValuePtrs<S> {
    l: *mut S,
    u: *mut S,
    off: *mut S,
    /// Dense supernode panel storage (empty when no plan is active). A
    /// supernode's panel region is written only by the worker that owns
    /// that supernode, so the same disjointness argument applies.
    panels: *mut S,
}

// SAFETY: `*mut S` is not `Sync` by default because unsynchronized shared
// writes through aliasing pointers are UB. Sharing `&FactorValuePtrs`
// across refactor workers is nevertheless sound because the accesses never
// alias or race (see the struct docs above): the level schedule partitions
// writes and the barriers order cross-level reads. The `S: Send` bound is
// required — workers write `S` values into arrays owned (and later read)
// by the coordinating thread, which is exactly a cross-thread transfer of
// `S`. No `&S` is ever shared between threads through these pointers, so
// `S: Sync` is not needed (in practice `S` is `f32`/`f64` and has both).
unsafe impl<S: Send> Sync for FactorValuePtrs<S> {}

/// Shared prologue of the scalar and blocked replay steps: zeroes the
/// workspace over step `k`'s factorized pattern (and its off-diagonal
/// slots) and scatters `a`'s column into it.
///
/// # Safety
///
/// Same contract as [`refactor_step`].
#[allow(clippy::too_many_arguments)]
#[inline]
unsafe fn scatter_step_column<S: LuScalar>(
    sym: &SymbolicLu,
    a: &CscMatrix,
    k: usize,
    x: &mut [S],
    stamp: &mut [usize],
    off_stamp: &mut [usize],
    off_slot: &mut [usize],
    ptrs: &FactorValuePtrs<S>,
) -> Result<(), LinalgError> {
    let col = sym.q[k];
    let (ulo, uhi) = (sym.u_ptr[k], sym.u_ptr[k + 1]);
    let (llo, lhi) = (sym.l_ptr[k], sym.l_ptr[k + 1]);
    // Precondition spot-checks of the raw-pointer contract: the step's
    // value ranges must lie inside the arrays `ptrs` points to.
    debug_assert!(ulo < uhi && uhi <= sym.u_rows.len());
    debug_assert!(llo <= lhi && lhi <= sym.l_rows.len());
    debug_assert!(sym.off_ptr[k + 1] <= sym.off_rows.len());
    debug_assert!(x.len() == sym.n && stamp.len() == sym.n);
    debug_assert!(off_stamp.len() == sym.n && off_slot.len() == sym.n);

    // Zero the workspace over the column's factorized pattern.
    for idx in ulo..uhi - 1 {
        let r = sym.row_perm[sym.u_rows[idx]];
        stamp[r] = k;
        x[r] = S::ZERO;
    }
    let pivot_row = sym.row_perm[k];
    stamp[pivot_row] = k;
    x[pivot_row] = S::ZERO;
    for idx in llo..lhi {
        let r = sym.l_rows[idx];
        stamp[r] = k;
        x[r] = S::ZERO;
    }
    // Zero the step's off-diagonal slots (rows of earlier blocks, kept as
    // raw values applied at solve time — disjoint from the in-pattern
    // rows, which all live in this step's own block).
    for idx in sym.off_ptr[k]..sym.off_ptr[k + 1] {
        let r = sym.off_rows[idx];
        off_stamp[r] = k;
        off_slot[r] = idx;
        // SAFETY: `idx` lies in this step's exclusive off range (caller
        // contract a).
        unsafe { *ptrs.off.add(idx) = S::ZERO };
    }

    // Scatter the new values; anything outside the pattern means the
    // symbolic factorization no longer applies.
    for (r, v) in a.col(col) {
        if stamp[r] == k {
            x[r] += S::from_f64(v);
        } else if off_stamp[r] == k {
            // SAFETY: `off_slot[r]` was set above to an index in this
            // step's exclusive off range.
            unsafe { *ptrs.off.add(off_slot[r]) += S::from_f64(v) };
        } else {
            return Err(LinalgError::PatternChanged {
                column: col,
                row: r,
            });
        }
    }
    Ok(())
}

/// Shared epilogue of the replay steps: frozen-pivot check (always against
/// `f64` thresholds, so the `f32` path applies the same singularity test)
/// and the step's final `U`-pivot / `L` writes.
///
/// # Safety
///
/// Same contract as [`refactor_step`].
#[inline]
unsafe fn finish_step_column<S: LuScalar>(
    sym: &SymbolicLu,
    k: usize,
    x: &mut [S],
    ptrs: &FactorValuePtrs<S>,
) -> Result<(), LinalgError> {
    let (llo, lhi) = (sym.l_ptr[k], sym.l_ptr[k + 1]);
    let pivot_row = sym.row_perm[k];
    let pivot_val = x[pivot_row];
    let pv = pivot_val.to_f64();
    let mut col_max = pv.abs();
    for idx in llo..lhi {
        col_max = col_max.max(x[sym.l_rows[idx]].to_f64().abs());
    }
    if !pv.is_finite() || pv.abs() <= sym.zero_tol || pv.abs() < 1e-10 * col_max {
        return Err(LinalgError::Singular { column: sym.q[k] });
    }
    // SAFETY: this step's exclusive U/L ranges (caller contract a).
    unsafe { *ptrs.u.add(sym.u_ptr[k + 1] - 1) = pivot_val };
    for idx in llo..lhi {
        unsafe { *ptrs.l.add(idx) = x[sym.l_rows[idx]] / pivot_val };
    }
    Ok(())
}

/// Replays the numeric elimination of pivot step `k` against the values of
/// `a`: scatters `a`'s column into the workspace (in-pattern rows) and the
/// step's off-diagonal slots (rows pivoted in earlier blocks), applies the
/// updates of every off-diagonal step in `U(:, k)` in ascending
/// (topological) order, checks the frozen pivot and writes this step's `U`
/// and `L` value segments. The arithmetic is identical for every
/// scheduling, which is why the serial and parallel refactorizations agree
/// bit-for-bit.
///
/// # Safety
///
/// `ptrs` must point to value arrays of `sym.l_rows.len()` /
/// `sym.u_rows.len()` / `sym.off_rows.len()` elements. The caller must
/// guarantee that (a) no other thread concurrently accesses step `k`'s
/// `L`/`U`/off value ranges, and (b) the `L` values of every dependency
/// step in `U(:, k)` were fully written before this call, with a
/// happens-before edge (program order serially, a level barrier in
/// parallel) making those writes visible.
#[allow(clippy::too_many_arguments)]
unsafe fn refactor_step<S: LuScalar>(
    sym: &SymbolicLu,
    a: &CscMatrix,
    k: usize,
    x: &mut [S],
    stamp: &mut [usize],
    off_stamp: &mut [usize],
    off_slot: &mut [usize],
    ptrs: &FactorValuePtrs<S>,
) -> Result<(), LinalgError> {
    let (ulo, uhi) = (sym.u_ptr[k], sym.u_ptr[k + 1]);
    let (l_vals, u_vals) = (ptrs.l, ptrs.u);
    // SAFETY: forwarded caller contract.
    unsafe { scatter_step_column(sym, a, k, x, stamp, off_stamp, off_slot, ptrs)? };

    // Replay the numeric update. U entries are stored in ascending
    // pivot-step order, which is a topological order of the dependencies
    // (L column `s` only touches rows pivoted after `s`), so x[row_perm[s]]
    // is final when step `s` is applied.
    for idx in ulo..uhi - 1 {
        let s = sym.u_rows[idx];
        // Stamp-generation freshness: the dependency's pivot row was
        // stamped for *this* step by the scatter prologue — a stale stamp
        // means the stored closure is not closed under the updates and
        // the subtraction below would corrupt a neighbouring column.
        debug_assert_eq!(stamp[sym.row_perm[s]], k);
        let xval = x[sym.row_perm[s]];
        // SAFETY: `idx` lies in this step's exclusive U range (caller
        // contract a); dependency L values are final (contract b).
        unsafe { *u_vals.add(idx) = xval };
        if xval != S::ZERO {
            for j in sym.l_ptr[s]..sym.l_ptr[s + 1] {
                debug_assert_eq!(stamp[sym.l_rows[j]], k);
                // SAFETY: see above — `j` indexes a completed dependency.
                x[sym.l_rows[j]] -= xval * unsafe { *l_vals.add(j) };
            }
        }
    }

    // SAFETY: forwarded caller contract.
    unsafe { finish_step_column(sym, k, x, ptrs) }
}

/// Blocked replay of pivot step `k`, a member of a multi-column supernode:
/// same contract and same pivot sequence as [`refactor_step`], but the
/// external updates are grouped by *source supernode* and applied through
/// the dense panel kernels — one local `U`-coefficient finalize
/// ([`trsv_unit_lower`]) plus one rank-`w` body update
/// ([`panel_rank_update`]) per source supernode, instead of one indexed
/// scatter per stored entry. Within-supernode sources (earlier members of
/// `k`'s own supernode) replay scalar — they are at most `w - 1` entries
/// and keeping them scalar sidesteps partial-panel bookkeeping. The
/// column's final values are mirrored into its supernode panel slots, so
/// after the supernode's last member the panel region is complete.
///
/// The only arithmetic difference to the scalar step is the body update's
/// lane-reassociated dot products, which is why the supernodal replay
/// agrees with the scalar oracle to roundoff (≤1e-12 relative, proptested)
/// rather than bit-for-bit.
///
/// # Safety
///
/// As [`refactor_step`], plus: `ptrs.panels` must point to
/// `plan.panel_len` elements; the caller must zero the supernode's panel
/// region before its first member column, guarantee exclusive access to
/// that region (contract a extends to it), and the panel regions of every
/// dependency supernode must be fully written (contract b extends to
/// them).
#[allow(clippy::too_many_arguments)]
unsafe fn refactor_step_blocked<S: LuScalar>(
    sym: &SymbolicLu,
    plan: &SupernodePlan,
    a: &CscMatrix,
    k: usize,
    x: &mut [S],
    stamp: &mut [usize],
    off_stamp: &mut [usize],
    off_slot: &mut [usize],
    ptrs: &FactorValuePtrs<S>,
) -> Result<(), LinalgError> {
    let (ulo, uhi) = (sym.u_ptr[k], sym.u_ptr[k + 1]);
    let (l_vals, u_vals) = (ptrs.l, ptrs.u);
    let own_sn = plan.sn_of_step[k];
    // SAFETY: forwarded caller contract.
    unsafe { scatter_step_column(sym, a, k, x, stamp, off_stamp, off_slot, ptrs)? };

    // External updates grouped by source supernode. Entries of one source
    // supernode are consecutive (steps ascending) and — because the stored
    // pattern is the full symbolic closure and a supernode's L columns
    // chain through each other's pivot rows — cover a contiguous *tail*
    // `t0..w` of the supernode: U(s, k) ≠ 0 implies U(s', k) ≠ 0 for every
    // later member s' of s's supernode.
    let mut idx = ulo;
    while idx < uhi - 1 {
        let s = sym.u_rows[idx];
        let sn = plan.sn_of_step[s];
        let (s0, s1) = (plan.sn_ptr[sn], plan.sn_ptr[sn + 1]);
        let w = s1 - s0;
        if w == 1 || sn == own_sn {
            // Scalar path: singleton source, or an earlier member of this
            // column's own supernode (its L column is already final — the
            // members replay in order within one work unit).
            debug_assert_eq!(stamp[sym.row_perm[s]], k);
            let xval = x[sym.row_perm[s]];
            // SAFETY: exclusive U range (contract a); dependency L final
            // (contract b / member order).
            unsafe { *u_vals.add(idx) = xval };
            if xval != S::ZERO {
                for j in sym.l_ptr[s]..sym.l_ptr[s + 1] {
                    debug_assert_eq!(stamp[sym.l_rows[j]], k);
                    // SAFETY: see above.
                    x[sym.l_rows[j]] -= xval * unsafe { *l_vals.add(j) };
                }
            }
            idx += 1;
            continue;
        }
        let t0 = s - s0;
        let run = w - t0;
        debug_assert!(idx + run < uhi && sym.u_rows[idx + run - 1] == s1 - 1);
        let pbase = plan.panel_ptr[sn];
        let r_cnt = plan.row_ptr[sn + 1] - plan.row_ptr[sn];
        // SAFETY: the source supernode's panel region is fully written
        // (extended contract b) and read-only here.
        let ldiag =
            unsafe { std::slice::from_raw_parts(ptrs.panels.add(pbase + r_cnt * w), w * w) };
        // Local U coefficients: pre-finalization values gathered from the
        // workspace, then the within-supernode unit-lower solve applied
        // densely. Absent leading entries stay exactly zero and contribute
        // nothing.
        let mut coef = [S::ZERO; MAX_SN_WIDTH];
        for t in t0..w {
            coef[t] = x[sym.row_perm[s0 + t]];
        }
        trsv_unit_lower(ldiag, w, t0, &mut coef[..w]);
        for (j, t) in (t0..w).enumerate() {
            // SAFETY: exclusive U range (contract a).
            unsafe { *u_vals.add(idx + j) = coef[t] };
        }
        // Rank-`run` dense body update: every body row of the source
        // supernode gets one fused dot-product subtraction. Rows outside
        // this column's pattern only ever receive exact-zero products
        // (padding is stored as 0.0), leaving their stale workspace
        // entries untouched.
        let rows = plan.body_rows(sn);
        // SAFETY: as `ldiag` above.
        let body = unsafe { std::slice::from_raw_parts(ptrs.panels.add(pbase), r_cnt * w) };
        panel_rank_update(body, w, t0, rows, &coef[..w], x);
        idx += run;
    }

    // SAFETY: forwarded caller contract.
    unsafe { finish_step_column(sym, k, x, ptrs)? };

    // Mirror the column's final values into its supernode panel slots
    // (body + ldiag from L, udiag incl. pivot from U).
    for i in sym.l_ptr[k]..sym.l_ptr[k + 1] {
        let slot = plan.l_slot[i];
        debug_assert_ne!(slot, NO_SLOT);
        debug_assert!(slot < plan.panel_len);
        // SAFETY: own panel region, exclusive (extended contract a).
        unsafe { *ptrs.panels.add(slot) = *l_vals.add(i) };
    }
    for i in ulo..uhi {
        let slot = plan.u_slot[i];
        if slot != NO_SLOT {
            debug_assert!(slot < plan.panel_len);
            // SAFETY: own panel region, exclusive (extended contract a).
            unsafe { *ptrs.panels.add(slot) = *u_vals.add(i) };
        }
    }
    Ok(())
}

/// Replays one whole supernode — the work unit of the supernodal replay
/// (serial loop or one parallel claim): zeroes the panel region (so padded
/// cells are exact zeros) and runs the member columns in order, blocked
/// for multi-column supernodes, scalar for singletons.
///
/// # Safety
///
/// As [`refactor_step_blocked`], with contract (a) covering the
/// supernode's entire step range and panel region, and contract (b)
/// covering every *external* dependency supernode (the level schedule in
/// [`SupernodePlan::level_sns`] guarantees external sources finish in
/// strictly earlier levels).
#[allow(clippy::too_many_arguments)]
unsafe fn refactor_supernode<S: LuScalar>(
    sym: &SymbolicLu,
    plan: &SupernodePlan,
    a: &CscMatrix,
    sn: usize,
    x: &mut [S],
    stamp: &mut [usize],
    off_stamp: &mut [usize],
    off_slot: &mut [usize],
    ptrs: &FactorValuePtrs<S>,
) -> Result<(), LinalgError> {
    let (k0, k1) = (plan.sn_ptr[sn], plan.sn_ptr[sn + 1]);
    if k1 - k0 > 1 {
        let (plo, phi) = (plan.panel_ptr[sn], plan.panel_ptr[sn + 1]);
        // SAFETY: own panel region, exclusive (contract a). All-zero bytes
        // are 0.0 for both f32 and f64.
        unsafe { std::ptr::write_bytes(ptrs.panels.add(plo), 0, phi - plo) };
        for k in k0..k1 {
            // SAFETY: forwarded caller contract.
            unsafe { refactor_step_blocked(sym, plan, a, k, x, stamp, off_stamp, off_slot, ptrs)? };
        }
    } else {
        // SAFETY: forwarded caller contract.
        unsafe { refactor_step(sym, a, k0, x, stamp, off_stamp, off_slot, ptrs)? };
    }
    Ok(())
}

/// Routes a numeric replay to the supernodal or per-column path (per the
/// symbolic plan) and to the serial or level-parallel schedule (per
/// `threads`), generic over the stored scalar.
fn refactor_dispatch<S: WsScalar>(
    sym: &Arc<SymbolicLu>,
    va: &mut ValueArrays<S>,
    a: &CscMatrix,
    ws: &mut LuWorkspace,
    threads: usize,
) -> Result<(), LinalgError> {
    match sym.blocked_plan() {
        Some(plan) => {
            // Panels go stale the moment replay starts writing; only a
            // fully successful supernodal pass leaves them coherent with
            // the column arrays again.
            va.panels_valid = false;
            if threads <= 1 {
                refactor_sn_serial(sym, plan, va, a, ws)?;
            } else {
                refactor_sn_parallel(sym, plan, va, a, ws, threads)?;
            }
            va.panels_valid = true;
            Ok(())
        }
        None => {
            if threads <= 1 {
                refactor_serial_vals(sym, va, a, ws)
            } else {
                refactor_parallel_vals(sym, va, a, ws, threads)
            }
        }
    }
}

/// Serial per-column numeric replay in pivot-step order (the reference
/// path, used when supernode detection is disabled or finds no blocks).
fn refactor_serial_vals<S: WsScalar>(
    sym: &SymbolicLu,
    va: &mut ValueArrays<S>,
    a: &CscMatrix,
    ws: &mut LuWorkspace,
) -> Result<(), LinalgError> {
    ws.reset::<S>(sym.n);
    let ptrs = va.ptrs();
    let (x, stamp, off_stamp, off_slot) = S::ws_parts(ws);
    for k in 0..sym.n {
        // SAFETY: single-threaded — exclusive access to the value
        // arrays, and step order means every dependency is complete.
        unsafe { refactor_step(sym, a, k, x, stamp, off_stamp, off_slot, &ptrs)? };
    }
    Ok(())
}

/// Serial supernodal numeric replay: supernodes in order, each replayed
/// with the blocked kernels of [`refactor_supernode`].
fn refactor_sn_serial<S: WsScalar>(
    sym: &SymbolicLu,
    plan: &SupernodePlan,
    va: &mut ValueArrays<S>,
    a: &CscMatrix,
    ws: &mut LuWorkspace,
) -> Result<(), LinalgError> {
    ws.reset::<S>(sym.n);
    let ptrs = va.ptrs();
    let (x, stamp, off_stamp, off_slot) = S::ws_parts(ws);
    for sn in 0..plan.count() {
        // SAFETY: single-threaded — exclusive access to the value arrays
        // and panels, and supernode order is a valid elimination order.
        unsafe { refactor_supernode(sym, plan, a, sn, x, stamp, off_stamp, off_slot, &ptrs)? };
    }
    Ok(())
}

/// Level-scheduled parallel per-column replay: the wide leaf-ward levels
/// of the elimination schedule are distributed over `threads` workers
/// (columns claimed through per-level atomic cursors, a barrier
/// between levels), and the narrow root-ward tail — where coordination
/// would cost more than the work — replays serially on the caller.
fn refactor_parallel_vals<S: WsScalar>(
    sym: &SymbolicLu,
    va: &mut ValueArrays<S>,
    a: &CscMatrix,
    ws: &mut LuWorkspace,
    threads: usize,
) -> Result<(), LinalgError> {
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::{Barrier, Mutex};

    let n = sym.n;
    ws.reset::<S>(n);
    // Parallel prefix: levels wide enough to amortize the per-level
    // barrier. Widths are (near-)monotone decreasing for elimination
    // schedules — leaves are plentiful, roots are not — so stopping at
    // the first narrow level captures essentially all parallel work
    // while bounding the number of barriers.
    let min_width = (2 * threads).max(8);
    let ex = sym.extras();
    let par_levels = (0..sym.level_count())
        .take_while(|&l| sym.level_steps(l).len() >= min_width)
        .count();
    let ptrs = va.ptrs();
    if par_levels > 0 {
        while ws.workers.len() < threads {
            ws.workers.push(Mutex::new(WorkerScratch::default()));
        }
        let cursors: Vec<AtomicUsize> = (0..par_levels).map(|_| AtomicUsize::new(0)).collect();
        let barrier = Barrier::new(threads);
        let failed = AtomicBool::new(false);
        let first_err: Mutex<Option<LinalgError>> = Mutex::new(None);
        let (ptrs_ref, workers) = (&ptrs, &ws.workers);
        rayon::broadcast(threads, |tid| {
            // Uncontended by construction: slot `tid` belongs to this
            // worker alone.
            let mut scratch = workers[tid]
                .lock()
                .expect("invariant: worker-scratch lock is never poisoned");
            let (x, stamp, off_stamp, off_slot) = S::worker_parts(&mut scratch);
            x.clear();
            x.resize(n, S::ZERO);
            stamp.clear();
            stamp.resize(n, usize::MAX);
            off_stamp.clear();
            off_stamp.resize(n, usize::MAX);
            off_slot.clear();
            off_slot.resize(n, 0);
            for (lev, cursor) in cursors.iter().enumerate() {
                if !failed.load(Ordering::Acquire) {
                    let (lo, hi) = (ex.level_ptr[lev], ex.level_ptr[lev + 1]);
                    loop {
                        let i = lo + cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= hi {
                            break;
                        }
                        let k = ex.level_cols[i];
                        // SAFETY: the cursor hands each step to exactly
                        // one worker (disjoint value ranges), and every
                        // dependency lives in a lower level, finished
                        // before the previous barrier.
                        let res = unsafe {
                            refactor_step(sym, a, k, x, stamp, off_stamp, off_slot, ptrs_ref)
                        };
                        if let Err(e) = res {
                            first_err
                                .lock()
                                .expect("invariant: refactor error-slot lock is never poisoned")
                                .get_or_insert(e);
                            failed.store(true, Ordering::Release);
                            break;
                        }
                    }
                }
                // Level barrier: the next level reads these L columns.
                // Reached unconditionally so every worker counts the
                // same number of waits even after a failure.
                barrier.wait();
            }
        });
        if let Some(e) = first_err
            .into_inner()
            .expect("invariant: refactor error-slot lock is never poisoned")
        {
            return Err(e);
        }
    }
    // Serial tail in level order — a valid elimination order, since a
    // level only reads strictly lower levels.
    let (x, stamp, off_stamp, off_slot) = S::ws_parts(ws);
    for &k in &ex.level_cols[ex.level_ptr[par_levels]..] {
        // SAFETY: the broadcast above has joined (its writes are
        // visible) and this thread is now the only one touching the
        // factor.
        unsafe { refactor_step(sym, a, k, x, stamp, off_stamp, off_slot, &ptrs)? };
    }
    Ok(())
}

/// Level-scheduled parallel supernodal replay: identical coordination
/// shape to [`refactor_parallel_vals`], but the unit of work claimed from
/// each level cursor is a whole supernode (replayed blocked), fanning the
/// PR 3 level schedule out over panels instead of single columns.
fn refactor_sn_parallel<S: WsScalar>(
    sym: &SymbolicLu,
    plan: &SupernodePlan,
    va: &mut ValueArrays<S>,
    a: &CscMatrix,
    ws: &mut LuWorkspace,
    threads: usize,
) -> Result<(), LinalgError> {
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::{Barrier, Mutex};

    let n = sym.n;
    ws.reset::<S>(n);
    let min_width = (2 * threads).max(8);
    let par_levels = (0..plan.level_count())
        .take_while(|&l| {
            let (lo, hi) = (plan.level_ptr[l], plan.level_ptr[l + 1]);
            hi - lo >= min_width
        })
        .count();
    let ptrs = va.ptrs();
    if par_levels > 0 {
        while ws.workers.len() < threads {
            ws.workers.push(Mutex::new(WorkerScratch::default()));
        }
        let cursors: Vec<AtomicUsize> = (0..par_levels).map(|_| AtomicUsize::new(0)).collect();
        let barrier = Barrier::new(threads);
        let failed = AtomicBool::new(false);
        let first_err: Mutex<Option<LinalgError>> = Mutex::new(None);
        let (ptrs_ref, workers) = (&ptrs, &ws.workers);
        rayon::broadcast(threads, |tid| {
            let mut scratch = workers[tid]
                .lock()
                .expect("invariant: worker-scratch lock is never poisoned");
            let (x, stamp, off_stamp, off_slot) = S::worker_parts(&mut scratch);
            x.clear();
            x.resize(n, S::ZERO);
            stamp.clear();
            stamp.resize(n, usize::MAX);
            off_stamp.clear();
            off_stamp.resize(n, usize::MAX);
            off_slot.clear();
            off_slot.resize(n, 0);
            for (lev, cursor) in cursors.iter().enumerate() {
                if !failed.load(Ordering::Acquire) {
                    let (lo, hi) = (plan.level_ptr[lev], plan.level_ptr[lev + 1]);
                    loop {
                        let i = lo + cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= hi {
                            break;
                        }
                        let sn = plan.level_sns[i];
                        // SAFETY: the cursor hands each supernode (its
                        // value and panel ranges are disjoint from every
                        // other supernode's) to exactly one worker, and
                        // every external dependency supernode lives in a
                        // lower level, finished before the previous
                        // barrier.
                        let res = unsafe {
                            refactor_supernode(
                                sym, plan, a, sn, x, stamp, off_stamp, off_slot, ptrs_ref,
                            )
                        };
                        if let Err(e) = res {
                            first_err
                                .lock()
                                .expect("invariant: refactor error-slot lock is never poisoned")
                                .get_or_insert(e);
                            failed.store(true, Ordering::Release);
                            break;
                        }
                    }
                }
                barrier.wait();
            }
        });
        if let Some(e) = first_err
            .into_inner()
            .expect("invariant: refactor error-slot lock is never poisoned")
        {
            return Err(e);
        }
    }
    // Serial tail in level order — a valid elimination order, since a
    // level only reads strictly lower levels.
    let (x, stamp, off_stamp, off_slot) = S::ws_parts(ws);
    for &sn in &plan.level_sns[plan.level_ptr[par_levels]..] {
        // SAFETY: the broadcast above has joined (its writes are
        // visible) and this thread is now the only one touching the
        // factor.
        unsafe { refactor_supernode(sym, plan, a, sn, x, stamp, off_stamp, off_slot, &ptrs)? };
    }
    Ok(())
}

/// Column-ordering strategy for [`SparseLu`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ColumnOrdering {
    /// Factor in natural column order.
    Natural,
    /// Greedy minimum degree on the symmetrized pattern. Superseded by
    /// [`ColumnOrdering::Amd`] as the production ordering; kept as the
    /// exact-degree oracle and for fill comparisons.
    MinDegree,
    /// Reverse Cuthill–McKee.
    Rcm,
    /// Approximate minimum degree on a quotient graph (supervariables,
    /// element absorption, approximate external degrees) — see
    /// [`amd_ordering`](crate::amd_ordering).
    Amd,
    /// Block-triangular form (maximum transversal + Tarjan SCC) with an
    /// independent AMD ordering per diagonal block. The factorization
    /// never fills below a diagonal block, each block factors as its own
    /// matrix, and the elimination-level schedule parallelizes across
    /// uncoupled blocks for free. See
    /// [`amd_btf_ordering`](crate::amd_btf_ordering). The default through
    /// PR 5, kept as the pure-AMD baseline for fill comparisons against
    /// [`ColumnOrdering::AmdBtfNd`].
    AmdBtf,
    /// Nested dissection on the whole symmetrized pattern: recursive
    /// bisection with vertex separators numbered last, AMD on leaf
    /// subdomains. See
    /// [`nested_dissection_ordering`](crate::nested_dissection_ordering).
    NestedDissection,
    /// The default: block-triangular form with a hybrid per-block
    /// ordering — nested dissection on diagonal blocks of at least
    /// [`ND_BLOCK_CUTOFF`](crate::ND_BLOCK_CUTOFF) unknowns, AMD on the
    /// rest. Separators keep the sparse triangular-solve reaches local
    /// inside irreducible cores that BTF cannot split. See
    /// [`amd_btf_nd_ordering`](crate::amd_btf_nd_ordering).
    #[default]
    AmdBtfNd,
}

/// Options controlling [`SparseLu::factor_with`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparseLuOptions {
    /// Column ordering strategy.
    pub ordering: ColumnOrdering,
    /// Threshold in `(0, 1]` for diagonal-preferring partial pivoting: the
    /// diagonal entry is accepted as pivot when its magnitude is at least
    /// `pivot_threshold` times the column maximum. `1.0` forces strict
    /// partial pivoting.
    pub pivot_threshold: f64,
    /// Entries with magnitude at or below this are treated as numerically
    /// zero when selecting pivots.
    pub zero_tolerance: f64,
    /// Numeric precision of the stored factor values (see [`Precision`]).
    pub precision: Precision,
    /// Detect supernodes after the symbolic analysis and run the blocked
    /// numeric kernels (dense panel updates, supernode-aware triangular
    /// solves) wherever multi-column supernodes exist. Disabling this keeps
    /// the scalar per-column replay everywhere — the correctness oracle the
    /// blocked path is proptested against.
    pub supernodal: bool,
    /// Relaxed-amalgamation knob: the maximum number of explicit-zero cells
    /// a merged column may store in its supernode panel column. `0` admits
    /// only exactly-nested column chains; a few cells of padding lets
    /// nearly-equal columns merge, trading a handful of multiplies by zero
    /// for wider panels (fewer, larger dense updates).
    pub amalgamation: usize,
}

impl Default for SparseLuOptions {
    fn default() -> Self {
        SparseLuOptions {
            ordering: ColumnOrdering::default(),
            pivot_threshold: 0.1,
            zero_tolerance: 0.0,
            precision: Precision::default(),
            supernodal: true,
            amalgamation: 4,
        }
    }
}

/// Reusable scratch for the numeric factorization replay
/// ([`SparseLu::refactor_with`]): an `n`-sized workspace vector and a stamp
/// array. Hot loops (a template fanning out numeric refactorizations per
/// batch member, a session refactoring every few hundred time steps) keep
/// one per thread so the replay allocates nothing.
#[derive(Debug, Default)]
pub struct LuWorkspace {
    x: Vec<f64>,
    /// `f32` twin of `x` for [`Precision::F32Refined`] replays (empty
    /// until one runs).
    x32: Vec<f32>,
    stamp: Vec<usize>,
    /// Stamp/slot pair routing scattered matrix entries into the step's
    /// off-diagonal (cross-block) value slots; see `refactor_step`.
    off_stamp: Vec<usize>,
    off_slot: Vec<usize>,
    /// Pooled buffers of [`SparseLu::solve_refined_with`] (solve scratch,
    /// residual, correction), so refined hot-loop solves allocate nothing.
    rwork: Vec<f64>,
    resid: Vec<f64>,
    corr: Vec<f64>,
    /// Per-worker scratch of the parallel replay, lazily grown to the
    /// worker count on first parallel refactor and reused afterwards, so
    /// repeated parallel replays allocate nothing either. Behind mutexes
    /// only so the broadcast closure can hand each worker its slot; every
    /// lock is uncontended (slot `tid` is touched by worker `tid` alone).
    workers: Vec<std::sync::Mutex<WorkerScratch>>,
}

/// One parallel-replay worker's private scratch; see
/// [`LuWorkspace::workers`].
#[derive(Debug, Default)]
struct WorkerScratch {
    x: Vec<f64>,
    x32: Vec<f32>,
    stamp: Vec<usize>,
    off_stamp: Vec<usize>,
    off_slot: Vec<usize>,
}

/// Workspace scratch borrowed for one replay: the scalar-typed value
/// vector plus the three stamp/slot arrays.
type ScratchParts<'a, S> = (
    &'a mut Vec<S>,
    &'a mut Vec<usize>,
    &'a mut Vec<usize>,
    &'a mut Vec<usize>,
);

/// Scalar-selected access to the right workspace vector (`x` vs `x32`), so
/// the replay paths stay generic over [`Precision`] without duplicating
/// the workspace plumbing. Returned as one split-borrow tuple
/// (`x`, `stamp`, `off_stamp`, `off_slot`) so callers can hold the value
/// vector and the stamps simultaneously.
trait WsScalar: LuScalar {
    fn ws_parts(ws: &mut LuWorkspace) -> ScratchParts<'_, Self>;
    fn worker_parts(w: &mut WorkerScratch) -> ScratchParts<'_, Self>;
}

impl WsScalar for f64 {
    fn ws_parts(ws: &mut LuWorkspace) -> ScratchParts<'_, Self> {
        (
            &mut ws.x,
            &mut ws.stamp,
            &mut ws.off_stamp,
            &mut ws.off_slot,
        )
    }
    fn worker_parts(w: &mut WorkerScratch) -> ScratchParts<'_, Self> {
        (&mut w.x, &mut w.stamp, &mut w.off_stamp, &mut w.off_slot)
    }
}

impl WsScalar for f32 {
    fn ws_parts(ws: &mut LuWorkspace) -> ScratchParts<'_, Self> {
        (
            &mut ws.x32,
            &mut ws.stamp,
            &mut ws.off_stamp,
            &mut ws.off_slot,
        )
    }
    fn worker_parts(w: &mut WorkerScratch) -> ScratchParts<'_, Self> {
        (&mut w.x32, &mut w.stamp, &mut w.off_stamp, &mut w.off_slot)
    }
}

impl Clone for LuWorkspace {
    fn clone(&self) -> Self {
        // Worker scratch is transient per-refactor state; a clone starts
        // with an empty pool.
        LuWorkspace {
            x: self.x.clone(),
            x32: self.x32.clone(),
            stamp: self.stamp.clone(),
            off_stamp: self.off_stamp.clone(),
            off_slot: self.off_slot.clone(),
            rwork: Vec::new(),
            resid: Vec::new(),
            corr: Vec::new(),
            workers: Vec::new(),
        }
    }
}

impl LuWorkspace {
    /// An empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    fn reset<S: WsScalar>(&mut self, n: usize) {
        let (x, stamp, off_stamp, off_slot) = S::ws_parts(self);
        x.clear();
        x.resize(n, S::ZERO);
        stamp.clear();
        stamp.resize(n, usize::MAX);
        off_stamp.clear();
        off_stamp.resize(n, usize::MAX);
        off_slot.clear();
        off_slot.resize(n, 0);
    }
}

/// Densify bail-out threshold for the multi-block sparse solve: once a
/// block's L reach or U-closure pattern holds at least
/// `span / DENSIFY_DIVISOR` steps, the reach bookkeeping (worklist
/// growth, two sorts, the closure DFS) is already costing more than
/// scanning the block's remaining zero entries would, so the block is
/// finished with dense span scans instead. The reach machinery is random
/// access per element while the dense scans stream sequentially with
/// `!= 0.0` guards, so the crossover sits at a *small* pattern fraction:
/// on the rmat substrate's dominant SCC — where the solution of a single
/// diode-pair RHS is structurally dense (~99% of the steps, via the U
/// backward closure) — bailing past a 64th of the span takes the rank-1
/// solve from 0.4× of the dense solve to parity, while a reach under
/// that fraction (the case block-triangular solves exist for) still
/// skips the span entirely.
const DENSIFY_DIVISOR: usize = 64;

/// Reusable scratch for [`SparseLu::solve_sparse_into`]: the step-indexed
/// value vector, the epoch-stamped visited marks of the two reach DFSs and
/// the reach/pattern lists. Hot loops (a session pushing a Woodbury term
/// per diode flip) keep one so reach solves allocate nothing.
#[derive(Debug, Clone, Default)]
pub struct SparseSolveWorkspace {
    /// Solution values indexed by pivot step; only reach entries are live.
    xs: Vec<f64>,
    /// Visit marks: `mark[s] >= epoch` means step `s` is in this solve's
    /// pattern (`epoch` = L phase, `epoch + 1` = also U-explored).
    mark: Vec<u32>,
    epoch: u32,
    stack: Vec<usize>,
    lreach: Vec<usize>,
    /// The full pattern (L-reach plus backward extension), sorted
    /// descending by the backward pass. Per-block under a multi-block
    /// factorization.
    ureach: Vec<usize>,
    pattern: Vec<usize>,
    /// Pending seed steps of blocks not yet processed (multi-block solves:
    /// right-hand-side entries plus fired cross-block contributions).
    seeds: Vec<usize>,
    /// Saved `(step, value)` pairs across the densify bail-out's wholesale
    /// span clear (the live entries are few; streaming `fill(0.0)` plus a
    /// re-scatter beats a mark-guarded pad scan).
    scratch: Vec<(usize, f64)>,
}

impl SparseSolveWorkspace {
    /// An empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Indices of `out` written by the last
    /// [`SparseLu::solve_sparse_into`] (unsorted); entries off this
    /// pattern are exactly zero.
    pub fn pattern(&self) -> &[usize] {
        &self.pattern
    }

    fn reset(&mut self, n: usize) {
        if self.xs.len() != n {
            self.xs.clear();
            self.xs.resize(n, 0.0);
            self.mark.clear();
            self.mark.resize(n, 0);
            self.epoch = 0;
        }
        // Each solve consumes two mark values (L and U phase).
        if self.epoch >= u32::MAX - 2 {
            self.mark.fill(0);
            self.epoch = 0;
        }
        self.epoch += 2;
        self.stack.clear();
        self.lreach.clear();
        self.ureach.clear();
        self.pattern.clear();
        self.seeds.clear();
        self.scratch.clear();
    }
}

/// The immutable, shareable half of a sparse LU factorization: column
/// ordering `q`, pivot sequence, and the full symbolic `L`/`U` nonzero
/// structure (the elimination plan).
///
/// A `SymbolicLu` is produced by a full pivoting factorization
/// ([`SparseLu::factor`]) and then reused — across value-only
/// refactorizations ([`SparseLu::refactor`]) and across *threads*: it is
/// always held behind an [`Arc`], so concurrent workers on same-topology
/// systems share one symbolic analysis and carry only per-thread numeric
/// values ([`SymbolicLu::numeric`]).
#[derive(Debug)]
pub struct SymbolicLu {
    pub(crate) n: usize,
    /// Column ordering: column `q[k]` of `A` is eliminated at step `k`.
    pub(crate) q: Vec<usize>,
    /// `row_perm[k]` = original row chosen as pivot at step `k`.
    pub(crate) row_perm: Vec<usize>,
    /// Inverse pivot permutation: `pinv[row_perm[k]] == k` for every step.
    pub(crate) pinv: Vec<usize>,
    /// L stored by columns (unit diagonal implicit); row indices are
    /// *original* row ids.
    pub(crate) l_ptr: Vec<usize>,
    pub(crate) l_rows: Vec<usize>,
    /// U stored by columns; row indices are pivot *steps* (`0..k`), sorted
    /// ascending within each column segment with the diagonal (pivot)
    /// stored last.
    pub(crate) u_ptr: Vec<usize>,
    pub(crate) u_rows: Vec<usize>,
    /// Diagonal-block boundaries in pivot-step space: block `t` owns steps
    /// `block_ptr[t]..block_ptr[t + 1]`. Under the BTF orderings
    /// ([`ColumnOrdering::AmdBtf`] / [`ColumnOrdering::AmdBtfNd`]) these
    /// are the strongly connected components of the matched pattern (block
    /// upper triangular: entries below a diagonal block are structurally
    /// zero); every other ordering records the trivial single block. Each
    /// block factors **independently** — neither `L` nor `U` crosses a
    /// boundary; the cross-block entries of the permuted matrix live in
    /// `off_ptr`/`off_rows` instead.
    pub(crate) block_ptr: Vec<usize>,
    /// Cross-block (off-diagonal-block) entries of the permuted matrix,
    /// KLU-style: raw `A` positions applied during substitution rather
    /// than factored into `U` as their `L⁻¹`-closure. Per pivot step `k`,
    /// `off_rows[off_ptr[k]..off_ptr[k + 1]]` are the *original* row
    /// indices (always pivoted in an earlier block) of column `q[k]`'s
    /// entries above its own diagonal block. Empty for single-block
    /// factorizations.
    pub(crate) off_ptr: Vec<usize>,
    pub(crate) off_rows: Vec<usize>,
    /// Scheduling/reach structures derived from the pattern, built lazily
    /// on first use (parallel refactorization or sparse-RHS solves) so a
    /// plain factor + serial-refactor + dense-solve workflow pays nothing
    /// for them.
    pub(crate) extras: std::sync::OnceLock<SymbolicExtras>,
    /// Pivot zero-tolerance carried from the factorization options so every
    /// numeric replay applies the same singularity test.
    pub(crate) zero_tol: f64,
    /// Numeric precision every factor over this plan stores its values in
    /// (carried from the factorization options; part of the plan because
    /// sibling factors built via [`SymbolicLu::numeric`] must match).
    pub(crate) precision: Precision,
    /// Whether supernode detection is enabled (carried from the options).
    pub(crate) supernodal: bool,
    /// Relaxed-amalgamation knob (carried from the options).
    pub(crate) relax: usize,
    /// Supernode partition + panel layout, built lazily on first numeric
    /// construction (the panels' value storage is sized from it).
    pub(crate) sn_plan: std::sync::OnceLock<Option<SupernodePlan>>,
}

/// Derived symbolic structures for the parallel and sparse-RHS paths; see
/// [`SymbolicLu::extras`].
#[derive(Debug)]
pub(crate) struct SymbolicExtras {
    /// Inverse column ordering: `qinv[q[k]] == k` for every step.
    pub(crate) qinv: Vec<usize>,
    /// `l_rows` mapped through `pinv` (pivot-step space): the sparse-RHS
    /// solves walk the L graph step-to-step, and pre-applying the
    /// permutation removes one indirection per traversed entry.
    pub(crate) l_steps: Vec<usize>,
    /// Transposed off-diagonal `U` structure ("rows of `U`"): step `s`'s
    /// dependents — the later steps whose column replay reads `s` — are
    /// `ut_steps[ut_ptr[s]..ut_ptr[s + 1]]`, with `ut_vals_idx` giving the
    /// matching index into `u_vals`. The transposed backward sparse solve
    /// ([`SparseLu::transposed_backward_sparse_into`]) walks this in
    /// scatter form, touching exactly the within-reach edges — a gather
    /// over the (huge, mostly off-reach) late U columns would not.
    pub(crate) ut_ptr: Vec<usize>,
    pub(crate) ut_steps: Vec<usize>,
    pub(crate) ut_vals_idx: Vec<usize>,
    /// Elimination-tree parent per pivot step (`NO_PIVOT` for roots):
    /// `etree[s]` is the *first* later step whose column update reads step
    /// `s`'s `L` column, i.e. `min { k > s : U(s, k) ≠ 0 structurally }`.
    pub(crate) etree: Vec<usize>,
    /// Dependency level of each step: `0` for columns with no off-diagonal
    /// `U` entries (elimination-tree leaves), otherwise one more than the
    /// deepest step the column's replay reads. Steps of equal level are
    /// mutually independent, which is what the parallel refactorization
    /// schedules on.
    pub(crate) level_ptr: Vec<usize>,
    /// Steps grouped by level (ascending step order within each level):
    /// level `l` is `level_cols[level_ptr[l]..level_ptr[l + 1]]`.
    pub(crate) level_cols: Vec<usize>,
}

impl SymbolicLu {
    /// System dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Total stored entries of the factorization: the `L` and `U` patterns
    /// plus the raw cross-block entries applied at solve time (a fill-in
    /// metric — off entries are storage too, so block and single-block
    /// orderings compare honestly).
    pub fn pattern_nnz(&self) -> usize {
        self.l_rows.len() + self.u_rows.len() + self.off_rows.len()
    }

    /// Number of cross-block entries stored raw (zero for single-block
    /// factorizations; these are original matrix entries, not fill).
    pub fn off_nnz(&self) -> usize {
        self.off_rows.len()
    }

    /// The original row indices of pivot step `step`'s cross-block entries
    /// (each pivoted in an earlier diagonal block; applied at solve time).
    /// Exposed for structural checks alongside
    /// [`SymbolicLu::l_column_rows`] / [`SymbolicLu::u_column_steps`].
    pub fn off_column_rows(&self, step: usize) -> &[usize] {
        &self.off_rows[self.off_ptr[step]..self.off_ptr[step + 1]]
    }

    /// The column ordering: column `col_order()[k]` of `A` is eliminated at
    /// pivot step `k`.
    pub fn col_order(&self) -> &[usize] {
        &self.q
    }

    /// The pivot row sequence: `pivot_rows()[k]` is the original row chosen
    /// as the pivot of step `k`.
    pub fn pivot_rows(&self) -> &[usize] {
        &self.row_perm
    }

    /// Diagonal-block boundaries in pivot-step space (see
    /// [`SymbolicLu::block_count`]). Always starts at 0 and ends at
    /// [`SymbolicLu::dim`].
    pub fn block_ptr(&self) -> &[usize] {
        &self.block_ptr
    }

    /// Number of diagonal blocks of the block-triangular permutation this
    /// factorization was built under (1 for non-BTF orderings or an
    /// irreducible matrix).
    pub fn block_count(&self) -> usize {
        self.block_ptr.len().saturating_sub(1)
    }

    /// The pivot steps of diagonal block `t`.
    pub fn block_range(&self, t: usize) -> std::ops::Range<usize> {
        self.block_ptr[t]..self.block_ptr[t + 1]
    }

    /// Size of the largest diagonal block — the irreducible core the
    /// factorization cannot decompose further (0 for an empty system).
    pub fn largest_block(&self) -> usize {
        self.block_ptr
            .windows(2)
            .map(|w| w[1] - w[0])
            .max()
            .unwrap_or(0)
    }

    /// The original row indices of the `L` column of pivot step `step`
    /// (strictly-below-diagonal pattern; the unit diagonal is implicit).
    /// Exposed for structural checks — e.g. that no `L` entry crosses
    /// below a diagonal block.
    pub fn l_column_rows(&self, step: usize) -> &[usize] {
        &self.l_rows[self.l_ptr[step]..self.l_ptr[step + 1]]
    }

    /// The pivot-step indices of the off-diagonal `U` column of `step`
    /// (ascending; the diagonal itself is excluded). Exposed for
    /// structural checks alongside [`SymbolicLu::l_column_rows`].
    pub fn u_column_steps(&self, step: usize) -> &[usize] {
        &self.u_rows[self.u_ptr[step]..self.u_ptr[step + 1] - 1]
    }

    /// Inverse pivot permutation: the elimination step at which original
    /// row `row` was chosen as pivot.
    pub fn pivot_step_of_row(&self, row: usize) -> usize {
        self.pinv[row]
    }

    /// Elimination-tree parent of pivot step `step`, or `None` for a root:
    /// the first later step whose numeric replay reads this step's `L`
    /// column.
    pub fn etree_parent(&self, step: usize) -> Option<usize> {
        match self.extras().etree[step] {
            NO_PIVOT => None,
            p => Some(p),
        }
    }

    /// Number of dependency levels in the elimination schedule (the
    /// critical-path length of a refactorization; `n` independent columns
    /// give 1, a dense chain gives `n`).
    pub fn level_count(&self) -> usize {
        self.extras().level_ptr.len() - 1
    }

    /// The pivot steps of dependency level `level`, ascending. Steps within
    /// one level never read each other's factor columns, so a numeric
    /// replay may run them in any order — or concurrently.
    pub fn level_steps(&self, level: usize) -> &[usize] {
        let ex = self.extras();
        &ex.level_cols[ex.level_ptr[level]..ex.level_ptr[level + 1]]
    }

    /// Numeric precision of every factor built over this plan.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Supernode statistics of this plan, or `None` when supernode
    /// detection is disabled ([`SparseLuOptions::supernodal`] = false).
    /// Built lazily with the plan itself.
    pub fn supernode_stats(&self) -> Option<SupernodeStats> {
        self.supernode_plan_raw().map(|p| p.stats)
    }

    /// The supernode plan when detection is enabled, regardless of whether
    /// any multi-column supernodes exist.
    pub(crate) fn supernode_plan_raw(&self) -> Option<&SupernodePlan> {
        if !self.supernodal {
            return None;
        }
        self.sn_plan
            .get_or_init(|| {
                Some(SupernodePlan::build(
                    &SymbolicView {
                        n: self.n,
                        l_ptr: &self.l_ptr,
                        l_rows: &self.l_rows,
                        u_ptr: &self.u_ptr,
                        u_rows: &self.u_rows,
                        row_perm: &self.row_perm,
                        pinv: &self.pinv,
                        block_ptr: &self.block_ptr,
                    },
                    self.relax,
                ))
            })
            .as_ref()
    }

    /// The supernode plan the blocked kernels run on: present only when
    /// detection is enabled *and* the pattern actually amalgamates (a plan
    /// of pure singletons would route every column through the scalar path
    /// anyway, so callers skip the supernodal machinery entirely).
    pub(crate) fn blocked_plan(&self) -> Option<&SupernodePlan> {
        self.supernode_plan_raw().filter(|p| p.stats.multi > 0)
    }

    /// The lazily-built scheduling/reach structures. Thread-safe: the
    /// symbolic plan is shared behind an `Arc` and the first caller (from
    /// any thread) builds, everyone else reuses.
    pub(crate) fn extras(&self) -> &SymbolicExtras {
        self.extras.get_or_init(|| {
            let n = self.n;
            let (etree, level_ptr, level_cols) = Self::build_schedule(n, &self.u_ptr, &self.u_rows);
            let (ut_ptr, ut_steps, ut_vals_idx) =
                Self::build_u_transpose(n, &self.u_ptr, &self.u_rows);
            let mut qinv = vec![0usize; n];
            for (k, &c) in self.q.iter().enumerate() {
                qinv[c] = k;
            }
            let l_steps = self.l_rows.iter().map(|&r| self.pinv[r]).collect();
            SymbolicExtras {
                qinv,
                l_steps,
                ut_ptr,
                ut_steps,
                ut_vals_idx,
                etree,
                level_ptr,
                level_cols,
            }
        })
    }

    /// Builds the elimination tree and the level schedule from the stored
    /// `U` pattern. Column `k`'s replay reads the `L` column of every
    /// off-diagonal step in `U(:, k)`, so that set is exactly the
    /// dependency list; the level of `k` is one past the deepest
    /// dependency, and the tree parent of `s` is its first dependent.
    fn build_schedule(
        n: usize,
        u_ptr: &[usize],
        u_rows: &[usize],
    ) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
        let mut etree = vec![NO_PIVOT; n];
        let mut level = vec![0usize; n];
        let mut max_level = 0usize;
        for k in 0..n {
            let mut lv = 0usize;
            for &s in &u_rows[u_ptr[k]..u_ptr[k + 1] - 1] {
                if etree[s] == NO_PIVOT {
                    etree[s] = k;
                }
                lv = lv.max(level[s] + 1);
            }
            level[k] = lv;
            max_level = max_level.max(lv);
        }
        let n_levels = if n == 0 { 0 } else { max_level + 1 };
        let mut level_ptr = vec![0usize; n_levels + 1];
        for &lv in &level {
            level_ptr[lv + 1] += 1;
        }
        for l in 0..n_levels {
            level_ptr[l + 1] += level_ptr[l];
        }
        let mut cursor = level_ptr.clone();
        let mut level_cols = vec![0usize; n];
        for (k, &lv) in level.iter().enumerate() {
            level_cols[cursor[lv]] = k;
            cursor[lv] += 1;
        }
        (etree, level_ptr, level_cols)
    }

    /// Builds the transposed off-diagonal `U` structure: for each step,
    /// the ascending list of its dependents plus the matching `u_vals`
    /// indices.
    fn build_u_transpose(
        n: usize,
        u_ptr: &[usize],
        u_rows: &[usize],
    ) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
        let mut ut_ptr = vec![0usize; n + 1];
        for k in 0..n {
            for &s in &u_rows[u_ptr[k]..u_ptr[k + 1] - 1] {
                ut_ptr[s + 1] += 1;
            }
        }
        for s in 0..n {
            ut_ptr[s + 1] += ut_ptr[s];
        }
        let nnz = ut_ptr[n];
        let mut ut_steps = vec![0usize; nnz];
        let mut ut_vals_idx = vec![0usize; nnz];
        let mut cursor = ut_ptr.clone();
        for k in 0..n {
            let (lo, hi) = (u_ptr[k], u_ptr[k + 1] - 1);
            for (idx, &s) in u_rows[lo..hi].iter().enumerate().map(|(o, s)| (lo + o, s)) {
                ut_steps[cursor[s]] = k;
                ut_vals_idx[cursor[s]] = idx;
                cursor[s] += 1;
            }
        }
        (ut_ptr, ut_steps, ut_vals_idx)
    }

    /// Builds a fresh numeric factor of `a` over this shared symbolic plan
    /// — the template fan-out primitive: one symbolic analysis, many
    /// per-thread numeric factorizations. Equivalent to cloning an existing
    /// factor and [`SparseLu::refactor`]ing it, without copying stale
    /// values.
    ///
    /// # Errors
    ///
    /// Same as [`SparseLu::refactor`]: shape mismatches,
    /// [`LinalgError::PatternChanged`] if `a` has an entry outside this
    /// pattern, [`LinalgError::Singular`] if a frozen pivot is unusable for
    /// the new values.
    pub fn numeric(sym: &Arc<SymbolicLu>, a: &CscMatrix) -> Result<SparseLu, LinalgError> {
        let panel_len = sym.blocked_plan().map_or(0, |p| p.panel_len);
        let vals = match sym.precision {
            Precision::F64 => FactorValues::F64(ValueArrays::zeroed(sym, panel_len)),
            Precision::F32Refined => FactorValues::F32(ValueArrays::zeroed(sym, panel_len)),
        };
        let mut lu = SparseLu {
            sym: Arc::clone(sym),
            vals,
        };
        lu.refactor(a)?;
        Ok(lu)
    }
}

/// Numeric value storage of a factor, generic over the stored scalar: the
/// `L` / `U` / cross-block arrays mirroring the symbolic pattern, plus the
/// dense supernode panel storage of the blocked kernels.
#[derive(Debug, Clone)]
struct ValueArrays<S> {
    l: Vec<S>,
    u: Vec<S>,
    off: Vec<S>,
    /// Dense supernode panels, `[body | ldiag | udiag]` per multi-column
    /// supernode (see [`SupernodePlan`]); empty when no plan is active.
    panels: Vec<S>,
    /// Whether `panels` currently mirrors `l`/`u` — set by the panel-aware
    /// paths (factor fill, supernodal replay), cleared if a scalar-only
    /// replay ever overwrites the factor, so the supernode-aware solves
    /// never read stale panels.
    panels_valid: bool,
}

impl<S: LuScalar> ValueArrays<S> {
    fn zeroed(sym: &SymbolicLu, panel_len: usize) -> Self {
        ValueArrays {
            l: vec![S::ZERO; sym.l_rows.len()],
            u: vec![S::ZERO; sym.u_rows.len()],
            off: vec![S::ZERO; sym.off_rows.len()],
            panels: vec![S::ZERO; panel_len],
            panels_valid: false,
        }
    }

    fn ptrs(&mut self) -> FactorValuePtrs<S> {
        FactorValuePtrs {
            l: self.l.as_mut_ptr(),
            u: self.u.as_mut_ptr(),
            off: self.off.as_mut_ptr(),
            panels: self.panels.as_mut_ptr(),
        }
    }

    /// Gathers the current `l`/`u` values into the supernode panels
    /// through the plan's precomputed slot maps (padding cells are zeroed
    /// by the initial fill). Used after a full pivoting factorization; the
    /// supernodal replay maintains panels incrementally instead.
    fn fill_panels(&mut self, plan: &SupernodePlan) {
        self.panels.clear();
        self.panels.resize(plan.panel_len, S::ZERO);
        for (idx, &slot) in plan.l_slot.iter().enumerate() {
            if slot != NO_SLOT {
                self.panels[slot] = self.l[idx];
            }
        }
        for (idx, &slot) in plan.u_slot.iter().enumerate() {
            if slot != NO_SLOT {
                self.panels[slot] = self.u[idx];
            }
        }
        self.panels_valid = true;
    }
}

/// The precision-dispatched numeric storage of a [`SparseLu`].
#[derive(Debug, Clone)]
enum FactorValues {
    F64(ValueArrays<f64>),
    F32(ValueArrays<f32>),
}

/// Dispatches into precision-generic code with `$va` bound to the active
/// [`ValueArrays`] — the single point where the stored scalar type is
/// erased, so the hot paths stay monomorphic.
macro_rules! with_vals {
    ($lu:expr, $va:ident => $e:expr) => {
        match &$lu.vals {
            FactorValues::F64($va) => $e,
            FactorValues::F32($va) => $e,
        }
    };
}

/// Mutable twin of [`with_vals!`].
macro_rules! with_vals_mut {
    ($lu:expr, $va:ident => $e:expr) => {
        match &mut $lu.vals {
            FactorValues::F64($va) => $e,
            FactorValues::F32($va) => $e,
        }
    };
}

/// Per-thread numeric half of the factorization: the `L`/`U` values over a
/// shared [`SymbolicLu`]. See [`SparseLu`].
pub type NumericLu = SparseLu;

/// Sparse LU factorization `A(:, q) = Pᵀ L U`.
///
/// Internally this is a *numeric* factor (value arrays) over an
/// [`Arc<SymbolicLu>`] elimination plan; [`SparseLu::symbolic`] exposes the
/// shared half and [`SymbolicLu::numeric`] builds sibling factors for other
/// matrices with the same pattern.
///
/// # Example
///
/// ```
/// use ohmflow_linalg::{SparseLu, TripletMatrix};
///
/// # fn main() -> Result<(), ohmflow_linalg::LinalgError> {
/// let mut t = TripletMatrix::new(3, 3);
/// t.push(0, 0, 2.0);
/// t.push(1, 1, -3.0); // indefinite is fine: the substrate has negative resistors
/// t.push(2, 2, 4.0);
/// t.push(0, 2, 1.0);
/// let lu = SparseLu::factor(&t.to_csc())?;
/// let x = lu.solve(&[5.0, -3.0, 4.0])?;
/// assert!((x[1] - 1.0).abs() < 1e-12 && (x[2] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SparseLu {
    sym: Arc<SymbolicLu>,
    /// Numeric values (`L`, `U`, raw cross-block entries, supernode
    /// panels), stored at the plan's [`Precision`].
    vals: FactorValues,
}

impl SparseLu {
    /// Minimum system size for [`RefactorStrategy::Auto`] to choose the
    /// parallel replay. Below this, per-column work is so small that
    /// thread coordination costs more than the whole serial pass.
    pub const PAR_COL_THRESHOLD: usize = 512;

    /// Maximum number of right-hand-side lanes a single
    /// [`SparseLu::solve_multi_into`] traversal carries. Eight doubles per
    /// row keep the lane block inside one cache line, and the supernode
    /// scratch (`MAX_SN_WIDTH × 8` doubles) on the stack.
    pub const MAX_SOLVE_LANES: usize = 8;

    /// Factors `a` with default options.
    ///
    /// # Errors
    ///
    /// [`LinalgError::NotSquare`] if `a` is not square;
    /// [`LinalgError::Singular`] if a column has no usable pivot.
    pub fn factor(a: &CscMatrix) -> Result<Self, LinalgError> {
        Self::factor_with(a, &SparseLuOptions::default())
    }

    /// Factors `a` with explicit [`SparseLuOptions`].
    ///
    /// # Errors
    ///
    /// Same as [`SparseLu::factor`].
    pub fn factor_with(a: &CscMatrix, opts: &SparseLuOptions) -> Result<Self, LinalgError> {
        if a.rows() != a.cols() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.cols();
        // The ordering layer hands back a block view: the column order, the
        // diagonal-block boundaries in step space, and the preferred pivot
        // row per step. Non-BTF orderings are a single block preferring the
        // diagonal; AMD+BTF prefers the matched row of each column (its
        // structural anchor — for zero-diagonal columns the diagonal
        // preference never fired at all).
        let BlockOrdering {
            perm: q,
            block_ptr,
            diag_rows,
        } = match opts.ordering {
            ColumnOrdering::Natural => BlockOrdering::single_block((0..n).collect()),
            ColumnOrdering::MinDegree => BlockOrdering::single_block(min_degree_ordering(a)),
            ColumnOrdering::Rcm => BlockOrdering::single_block(reverse_cuthill_mckee(a)),
            ColumnOrdering::Amd => BlockOrdering::single_block(amd_ordering(a)),
            ColumnOrdering::NestedDissection => {
                BlockOrdering::single_block(nested_dissection_ordering(a))
            }
            ColumnOrdering::AmdBtf => amd_btf_ordering(a),
            ColumnOrdering::AmdBtfNd => amd_btf_nd_ordering(a),
        };

        let mut pinv = vec![NO_PIVOT; n]; // original row -> pivot step
        let mut row_perm = vec![NO_PIVOT; n]; // pivot step -> original row
        let mut l_ptr = vec![0usize];
        let mut l_rows: Vec<usize> = Vec::with_capacity(4 * a.nnz() + n);
        let mut l_vals: Vec<f64> = Vec::with_capacity(4 * a.nnz() + n);
        let mut u_ptr = vec![0usize];
        let mut u_rows: Vec<usize> = Vec::with_capacity(4 * a.nnz() + n);
        let mut u_vals: Vec<f64> = Vec::with_capacity(4 * a.nnz() + n);
        let mut off_ptr = vec![0usize];
        let mut off_rows: Vec<usize> = Vec::new();
        let mut off_vals: Vec<f64> = Vec::new();

        // Workspaces reused across columns; `stamp` arrays avoid O(n) clears.
        let mut x = vec![0.0f64; n];
        let mut pattern: Vec<usize> = Vec::with_capacity(64);
        let mut row_stamp = vec![usize::MAX; n]; // row in pattern this column?
        let mut step_stamp = vec![usize::MAX; n]; // step visited by DFS this column?
        let mut off_stamp = vec![usize::MAX; n]; // row in off list this column?
        let mut off_slot = vec![0usize; n]; // off-list slot of a stamped row
        let mut topo: Vec<usize> = Vec::with_capacity(64); // post-order of pivot steps
        let mut dfs: Vec<(usize, usize)> = Vec::with_capacity(64);
        let mut sort_perm: Vec<usize> = Vec::with_capacity(64); // sort_paired scratch

        let mut block_idx = 0usize;
        for k in 0..n {
            while k >= block_ptr[block_idx + 1] {
                block_idx += 1;
            }
            let block_lo = block_ptr[block_idx];
            let col = q[k];
            pattern.clear();
            topo.clear();

            for (r, v) in a.col(col) {
                // Rows already pivoted in an *earlier* diagonal block are
                // cross-block entries of the block-upper-triangular
                // permutation: stored raw and applied at solve time,
                // KLU-style, never eliminated through. Excluding them here
                // changes nothing inside this block — earlier-block `L`
                // columns only touch rows of their own block, so the
                // in-block values, pivots and fill are identical to the
                // old closure-into-`U` scheme.
                if pinv[r] < block_lo {
                    if off_stamp[r] != k {
                        off_stamp[r] = k;
                        off_slot[r] = off_rows.len();
                        off_rows.push(r);
                        off_vals.push(v);
                    } else {
                        off_vals[off_slot[r]] += v;
                    }
                    continue;
                }
                if row_stamp[r] != k {
                    row_stamp[r] = k;
                    pattern.push(r);
                    x[r] = v;
                } else {
                    x[r] += v;
                }
                let step = pinv[r];
                if step != NO_PIVOT && step_stamp[step] != k {
                    // DFS over L's structure starting at `step`.
                    step_stamp[step] = k;
                    dfs.push((step, l_ptr[step]));
                    while let Some(&mut (s, ref mut ptr)) = dfs.last_mut() {
                        let hi = l_ptr[s + 1];
                        let mut descended = false;
                        while *ptr < hi {
                            let child_row = l_rows[*ptr];
                            *ptr += 1;
                            if row_stamp[child_row] != k {
                                row_stamp[child_row] = k;
                                pattern.push(child_row);
                                x[child_row] = 0.0;
                            }
                            let child_step = pinv[child_row];
                            if child_step != NO_PIVOT && step_stamp[child_step] != k {
                                step_stamp[child_step] = k;
                                dfs.push((child_step, l_ptr[child_step]));
                                descended = true;
                                break;
                            }
                        }
                        if !descended && {
                            let (s2, p2) = *dfs
                                .last()
                                .expect("invariant: the DFS stack is nonempty inside the walk");
                            p2 >= l_ptr[s2 + 1]
                        } {
                            let (s2, _) = dfs
                                .pop()
                                .expect("invariant: the DFS stack is nonempty inside the walk");
                            topo.push(s2);
                        }
                    }
                }
            }

            // Numeric update in topological order (reverse post-order).
            for &s in topo.iter().rev() {
                let xval = x[row_perm[s]];
                if xval != 0.0 {
                    for idx in l_ptr[s]..l_ptr[s + 1] {
                        x[l_rows[idx]] -= xval * l_vals[idx];
                    }
                }
            }

            // Pivot selection with threshold preference for the step's
            // preferred row — the diagonal for plain orderings, the
            // structurally matched row under BTF — which keeps MNA
            // factorizations stable without destroying sparsity. Under a
            // block-triangular ordering the unpivoted pattern rows are
            // always confined to the current diagonal block (rows of later
            // blocks are structurally absent, earlier blocks are fully
            // pivoted), so pivoting can never break the block structure.
            let pref_row = diag_rows[k];
            let mut max_mag = 0.0f64;
            let mut max_row = NO_PIVOT;
            let mut diag_mag = -1.0f64;
            for &r in &pattern {
                if pinv[r] == NO_PIVOT {
                    let mag = x[r].abs();
                    if mag > max_mag {
                        max_mag = mag;
                        max_row = r;
                    }
                    if r == pref_row {
                        diag_mag = mag;
                    }
                }
            }
            if max_row == NO_PIVOT || max_mag <= opts.zero_tolerance {
                for &r in &pattern {
                    x[r] = 0.0;
                }
                return Err(LinalgError::Singular { column: col });
            }
            let pivot_row =
                if diag_mag >= opts.pivot_threshold * max_mag && diag_mag > opts.zero_tolerance {
                    pref_row
                } else {
                    max_row
                };
            let pivot_val = x[pivot_row];
            pinv[pivot_row] = k;
            row_perm[k] = pivot_row;

            // Emit U column (entries at pivotal rows, ascending step order,
            // pivot last) and L column (non-pivotal rows scaled by the
            // pivot). The ascending order is a topological order of the
            // column's update dependencies, which is what lets `refactor`
            // replay the numeric phase without redoing the symbolic DFS.
            //
            // Entries that cancelled to exactly 0.0 are stored anyway: the
            // stored structure must be the *full* symbolic closure, or a
            // later `refactor` (same pattern, different values) would
            // silently skip the update paths through the cancelled
            // positions and produce a wrong factorization.
            let u_col_start = u_rows.len();
            for &r in &pattern {
                let step = pinv[r];
                if step != NO_PIVOT && step != k {
                    u_rows.push(step);
                    u_vals.push(x[r]);
                }
            }
            sort_paired(
                &mut u_rows[u_col_start..],
                &mut u_vals[u_col_start..],
                &mut sort_perm,
            );
            u_rows.push(k);
            u_vals.push(pivot_val);
            u_ptr.push(u_rows.len());

            for &r in &pattern {
                if pinv[r] == NO_PIVOT {
                    l_rows.push(r);
                    l_vals.push(x[r] / pivot_val);
                }
            }
            l_ptr.push(l_rows.len());

            for &r in &pattern {
                x[r] = 0.0;
            }

            off_ptr.push(off_rows.len());
        }

        let sym = Arc::new(SymbolicLu {
            n,
            q,
            row_perm,
            pinv,
            l_ptr,
            l_rows,
            u_ptr,
            u_rows,
            block_ptr,
            off_ptr,
            off_rows,
            extras: std::sync::OnceLock::new(),
            zero_tol: opts.zero_tolerance,
            precision: opts.precision,
            supernodal: opts.supernodal,
            relax: opts.amalgamation,
            sn_plan: std::sync::OnceLock::new(),
        });
        let mut va = ValueArrays {
            l: l_vals,
            u: u_vals,
            off: off_vals,
            panels: Vec::new(),
            panels_valid: false,
        };
        if let Some(plan) = sym.blocked_plan() {
            va.fill_panels(plan);
        }
        let vals = match opts.precision {
            Precision::F64 => FactorValues::F64(va),
            // Downconvert once, after the full-precision pivoting
            // elimination: the pivot *choice* is always made in f64, the
            // narrower storage only affects replays and solves.
            Precision::F32Refined => FactorValues::F32(ValueArrays {
                l: va.l.iter().map(|&v| v as f32).collect(),
                u: va.u.iter().map(|&v| v as f32).collect(),
                off: va.off.iter().map(|&v| v as f32).collect(),
                panels: va.panels.iter().map(|&v| v as f32).collect(),
                panels_valid: va.panels_valid,
            }),
        };
        let lu = SparseLu { sym, vals };
        crate::verify::debug_auto_audit!(lu.audit());
        Ok(lu)
    }

    /// The shared symbolic half (ordering, pattern, pivot plan). Clone the
    /// `Arc` to hand the elimination plan to other threads; pair it with
    /// [`SymbolicLu::numeric`] to build sibling factors.
    pub fn symbolic(&self) -> &Arc<SymbolicLu> {
        &self.sym
    }

    /// Audits the full factorization: the shared symbolic plan (see
    /// [`SymbolicLu::audit`]), the supernode plan if one is active, and
    /// the numeric value arrays ([`SparseLu::audit_values`]). Runs
    /// automatically at construction in debug builds.
    ///
    /// # Errors
    ///
    /// The first violated invariant, as a structured
    /// [`crate::AuditError`].
    pub fn audit(&self) -> Result<(), crate::AuditError> {
        self.sym.audit()?;
        self.sym.audit_supernodes()?;
        self.audit_values()
    }

    /// The cheap numeric half of [`SparseLu::audit`]: every value array
    /// must mirror its symbolic pattern length, and valid supernode
    /// panels must match the active plan's layout. Runs automatically
    /// after every refactorization in debug builds.
    ///
    /// # Errors
    ///
    /// The first violated invariant, as a structured
    /// [`crate::AuditError`].
    pub fn audit_values(&self) -> Result<(), crate::AuditError> {
        let sym = &self.sym;
        let (l_len, u_len, off_len, panels_len, panels_valid) = with_vals!(self, va => (
            va.l.len(),
            va.u.len(),
            va.off.len(),
            va.panels.len(),
            va.panels_valid,
        ));
        if l_len != sym.l_rows.len() || u_len != sym.u_rows.len() || off_len != sym.off_rows.len() {
            return Err(crate::AuditError::new(
                "SparseLu",
                "value-shape",
                format!(
                    "values {l_len}/{u_len}/{off_len} vs pattern {}/{}/{}",
                    sym.l_rows.len(),
                    sym.u_rows.len(),
                    sym.off_rows.len()
                ),
            ));
        }
        let plan_len = sym.blocked_plan().map_or(0, |p| p.panel_len);
        if panels_valid && panels_len != plan_len {
            return Err(crate::AuditError::new(
                "SparseLu",
                "panels-coherent",
                format!("valid panels hold {panels_len} cells, plan expects {plan_len}"),
            ));
        }
        Ok(())
    }

    /// Recomputes the numeric factorization for a matrix with the **same**
    /// (or a subset of the) sparsity pattern as the one originally
    /// factored, reusing the column ordering, the symbolic `L`/`U`
    /// structure and the pivot sequence — the KLU-style fast path for
    /// value-only matrix changes (a circuit re-stamped with different
    /// conductances).
    ///
    /// This skips the symbolic DFS and the pivot search entirely, so it is
    /// several times cheaper than [`SparseLu::factor`]; the cost is that
    /// the frozen pivot sequence may be less numerically favourable for
    /// the new values. A pivot that collapses below `10⁻¹⁰` of its
    /// column's magnitude is rejected as [`LinalgError::Singular`] so the
    /// caller can fall back to a fresh pivoting factorization.
    ///
    /// # Errors
    ///
    /// [`LinalgError::NotSquare`] / [`LinalgError::DimensionMismatch`] for
    /// shape mismatches, [`LinalgError::PatternChanged`] if `a` has an
    /// entry outside the factorized pattern, and [`LinalgError::Singular`]
    /// if a frozen pivot becomes numerically unusable.
    ///
    /// On error the factor values are partially overwritten: the
    /// factorization **must not** be used for further solves and should be
    /// replaced via [`SparseLu::factor`].
    pub fn refactor(&mut self, a: &CscMatrix) -> Result<(), LinalgError> {
        let mut ws = LuWorkspace::new();
        self.refactor_with(a, &mut ws)
    }

    /// [`SparseLu::refactor`] with caller-provided scratch, so repeated
    /// numeric replays (per-step rebases, template fan-outs) allocate
    /// nothing — the workspace also pools the per-worker scratch of the
    /// parallel path, which only a small per-call scheduling vector (one
    /// cursor per parallel level) escapes. Uses [`RefactorStrategy::Auto`]
    /// scheduling: large systems replay their elimination levels in
    /// parallel when worker threads are available.
    ///
    /// # Errors
    ///
    /// Same as [`SparseLu::refactor`].
    pub fn refactor_with(
        &mut self,
        a: &CscMatrix,
        ws: &mut LuWorkspace,
    ) -> Result<(), LinalgError> {
        self.refactor_with_strategy(a, ws, RefactorStrategy::Auto)
    }

    /// [`SparseLu::refactor_with`] with explicit scheduling control. The
    /// serial and parallel paths run the identical per-column arithmetic
    /// (`refactor_step`) against the same frozen ordering, pattern and
    /// pivot sequence, so their results are bit-for-bit equal — the
    /// strategy only chooses how the independent columns of each
    /// elimination level are distributed.
    ///
    /// # Errors
    ///
    /// Same as [`SparseLu::refactor`]. On error (from any worker) the
    /// factor values are partially overwritten and must not be used.
    pub fn refactor_with_strategy(
        &mut self,
        a: &CscMatrix,
        ws: &mut LuWorkspace,
        strategy: RefactorStrategy,
    ) -> Result<(), LinalgError> {
        if a.rows() != a.cols() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        if a.cols() != self.sym.n {
            return Err(LinalgError::DimensionMismatch {
                expected: self.sym.n,
                found: a.cols(),
            });
        }
        let threads = match strategy {
            RefactorStrategy::Serial => 1,
            RefactorStrategy::Parallel { threads } => threads.max(1),
            RefactorStrategy::Auto => {
                if self.sym.n >= Self::PAR_COL_THRESHOLD && !rayon::in_worker() {
                    rayon::current_num_threads()
                } else {
                    1
                }
            }
        };
        let sym = Arc::clone(&self.sym);
        with_vals_mut!(self, va => refactor_dispatch(&sym, va, a, ws, threads))?;
        crate::verify::debug_auto_audit!(self.audit_values());
        Ok(())
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] if `b.len()` differs from the
    /// system dimension.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let mut work = Vec::new();
        let mut out = Vec::new();
        self.solve_into(b, &mut work, &mut out)?;
        Ok(out)
    }

    /// Solves `A x = b` into caller-provided buffers: on success `out`
    /// holds the solution. Both buffers are resized as needed, so hot loops
    /// (a transient simulation solving thousands of time steps) reuse their
    /// allocations.
    ///
    /// # Errors
    ///
    /// Same as [`SparseLu::solve`].
    pub fn solve_into(
        &self,
        b: &[f64],
        work: &mut Vec<f64>,
        out: &mut Vec<f64>,
    ) -> Result<(), LinalgError> {
        with_vals!(self, va => self.solve_into_vals(va, b, work, out))
    }

    /// Precision-generic body of [`SparseLu::solve_into`]. Arithmetic is
    /// always f64 — stored values are widened on load (an identity for
    /// f64 factors, so the historical solve is reproduced bit for bit) —
    /// and the forward/backward substitutions go through the dense
    /// supernode panels when a blocked plan is active, the panels mirror
    /// the factor, and the system is large enough to pay for it.
    fn solve_into_vals<S: LuScalar>(
        &self,
        va: &ValueArrays<S>,
        b: &[f64],
        work: &mut Vec<f64>,
        out: &mut Vec<f64>,
    ) -> Result<(), LinalgError> {
        let sym = &self.sym;
        if b.len() != sym.n {
            return Err(LinalgError::DimensionMismatch {
                expected: sym.n,
                found: b.len(),
            });
        }
        // Small systems keep the scalar path: its updates land in exactly
        // the per-entry order the sparse-RHS solves replicate, preserving
        // their bit-identical contract, and the panel gather wouldn't pay
        // for itself anyway.
        let plan = if va.panels_valid && sym.n >= Self::PAR_COL_THRESHOLD {
            sym.blocked_plan()
        } else {
            None
        };
        // Blocks are solved last-to-first: the block-upper-triangular
        // permutation only couples a block to *earlier* ones, so each
        // block runs its own forward (L) and backward (U) substitution
        // and then scatters its raw cross-block `A_off` entries into the
        // still-pending right-hand side rows of earlier blocks.
        work.clear();
        work.extend_from_slice(b);
        out.clear();
        out.resize(sym.n, 0.0);
        let bp = &sym.block_ptr;
        for t in (0..bp.len() - 1).rev() {
            let (lo, hi) = (bp[t], bp[t + 1]);
            match plan {
                Some(plan) => {
                    self.block_forward_sn(va, plan, lo, hi, work, out);
                    self.block_backward_sn(va, plan, lo, hi, out);
                }
                None => {
                    // Forward solve L z = P b within the block; z (in
                    // `out`) indexed by pivot step.
                    for step in lo..hi {
                        let zk = work[sym.row_perm[step]];
                        out[step] = zk;
                        if zk != 0.0 {
                            for idx in sym.l_ptr[step]..sym.l_ptr[step + 1] {
                                work[sym.l_rows[idx]] -= zk * va.l[idx].to_f64();
                            }
                        }
                    }
                    // Backward solve U y = z in place; U columns hold
                    // steps, diagonal last.
                    for step in (lo..hi).rev() {
                        let (ulo, uhi) = (sym.u_ptr[step], sym.u_ptr[step + 1]);
                        let yk = out[step] / va.u[uhi - 1].to_f64();
                        out[step] = yk;
                        if yk != 0.0 {
                            for idx in ulo..(uhi - 1) {
                                out[sym.u_rows[idx]] -= yk * va.u[idx].to_f64();
                            }
                        }
                    }
                }
            }
            // Apply the cross-block coupling: b' -= A_off · x_block, all
            // targets in earlier (not yet solved) blocks.
            for (step, &yk) in out.iter().enumerate().take(hi).skip(lo) {
                if yk != 0.0 {
                    for idx in sym.off_ptr[step]..sym.off_ptr[step + 1] {
                        work[sym.off_rows[idx]] -= va.off[idx].to_f64() * yk;
                    }
                }
            }
        }
        // Undo the column permutation: x[q[k]] = y[k].
        for k in 0..sym.n {
            work[sym.q[k]] = out[k];
        }
        std::mem::swap(work, out);
        Ok(())
    }

    /// Supernode-aware forward substitution over one BTF block: singleton
    /// supernodes run the scalar per-entry update, multi-column supernodes
    /// solve their `w × w` unit-lower diagonal into a local dense vector
    /// and push it through the body panel with lane dot products — one
    /// contiguous read per body row instead of `w` strided scatters.
    fn block_forward_sn<S: LuScalar>(
        &self,
        va: &ValueArrays<S>,
        plan: &SupernodePlan,
        lo: usize,
        hi: usize,
        work: &mut [f64],
        out: &mut [f64],
    ) {
        let sym = &self.sym;
        let (s0, s1) = (plan.sn_of_step[lo], plan.sn_of_step[hi - 1] + 1);
        for sn in s0..s1 {
            let (k0, k1) = (plan.sn_ptr[sn], plan.sn_ptr[sn + 1]);
            let w = k1 - k0;
            if w == 1 {
                let zk = work[sym.row_perm[k0]];
                out[k0] = zk;
                if zk != 0.0 {
                    for idx in sym.l_ptr[k0]..sym.l_ptr[k0 + 1] {
                        work[sym.l_rows[idx]] -= zk * va.l[idx].to_f64();
                    }
                }
                continue;
            }
            let pbase = plan.panel_ptr[sn];
            let rows = plan.body_rows(sn);
            let r_cnt = rows.len();
            let body = &va.panels[pbase..pbase + r_cnt * w];
            let ldiag = &va.panels[pbase + r_cnt * w..pbase + (r_cnt + w) * w];
            // Dense unit-lower solve of the supernode diagonal: member t
            // reads the pivot rows of b already updated by members < t
            // through the ldiag columns (padding cells are exact zeros).
            let mut z = [0.0f64; MAX_SN_WIDTH];
            for t in 0..w {
                let mut zk = work[sym.row_perm[k0 + t]];
                for (j, &zj) in z.iter().enumerate().take(t) {
                    zk -= zj * ldiag[j * w + t].to_f64();
                }
                z[t] = zk;
                out[k0 + t] = zk;
            }
            for (i, &r) in rows.iter().enumerate() {
                work[r] -= dot_lanes_f64(&body[i * w..(i + 1) * w], &z[..w]);
            }
        }
    }

    /// Supernode-aware backward substitution over one BTF block:
    /// multi-column supernodes resolve their within-supernode coupling
    /// through the dense `udiag` panel (descending members, contiguous
    /// column reads) and fire only the external prefix of each stored `U`
    /// column per entry.
    fn block_backward_sn<S: LuScalar>(
        &self,
        va: &ValueArrays<S>,
        plan: &SupernodePlan,
        lo: usize,
        hi: usize,
        out: &mut [f64],
    ) {
        let sym = &self.sym;
        let (s0, s1) = (plan.sn_of_step[lo], plan.sn_of_step[hi - 1] + 1);
        for sn in (s0..s1).rev() {
            let (k0, k1) = (plan.sn_ptr[sn], plan.sn_ptr[sn + 1]);
            let w = k1 - k0;
            if w == 1 {
                let (ulo, uhi) = (sym.u_ptr[k0], sym.u_ptr[k0 + 1]);
                let yk = out[k0] / va.u[uhi - 1].to_f64();
                out[k0] = yk;
                if yk != 0.0 {
                    for idx in ulo..(uhi - 1) {
                        out[sym.u_rows[idx]] -= yk * va.u[idx].to_f64();
                    }
                }
                continue;
            }
            let pbase = plan.panel_ptr[sn];
            let r_cnt = plan.body_rows(sn).len();
            let udiag = &va.panels[pbase + (r_cnt + w) * w..pbase + (r_cnt + 2 * w) * w];
            for t in (0..w).rev() {
                let k = k0 + t;
                let yk = out[k] / udiag[t * w + t].to_f64();
                out[k] = yk;
                if yk != 0.0 {
                    // Within-supernode targets through the dense panel
                    // column (absent entries are exact zeros) ...
                    for i in 0..t {
                        out[k0 + i] -= yk * udiag[t * w + i].to_f64();
                    }
                    // ... and the external prefix of the stored column
                    // (entries ascending; the own-supernode tail sits just
                    // before the diagonal).
                    let (ulo, uhi) = (sym.u_ptr[k], sym.u_ptr[k + 1]);
                    let mut ehi = uhi - 1;
                    while ehi > ulo && sym.u_rows[ehi - 1] >= k0 {
                        ehi -= 1;
                    }
                    for idx in ulo..ehi {
                        out[sym.u_rows[idx]] -= yk * va.u[idx].to_f64();
                    }
                }
            }
        }
    }

    /// Solves `A X = B` for up to [`SparseLu::MAX_SOLVE_LANES`] right-hand
    /// sides in one L/U traversal. `b` is lane-interleaved — entry
    /// `b[row * k + lane]` is row `row` of right-hand side `lane` — and
    /// `out` receives the solutions in the same layout. One traversal
    /// loads every factor value exactly once and applies it to all `k`
    /// lanes, where `k` sequential [`SparseLu::solve_into`] calls would
    /// re-stream the factor `k` times; rank-k Woodbury pushes
    /// ([`crate::LowRankUpdate`]) are the primary caller.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] if `k` is zero or exceeds
    /// [`SparseLu::MAX_SOLVE_LANES`], or if `b.len() != n * k`.
    pub fn solve_multi_into(
        &self,
        b: &[f64],
        k: usize,
        work: &mut Vec<f64>,
        out: &mut Vec<f64>,
    ) -> Result<(), LinalgError> {
        match k {
            // A single lane is exactly the single-RHS layout.
            1 => self.solve_into(b, work, out),
            2 => with_vals!(self, va => self.solve_multi_into_vals::<_, 2>(va, b, work, out)),
            3 => with_vals!(self, va => self.solve_multi_into_vals::<_, 3>(va, b, work, out)),
            4 => with_vals!(self, va => self.solve_multi_into_vals::<_, 4>(va, b, work, out)),
            5 => with_vals!(self, va => self.solve_multi_into_vals::<_, 5>(va, b, work, out)),
            6 => with_vals!(self, va => self.solve_multi_into_vals::<_, 6>(va, b, work, out)),
            7 => with_vals!(self, va => self.solve_multi_into_vals::<_, 7>(va, b, work, out)),
            8 => with_vals!(self, va => self.solve_multi_into_vals::<_, 8>(va, b, work, out)),
            _ => Err(LinalgError::DimensionMismatch {
                expected: Self::MAX_SOLVE_LANES,
                found: k,
            }),
        }
    }

    /// Lane-count-monomorphized body of [`SparseLu::solve_multi_into`]:
    /// the exact structure of [`SparseLu::solve_into_vals`] with every
    /// scalar replaced by a `[f64; K]` lane block, so each factor value is
    /// loaded once and broadcast across the lanes. Monomorphizing over `K`
    /// lets the compiler fully unroll the lane loops.
    fn solve_multi_into_vals<S: LuScalar, const K: usize>(
        &self,
        va: &ValueArrays<S>,
        b: &[f64],
        work: &mut Vec<f64>,
        out: &mut Vec<f64>,
    ) -> Result<(), LinalgError> {
        let sym = &self.sym;
        if b.len() != sym.n * K {
            return Err(LinalgError::DimensionMismatch {
                expected: sym.n * K,
                found: b.len(),
            });
        }
        let plan = if va.panels_valid && sym.n >= Self::PAR_COL_THRESHOLD {
            sym.blocked_plan()
        } else {
            None
        };
        work.clear();
        work.extend_from_slice(b);
        out.clear();
        out.resize(sym.n * K, 0.0);
        let bp = &sym.block_ptr;
        for t in (0..bp.len() - 1).rev() {
            let (lo, hi) = (bp[t], bp[t + 1]);
            match plan {
                Some(plan) => {
                    self.block_forward_sn_multi::<S, K>(va, plan, lo, hi, work, out);
                    self.block_backward_sn_multi::<S, K>(va, plan, lo, hi, out);
                }
                None => {
                    for step in lo..hi {
                        let rp = sym.row_perm[step] * K;
                        let mut zk = [0.0f64; K];
                        zk.copy_from_slice(&work[rp..rp + K]);
                        out[step * K..step * K + K].copy_from_slice(&zk);
                        if zk.iter().any(|&z| z != 0.0) {
                            for idx in sym.l_ptr[step]..sym.l_ptr[step + 1] {
                                let lv = va.l[idx].to_f64();
                                let r = sym.l_rows[idx] * K;
                                for (l, &z) in zk.iter().enumerate() {
                                    work[r + l] -= z * lv;
                                }
                            }
                        }
                    }
                    for step in (lo..hi).rev() {
                        let (ulo, uhi) = (sym.u_ptr[step], sym.u_ptr[step + 1]);
                        let d = va.u[uhi - 1].to_f64();
                        let mut yk = [0.0f64; K];
                        for (l, y) in yk.iter_mut().enumerate() {
                            *y = out[step * K + l] / d;
                        }
                        out[step * K..step * K + K].copy_from_slice(&yk);
                        if yk.iter().any(|&y| y != 0.0) {
                            for idx in ulo..(uhi - 1) {
                                let uv = va.u[idx].to_f64();
                                let r = sym.u_rows[idx] * K;
                                for (l, &y) in yk.iter().enumerate() {
                                    out[r + l] -= y * uv;
                                }
                            }
                        }
                    }
                }
            }
            // Cross-block coupling, per lane.
            for step in lo..hi {
                let mut yk = [0.0f64; K];
                yk.copy_from_slice(&out[step * K..step * K + K]);
                if yk.iter().any(|&v| v != 0.0) {
                    for idx in sym.off_ptr[step]..sym.off_ptr[step + 1] {
                        let ov = va.off[idx].to_f64();
                        let r = sym.off_rows[idx] * K;
                        for (l, &y) in yk.iter().enumerate() {
                            work[r + l] -= ov * y;
                        }
                    }
                }
            }
        }
        // Undo the column permutation lane-block-wise: x[q[k]] = y[k].
        for kk in 0..sym.n {
            let (src, dst) = (kk * K, sym.q[kk] * K);
            work[dst..dst + K].copy_from_slice(&out[src..src + K]);
        }
        std::mem::swap(work, out);
        Ok(())
    }

    /// Multi-lane twin of [`SparseLu::block_forward_sn`]: the supernode
    /// diagonal solve and the body-panel push each read a panel cell once
    /// and apply it to all `K` lanes of the local `z` block.
    fn block_forward_sn_multi<S: LuScalar, const K: usize>(
        &self,
        va: &ValueArrays<S>,
        plan: &SupernodePlan,
        lo: usize,
        hi: usize,
        work: &mut [f64],
        out: &mut [f64],
    ) {
        let sym = &self.sym;
        let (s0, s1) = (plan.sn_of_step[lo], plan.sn_of_step[hi - 1] + 1);
        for sn in s0..s1 {
            let (k0, k1) = (plan.sn_ptr[sn], plan.sn_ptr[sn + 1]);
            let w = k1 - k0;
            if w == 1 {
                let rp = sym.row_perm[k0] * K;
                let mut zk = [0.0f64; K];
                zk.copy_from_slice(&work[rp..rp + K]);
                out[k0 * K..k0 * K + K].copy_from_slice(&zk);
                if zk.iter().any(|&z| z != 0.0) {
                    for idx in sym.l_ptr[k0]..sym.l_ptr[k0 + 1] {
                        let lv = va.l[idx].to_f64();
                        let r = sym.l_rows[idx] * K;
                        for (l, &z) in zk.iter().enumerate() {
                            work[r + l] -= z * lv;
                        }
                    }
                }
                continue;
            }
            let pbase = plan.panel_ptr[sn];
            let rows = plan.body_rows(sn);
            let r_cnt = rows.len();
            let body = &va.panels[pbase..pbase + r_cnt * w];
            let ldiag = &va.panels[pbase + r_cnt * w..pbase + (r_cnt + w) * w];
            let mut z = [[0.0f64; K]; MAX_SN_WIDTH];
            for t in 0..w {
                let rp = sym.row_perm[k0 + t] * K;
                let mut zk = [0.0f64; K];
                zk.copy_from_slice(&work[rp..rp + K]);
                for (j, zj) in z.iter().enumerate().take(t) {
                    let c = ldiag[j * w + t].to_f64();
                    if c != 0.0 {
                        for (l, &zv) in zj.iter().enumerate() {
                            zk[l] -= zv * c;
                        }
                    }
                }
                z[t] = zk;
                out[(k0 + t) * K..(k0 + t) * K + K].copy_from_slice(&zk);
            }
            for (i, &r) in rows.iter().enumerate() {
                let arow = &body[i * w..(i + 1) * w];
                let mut acc = [0.0f64; K];
                for (j, aj) in arow.iter().enumerate() {
                    let av = aj.to_f64();
                    for (l, a) in acc.iter_mut().enumerate() {
                        *a += av * z[j][l];
                    }
                }
                let rb = r * K;
                for (l, &a) in acc.iter().enumerate() {
                    work[rb + l] -= a;
                }
            }
        }
    }

    /// Multi-lane twin of [`SparseLu::block_backward_sn`]: descending
    /// members resolve within-supernode coupling through the dense `udiag`
    /// panel, firing each external `U` entry once across all `K` lanes.
    fn block_backward_sn_multi<S: LuScalar, const K: usize>(
        &self,
        va: &ValueArrays<S>,
        plan: &SupernodePlan,
        lo: usize,
        hi: usize,
        out: &mut [f64],
    ) {
        let sym = &self.sym;
        let (s0, s1) = (plan.sn_of_step[lo], plan.sn_of_step[hi - 1] + 1);
        for sn in (s0..s1).rev() {
            let (k0, k1) = (plan.sn_ptr[sn], plan.sn_ptr[sn + 1]);
            let w = k1 - k0;
            if w == 1 {
                let (ulo, uhi) = (sym.u_ptr[k0], sym.u_ptr[k0 + 1]);
                let d = va.u[uhi - 1].to_f64();
                let mut yk = [0.0f64; K];
                for (l, y) in yk.iter_mut().enumerate() {
                    *y = out[k0 * K + l] / d;
                }
                out[k0 * K..k0 * K + K].copy_from_slice(&yk);
                if yk.iter().any(|&y| y != 0.0) {
                    for idx in ulo..(uhi - 1) {
                        let uv = va.u[idx].to_f64();
                        let r = sym.u_rows[idx] * K;
                        for (l, &y) in yk.iter().enumerate() {
                            out[r + l] -= y * uv;
                        }
                    }
                }
                continue;
            }
            let pbase = plan.panel_ptr[sn];
            let r_cnt = plan.body_rows(sn).len();
            let udiag = &va.panels[pbase + (r_cnt + w) * w..pbase + (r_cnt + 2 * w) * w];
            for t in (0..w).rev() {
                let k = k0 + t;
                let d = udiag[t * w + t].to_f64();
                let mut yk = [0.0f64; K];
                for (l, y) in yk.iter_mut().enumerate() {
                    *y = out[k * K + l] / d;
                }
                out[k * K..k * K + K].copy_from_slice(&yk);
                if yk.iter().any(|&y| y != 0.0) {
                    for i in 0..t {
                        let c = udiag[t * w + i].to_f64();
                        if c != 0.0 {
                            let rb = (k0 + i) * K;
                            for (l, &y) in yk.iter().enumerate() {
                                out[rb + l] -= y * c;
                            }
                        }
                    }
                    let (ulo, uhi) = (sym.u_ptr[k], sym.u_ptr[k + 1]);
                    let mut ehi = uhi - 1;
                    while ehi > ulo && sym.u_rows[ehi - 1] >= k0 {
                        ehi -= 1;
                    }
                    for idx in ulo..ehi {
                        let uv = va.u[idx].to_f64();
                        let r = sym.u_rows[idx] * K;
                        for (l, &y) in yk.iter().enumerate() {
                            out[r + l] -= y * uv;
                        }
                    }
                }
            }
        }
    }

    /// Shared L phase of the sparse-RHS solves: computes the reach of `b`'s
    /// pivot steps in the graph of `L` (edges step → `pinv[row]` per stored
    /// `L` entry, always toward later steps), then runs the numeric forward
    /// substitution over exactly those steps. Afterwards `ws.lreach` holds
    /// the reach in ascending (topological) step order and `ws.xs` the
    /// forward solution `z = L⁻¹ P b` on it.
    fn forward_sparse_phase<S: LuScalar>(
        &self,
        va: &ValueArrays<S>,
        b: &[(usize, f64)],
        ws: &mut SparseSolveWorkspace,
    ) -> Result<(), LinalgError> {
        let sym = &self.sym;
        let n = sym.n;
        for &(r, _) in b {
            if r >= n {
                return Err(LinalgError::DimensionMismatch {
                    expected: n,
                    found: r + 1,
                });
            }
        }
        ws.reset(n);
        let l_steps = &sym.extras().l_steps;
        let l_mark = ws.epoch;
        for &(r, _) in b {
            let seed = sym.pinv[r];
            if ws.mark[seed] >= l_mark {
                continue;
            }
            ws.mark[seed] = l_mark;
            ws.xs[seed] = 0.0;
            ws.lreach.push(seed);
            ws.stack.push(seed);
            while let Some(s) = ws.stack.pop() {
                for &t in &l_steps[sym.l_ptr[s]..sym.l_ptr[s + 1]] {
                    if ws.mark[t] < l_mark {
                        ws.mark[t] = l_mark;
                        ws.xs[t] = 0.0;
                        ws.lreach.push(t);
                        ws.stack.push(t);
                    }
                }
            }
        }
        // Ascending step order is a topological order of the L graph and
        // matches the dense solve's update order exactly.
        ws.lreach.sort_unstable();

        // Numeric forward solve over the reach only.
        for &(r, v) in b {
            ws.xs[sym.pinv[r]] += v;
        }
        for &s in &ws.lreach {
            let zk = ws.xs[s];
            if zk != 0.0 {
                let (lo, hi) = (sym.l_ptr[s], sym.l_ptr[s + 1]);
                for (&t, &lv) in l_steps[lo..hi].iter().zip(&va.l[lo..hi]) {
                    ws.xs[t] -= zk * lv.to_f64();
                }
            }
        }
        Ok(())
    }

    /// The forward **half** of a solve for a sparse right-hand side:
    /// `ŵ = L⁻¹ P b`, returned as `(pivot step, value)` pairs in ascending
    /// step order, touching only the L-reach of `b`.
    ///
    /// Unlike a full solve — whose result is structurally dense whenever
    /// the system is irreducible — the forward half *stays* sparse, which
    /// is what makes Woodbury bookkeeping cheap: [`LowRankUpdate`](crate::LowRankUpdate) stores
    /// `ŵ` per rank-1 term and never materializes the dense `A⁻¹ u`.
    ///
    /// Under a multi-block factorization `L` is the *block-diagonal*
    /// factor only — the cross-block coupling lives in the raw `A_off`
    /// values applied by the full solves — so the forward and backward
    /// halves no longer compose to `A⁻¹` on their own; use
    /// [`SparseLu::solve_sparse_into`] instead.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] if any index of `b` is out of
    /// range.
    pub fn forward_sparse_into(
        &self,
        b: &[(usize, f64)],
        ws: &mut SparseSolveWorkspace,
        out: &mut Vec<(usize, f64)>,
    ) -> Result<(), LinalgError> {
        with_vals!(self, va => self.forward_sparse_phase(va, b, ws))?;
        out.clear();
        out.extend(ws.lreach.iter().map(|&s| (s, ws.xs[s])));
        Ok(())
    }

    /// The transposed backward **half** of a solve for a sparse `v`:
    /// `ĝ = U⁻ᵀ Qᵀ v` as `(pivot step, value)` pairs in ascending step
    /// order. `Uᵀ` is lower triangular in step space, so this is a forward
    /// substitution whose reach follows the *dependent* edges of the
    /// stored `U` pattern (the transposed structure kept in the symbolic
    /// plan) — again small for 1–2 nonzero `v`.
    ///
    /// Together with [`SparseLu::forward_sparse_into`] this gives the
    /// capacitance entries of the Woodbury identity as sparse dot
    /// products: `vᵀ A⁻¹ u = ĝ · ŵ` — for **single-block**
    /// factorizations. Under a multi-block factorization `U` excludes the
    /// cross-block coupling, so the identity does not hold; multi-block
    /// callers go through [`SparseLu::solve_sparse_into`].
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] if any index of `v` is out of
    /// range.
    pub fn transposed_backward_sparse_into(
        &self,
        v: &[(usize, f64)],
        ws: &mut SparseSolveWorkspace,
        out: &mut Vec<(usize, f64)>,
    ) -> Result<(), LinalgError> {
        with_vals!(self, va => self.transposed_backward_sparse_vals(va, v, ws, out))
    }

    /// Precision-generic body of
    /// [`SparseLu::transposed_backward_sparse_into`].
    fn transposed_backward_sparse_vals<S: LuScalar>(
        &self,
        va: &ValueArrays<S>,
        v: &[(usize, f64)],
        ws: &mut SparseSolveWorkspace,
        out: &mut Vec<(usize, f64)>,
    ) -> Result<(), LinalgError> {
        let sym = &self.sym;
        let n = sym.n;
        for &(r, _) in v {
            if r >= n {
                return Err(LinalgError::DimensionMismatch {
                    expected: n,
                    found: r + 1,
                });
            }
        }
        ws.reset(n);
        let ex = sym.extras();
        let mark = ws.epoch;
        // Reach of v̂'s steps along dependent edges (s → later steps whose
        // U column contains s), i.e. the nonzero pattern of ĝ.
        for &(r, _) in v {
            let seed = ex.qinv[r];
            if ws.mark[seed] >= mark {
                continue;
            }
            ws.mark[seed] = mark;
            ws.xs[seed] = 0.0;
            ws.lreach.push(seed);
            ws.stack.push(seed);
            while let Some(s) = ws.stack.pop() {
                for idx in ex.ut_ptr[s]..ex.ut_ptr[s + 1] {
                    let t = ex.ut_steps[idx];
                    if ws.mark[t] < mark {
                        ws.mark[t] = mark;
                        ws.xs[t] = 0.0;
                        ws.lreach.push(t);
                        ws.stack.push(t);
                    }
                }
            }
        }
        ws.lreach.sort_unstable();
        for &(r, val) in v {
            ws.xs[ex.qinv[r]] += val;
        }
        // Scatter recurrence in ascending step order: once ĝ[s] is final,
        // push its contribution along s's dependent edges. This touches
        // exactly the within-reach edges; the gather form would walk the
        // full (late, huge) U columns of every reach step instead.
        for &s in &ws.lreach {
            let gk = ws.xs[s] / va.u[sym.u_ptr[s + 1] - 1].to_f64();
            ws.xs[s] = gk;
            if gk != 0.0 {
                for idx in ex.ut_ptr[s]..ex.ut_ptr[s + 1] {
                    ws.xs[ex.ut_steps[idx]] -= va.u[ex.ut_vals_idx[idx]].to_f64() * gk;
                }
            }
        }
        out.clear();
        out.extend(ws.lreach.iter().map(|&s| (s, ws.xs[s])));
        Ok(())
    }

    /// Completes a sparse forward half into a full solution:
    /// `x = Q U⁻¹ s` for a step-space `s` (e.g. the `ŵ` of
    /// [`SparseLu::forward_sparse_into`]), written densely into `out`.
    ///
    /// The backward half of an irreducible system is structurally dense,
    /// so no reach is computed — this is a plain backward substitution
    /// seeded by the scattered `s`, skipping only the `O(n)` forward scan
    /// and the RHS permutation of a full [`SparseLu::solve_into`]. This is
    /// how [`LowRankUpdate`](crate::LowRankUpdate) materializes the dense `zⱼ = A⁻¹ uⱼ` it
    /// axpy-applies per solve, without ever forming a dense right-hand
    /// side. Single-block factorizations only, like the halves it
    /// completes: a multi-block `U` omits the cross-block coupling.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] if a step index is out of range.
    pub fn backward_dense_from_steps(
        &self,
        s: &[(usize, f64)],
        work: &mut Vec<f64>,
        out: &mut Vec<f64>,
    ) -> Result<(), LinalgError> {
        with_vals!(self, va => self.backward_dense_from_steps_vals(va, s, work, out))
    }

    /// Precision-generic body of [`SparseLu::backward_dense_from_steps`].
    fn backward_dense_from_steps_vals<S: LuScalar>(
        &self,
        va: &ValueArrays<S>,
        s: &[(usize, f64)],
        work: &mut Vec<f64>,
        out: &mut Vec<f64>,
    ) -> Result<(), LinalgError> {
        let sym = &self.sym;
        let n = sym.n;
        for &(step, _) in s {
            if step >= n {
                return Err(LinalgError::DimensionMismatch {
                    expected: n,
                    found: step + 1,
                });
            }
        }
        work.clear();
        work.resize(n, 0.0);
        for &(step, val) in s {
            work[step] += val;
        }
        for step in (0..n).rev() {
            let (lo, hi) = (sym.u_ptr[step], sym.u_ptr[step + 1]);
            let yk = work[step] / va.u[hi - 1].to_f64();
            work[step] = yk;
            if yk != 0.0 {
                for idx in lo..(hi - 1) {
                    work[sym.u_rows[idx]] -= yk * va.u[idx].to_f64();
                }
            }
        }
        out.clear();
        out.resize(n, 0.0);
        for k in 0..n {
            out[sym.q[k]] = work[k];
        }
        Ok(())
    }

    /// Solves `A x = b` for a **sparse** right-hand side `b` given as
    /// `(index, value)` pairs (duplicates accumulate), touching only the
    /// factor columns that can influence the result.
    ///
    /// This is the Gilbert–Peierls reach trick applied to the solve phase:
    /// a DFS over the structure of `L` from the pivot steps of `b`'s
    /// nonzero rows computes the symbolic nonzero pattern of the forward
    /// solution, a second DFS over `U` extends it to the backward phase,
    /// and the numeric substitution then visits only those steps — for a
    /// 1–2 nonzero RHS (a Woodbury rank-1 term from a diode flip) that is
    /// typically a small fraction of the system. On its reach set the
    /// result is bit-identical to [`SparseLu::solve_into`] (same updates,
    /// same order); outside it, exact zeros.
    ///
    /// `out` is resized to the system dimension with the solution values;
    /// `ws.pattern()` lists the (unsorted) indices of `out` the solve
    /// computed — every entry off that pattern is exactly `0.0`.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] if any index of `b` is out of
    /// range.
    pub fn solve_sparse_into(
        &self,
        b: &[(usize, f64)],
        ws: &mut SparseSolveWorkspace,
        out: &mut Vec<f64>,
    ) -> Result<(), LinalgError> {
        with_vals!(self, va => self.solve_sparse_into_vals(va, b, ws, out))
    }

    /// Precision-generic body of [`SparseLu::solve_sparse_into`].
    fn solve_sparse_into_vals<S: LuScalar>(
        &self,
        va: &ValueArrays<S>,
        b: &[(usize, f64)],
        ws: &mut SparseSolveWorkspace,
        out: &mut Vec<f64>,
    ) -> Result<(), LinalgError> {
        let sym = &self.sym;
        let n = sym.n;
        if sym.block_count() > 1 {
            return self.solve_sparse_multiblock(va, b, ws, out);
        }
        self.forward_sparse_phase(va, b, ws)?;
        let l_mark = ws.epoch; // visited in the L phase
        let u_mark = ws.epoch + 1; // explored in the U phase

        // Symbolic backward pattern: extend the forward reach through U
        // (edges step -> earlier steps per off-diagonal U entry).
        ws.ureach.extend_from_slice(&ws.lreach);
        for i in 0..ws.lreach.len() {
            let seed = ws.lreach[i];
            if ws.mark[seed] >= u_mark {
                continue;
            }
            ws.mark[seed] = u_mark;
            ws.stack.push(seed);
            while let Some(t) = ws.stack.pop() {
                for idx in sym.u_ptr[t]..sym.u_ptr[t + 1] - 1 {
                    let s = sym.u_rows[idx];
                    if ws.mark[s] < l_mark {
                        // Newly reached: join the pattern with value 0.
                        ws.xs[s] = 0.0;
                        ws.ureach.push(s);
                    }
                    if ws.mark[s] < u_mark {
                        ws.mark[s] = u_mark;
                        ws.stack.push(s);
                    }
                }
            }
        }
        // Descending step order: topological for U, identical to the dense
        // backward substitution's visit order.
        ws.ureach.sort_unstable_by(|a, b| b.cmp(a));

        // Numeric backward solve over the combined reach.
        for &t in &ws.ureach {
            let (lo, hi) = (sym.u_ptr[t], sym.u_ptr[t + 1]);
            let yk = ws.xs[t] / va.u[hi - 1].to_f64();
            ws.xs[t] = yk;
            if yk != 0.0 {
                for idx in lo..hi - 1 {
                    ws.xs[sym.u_rows[idx]] -= yk * va.u[idx].to_f64();
                }
            }
        }

        // Scatter through the column permutation: x[q[t]] = y[t].
        out.clear();
        out.resize(n, 0.0);
        for &t in &ws.ureach {
            let dst = sym.q[t];
            out[dst] = ws.xs[t];
            ws.pattern.push(dst);
        }
        Ok(())
    }

    /// The multi-block sparse solve: blocks are visited in descending
    /// order starting from the blocks holding `b`'s pivot steps. Each
    /// visited block runs the in-block reach-based forward/backward
    /// substitution, then fires its raw cross-block `A_off` entries into
    /// earlier blocks, seeding them for a later visit — the seed queue in
    /// `ws.seeds` plays the role of the dense path's pending right-hand
    /// side. Every update lands in the same order as
    /// [`SparseLu::solve_into`] (block descending, step ascending, entry
    /// ascending), so the result is bit-identical on the reach and
    /// exactly zero off it.
    ///
    /// A block whose L reach grows past `span / DENSIFY_DIVISOR` is
    /// finished with dense span scans instead: on a near-irreducible
    /// block the solution is structurally dense (the rmat substrate's
    /// dominant SCC reaches ~99% of its steps from a single diode pair),
    /// and the reach sorts plus the U-closure DFS then cost more than
    /// the zero-entry scans they avoid. The `!= 0.0` guards make the
    /// dense scans perform exactly the updates the dense path performs,
    /// so the bail-out never changes a bit of the result — only which
    /// bookkeeping computes it.
    fn solve_sparse_multiblock<S: LuScalar>(
        &self,
        va: &ValueArrays<S>,
        b: &[(usize, f64)],
        ws: &mut SparseSolveWorkspace,
        out: &mut Vec<f64>,
    ) -> Result<(), LinalgError> {
        let sym = &self.sym;
        let n = sym.n;
        for &(r, _) in b {
            if r >= n {
                return Err(LinalgError::DimensionMismatch {
                    expected: n,
                    found: r + 1,
                });
            }
        }
        ws.reset(n);
        // One mark pair serves every block: block step ranges are
        // disjoint, so a step is claimed by at most one block visit.
        let l_mark = ws.epoch;
        let u_mark = ws.epoch + 1;
        let ex = sym.extras();
        let l_steps = &ex.l_steps;

        // Seed the pivot steps of b's rows; values accumulate in input
        // order, exactly as the dense path reads `P b`.
        for &(r, v) in b {
            let s = sym.pinv[r];
            if ws.mark[s] < l_mark {
                ws.mark[s] = l_mark;
                ws.xs[s] = 0.0;
                ws.seeds.push(s);
            }
            ws.xs[s] += v;
        }

        out.clear();
        out.resize(n, 0.0);

        while !ws.seeds.is_empty() {
            // The block holding the largest pending seed; off edges only
            // target strictly earlier blocks, so blocks are visited in
            // strictly descending order, each at most once.
            ws.seeds.sort_unstable_by(|a, b| b.cmp(a));
            let t = sym.block_ptr.partition_point(|&p| p <= ws.seeds[0]) - 1;
            let block_lo = sym.block_ptr[t];
            let block_hi = sym.block_ptr[t + 1];
            let span = block_hi - block_lo;
            let cut = ws.seeds.partition_point(|&s| s >= block_lo);
            ws.lreach.clear();
            ws.lreach.extend(ws.seeds.drain(..cut));

            // Symbolic L reach (worklist scan; L never leaves the
            // block), abandoned the moment it covers a
            // `DENSIFY_DIVISOR`-th of the block.
            let mut dense = ws.lreach.len() * DENSIFY_DIVISOR >= span;
            let mut i = 0;
            while !dense && i < ws.lreach.len() {
                let s = ws.lreach[i];
                i += 1;
                for &t2 in &l_steps[sym.l_ptr[s]..sym.l_ptr[s + 1]] {
                    if ws.mark[t2] < l_mark {
                        ws.mark[t2] = l_mark;
                        ws.xs[t2] = 0.0;
                        ws.lreach.push(t2);
                    }
                }
                dense = ws.lreach.len() * DENSIFY_DIVISOR >= span;
            }

            let mut forward_done = false;
            if !dense {
                // Ascending step order matches the dense forward order.
                ws.lreach.sort_unstable();
                for &s in &ws.lreach {
                    let zk = ws.xs[s];
                    if zk != 0.0 {
                        let (lo, hi) = (sym.l_ptr[s], sym.l_ptr[s + 1]);
                        for (&t2, &lv) in l_steps[lo..hi].iter().zip(&va.l[lo..hi]) {
                            ws.xs[t2] -= zk * lv.to_f64();
                        }
                    }
                }
                forward_done = true;

                // Backward pattern: extend through U (in-block by
                // construction — cross-block entries live in `A_off`).
                // On a near-irreducible block this closure is where the
                // pattern goes structurally dense (a tiny forward reach
                // still back-propagates through almost every step), so
                // the same bail-out applies: stop exploring the moment
                // the pattern covers a `DENSIFY_DIVISOR`-th of the span.
                // Abandoning mid-DFS is safe — every value computed so
                // far is exact and the padding below supplies the zeros.
                ws.ureach.clear();
                ws.ureach.extend_from_slice(&ws.lreach);
                let mut i = 0;
                'closure: while i < ws.lreach.len() {
                    let seed = ws.lreach[i];
                    i += 1;
                    if ws.mark[seed] >= u_mark {
                        continue;
                    }
                    ws.mark[seed] = u_mark;
                    ws.stack.push(seed);
                    while let Some(t2) = ws.stack.pop() {
                        for idx in sym.u_ptr[t2]..sym.u_ptr[t2 + 1] - 1 {
                            let s2 = sym.u_rows[idx];
                            if ws.mark[s2] < l_mark {
                                ws.xs[s2] = 0.0;
                                ws.ureach.push(s2);
                            }
                            if ws.mark[s2] < u_mark {
                                ws.mark[s2] = u_mark;
                                ws.stack.push(s2);
                            }
                        }
                        if ws.ureach.len() * DENSIFY_DIVISOR >= span {
                            dense = true;
                            ws.stack.clear();
                            break 'closure;
                        }
                    }
                }
            }

            if dense {
                // Pad the span so the scans below execute precisely the
                // updates the dense path would (the guards skip the
                // padding). Marks are left stale on purpose — a block is
                // visited at most once and off entries only target
                // earlier blocks, so nothing reads this span's marks
                // again this solve.
                if forward_done {
                    // Mid-closure bail: the pattern entries hold exact
                    // forward values, everything else in the span is an
                    // exact zero.
                    for s in block_lo..block_hi {
                        if ws.mark[s] < l_mark {
                            ws.xs[s] = 0.0;
                        }
                    }
                } else {
                    // L-phase bail: the live entries are the few seeds
                    // and expansion steps in `lreach` — save them, clear
                    // the span wholesale (a streaming fill beats a
                    // mark-guarded scan), re-scatter, and run the dense
                    // forward scan.
                    ws.scratch.clear();
                    ws.scratch.extend(ws.lreach.iter().map(|&s| (s, ws.xs[s])));
                    ws.xs[block_lo..block_hi].fill(0.0);
                    for &(s, v) in &ws.scratch {
                        ws.xs[s] = v;
                    }
                    for s in block_lo..block_hi {
                        let zk = ws.xs[s];
                        if zk != 0.0 {
                            let (lo, hi) = (sym.l_ptr[s], sym.l_ptr[s + 1]);
                            for (&t2, &lv) in l_steps[lo..hi].iter().zip(&va.l[lo..hi]) {
                                ws.xs[t2] -= zk * lv.to_f64();
                            }
                        }
                    }
                }
                for s in (block_lo..block_hi).rev() {
                    let (lo, hi) = (sym.u_ptr[s], sym.u_ptr[s + 1]);
                    let yk = ws.xs[s] / va.u[hi - 1].to_f64();
                    ws.xs[s] = yk;
                    if yk != 0.0 {
                        for idx in lo..hi - 1 {
                            ws.xs[sym.u_rows[idx]] -= yk * va.u[idx].to_f64();
                        }
                    }
                }
                ws.pattern.extend_from_slice(&sym.q[block_lo..block_hi]);
                for s in block_lo..block_hi {
                    let yk = ws.xs[s];
                    out[sym.q[s]] = yk;
                    if yk != 0.0 {
                        for idx in sym.off_ptr[s]..sym.off_ptr[s + 1] {
                            let s2 = sym.pinv[sym.off_rows[idx]];
                            if ws.mark[s2] < l_mark {
                                ws.mark[s2] = l_mark;
                                ws.xs[s2] = 0.0;
                                ws.seeds.push(s2);
                            }
                            ws.xs[s2] -= va.off[idx].to_f64() * yk;
                        }
                    }
                }
                continue;
            }
            ws.ureach.sort_unstable_by(|a, b| b.cmp(a));

            // Numeric backward solve over the block's combined reach.
            for &s in &ws.ureach {
                let (lo, hi) = (sym.u_ptr[s], sym.u_ptr[s + 1]);
                let yk = ws.xs[s] / va.u[hi - 1].to_f64();
                ws.xs[s] = yk;
                if yk != 0.0 {
                    for idx in lo..hi - 1 {
                        ws.xs[sym.u_rows[idx]] -= yk * va.u[idx].to_f64();
                    }
                }
            }

            // Emit the block's solution, then fire the cross-block
            // entries in ascending step order (the dense scatter order),
            // seeding the earlier blocks they land in.
            for &s in ws.ureach.iter().rev() {
                let dst = sym.q[s];
                out[dst] = ws.xs[s];
                ws.pattern.push(dst);
                let yk = ws.xs[s];
                if yk != 0.0 {
                    for idx in sym.off_ptr[s]..sym.off_ptr[s + 1] {
                        let s2 = sym.pinv[sym.off_rows[idx]];
                        if ws.mark[s2] < l_mark {
                            ws.mark[s2] = l_mark;
                            ws.xs[s2] = 0.0;
                            ws.seeds.push(s2);
                        }
                        ws.xs[s2] -= va.off[idx].to_f64() * yk;
                    }
                }
            }
        }
        Ok(())
    }

    /// Solves `A x = b`, then applies iterative refinement using the
    /// original matrix `a` to reduce the residual: one step under an
    /// [`Precision::F64`] factor (the historical post-solve polish), up to
    /// six under [`Precision::F32Refined`] — a single step is not enough to
    /// buy back the digits a narrow factor lacks on ill-conditioned
    /// systems, so the loop runs until the residual hits the f64 noise
    /// floor or stops shrinking.
    ///
    /// # Errors
    ///
    /// Same as [`SparseLu::solve`].
    pub fn solve_refined(&self, a: &CscMatrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let mut ws = LuWorkspace::new();
        let mut x = Vec::new();
        self.solve_refined_with(a, b, &mut ws, &mut x)?;
        Ok(x)
    }

    /// [`SparseLu::solve_refined`] into caller-provided buffers: the
    /// residual and correction scratch live in `ws` (pooled across calls)
    /// and `out` receives the refined solution, so refined hot-loop solves
    /// stay allocation-free.
    ///
    /// # Errors
    ///
    /// Same as [`SparseLu::solve`].
    pub fn solve_refined_with(
        &self,
        a: &CscMatrix,
        b: &[f64],
        ws: &mut LuWorkspace,
        out: &mut Vec<f64>,
    ) -> Result<(), LinalgError> {
        self.solve_into(b, &mut ws.rwork, out)?;
        let max_steps = match self.sym.precision() {
            Precision::F64 => 1,
            Precision::F32Refined => 6,
        };
        let bnorm = crate::vecops::norm_inf(b);
        let mut prev = f64::INFINITY;
        for step in 0..max_steps {
            a.mul_vec_into(out, &mut ws.resid);
            for (ri, bi) in ws.resid.iter_mut().zip(b) {
                *ri = bi - *ri;
            }
            let rnorm = crate::vecops::norm_inf(&ws.resid);
            if step > 0 && (rnorm <= f64::EPSILON * (1.0 + bnorm) || rnorm >= 0.5 * prev) {
                break;
            }
            prev = rnorm;
            // Swap the residual in as the RHS of the correction solve: the
            // borrow rules forbid solving from `ws.resid` into `ws.corr`
            // while both live in `ws`, and a swap is free.
            let mut resid = std::mem::take(&mut ws.resid);
            let solved = self.solve_into(&resid, &mut ws.rwork, &mut ws.corr);
            resid.clear();
            ws.resid = resid;
            solved?;
            crate::vecops::axpy(1.0, &ws.corr, out);
        }
        Ok(())
    }

    /// System dimension.
    pub fn dim(&self) -> usize {
        self.sym.n
    }

    /// Total stored entries in `L`, `U` and the raw cross-block
    /// off-diagonal values (a fill-in / storage metric comparable across
    /// orderings).
    pub fn factor_nnz(&self) -> usize {
        with_vals!(self, va => va.l.len() + va.u.len() + va.off.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletMatrix;

    fn solve_dense_reference(t: &TripletMatrix, b: &[f64]) -> Vec<f64> {
        use crate::DenseMatrix;
        let csr = t.to_csr();
        let mut d = DenseMatrix::zeros(csr.rows(), csr.cols());
        for r in 0..csr.rows() {
            for (c, v) in csr.row(r) {
                d[(r, c)] += v;
            }
        }
        d.solve(b).expect("reference solve")
    }

    #[test]
    fn diagonal_system() {
        let mut t = TripletMatrix::new(3, 3);
        t.push(0, 0, 2.0);
        t.push(1, 1, 4.0);
        t.push(2, 2, -8.0);
        let lu = SparseLu::factor(&t.to_csc()).unwrap();
        let x = lu.solve(&[2.0, 4.0, 8.0]).unwrap();
        assert_eq!(x, vec![1.0, 1.0, -1.0]);
    }

    #[test]
    fn matches_dense_reference_on_random_systems() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..25 {
            let n = 2 + (trial % 12);
            let mut t = TripletMatrix::new(n, n);
            for i in 0..n {
                t.push(
                    i,
                    i,
                    rng.gen_range(1.0..4.0) * if rng.gen_bool(0.3) { -1.0 } else { 1.0 },
                );
            }
            for _ in 0..(2 * n) {
                let i = rng.gen_range(0..n);
                let j = rng.gen_range(0..n);
                t.push(i, j, rng.gen_range(-1.0..1.0) * 0.4);
            }
            let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let lu = SparseLu::factor(&t.to_csc()).unwrap();
            let x = lu.solve(&b).unwrap();
            let xref = solve_dense_reference(&t, &b);
            for (a, r) in x.iter().zip(&xref) {
                assert!((a - r).abs() < 1e-8, "trial {trial}: {a} vs {r}");
            }
        }
    }

    #[test]
    fn singular_matrix_detected() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(0, 1, 2.0);
        t.push(1, 0, 2.0);
        t.push(1, 1, 4.0);
        assert!(matches!(
            SparseLu::factor(&t.to_csc()),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn structurally_singular_detected() {
        // Empty column.
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 0, 1.0);
        assert!(SparseLu::factor(&t.to_csc()).is_err());
    }

    #[test]
    fn needs_row_pivoting() {
        // Zero diagonal forces off-diagonal pivot.
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 1, 1.0);
        t.push(1, 0, 1.0);
        let lu = SparseLu::factor(&t.to_csc()).unwrap();
        let x = lu.solve(&[3.0, 7.0]).unwrap();
        assert_eq!(x, vec![7.0, 3.0]);
    }

    #[test]
    fn all_orderings_agree() {
        let mut t = TripletMatrix::new(5, 5);
        for i in 0..5 {
            t.push(i, i, 3.0);
        }
        for i in 0..4 {
            t.push(i, i + 1, -1.0);
            t.push(i + 1, i, -1.0);
        }
        let b = [1.0, 2.0, 3.0, 4.0, 5.0];
        let csc = t.to_csc();
        let xref = solve_dense_reference(&t, &b);
        for ord in [
            ColumnOrdering::Natural,
            ColumnOrdering::MinDegree,
            ColumnOrdering::Rcm,
        ] {
            let opts = SparseLuOptions {
                ordering: ord,
                ..Default::default()
            };
            let x = SparseLu::factor_with(&csc, &opts)
                .unwrap()
                .solve(&b)
                .unwrap();
            for (a, r) in x.iter().zip(&xref) {
                assert!((a - r).abs() < 1e-10, "{ord:?}");
            }
        }
    }

    #[test]
    fn refinement_reduces_residual() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(0, 1, 1.0);
        t.push(1, 0, 1.0);
        t.push(1, 1, 1.0000001);
        let csc = t.to_csc();
        let lu = SparseLu::factor(&csc).unwrap();
        let b = [2.0, 2.0000001];
        let x = lu.solve_refined(&csc, &b).unwrap();
        let ax = csc.mul_vec(&x);
        assert!((ax[0] - b[0]).abs() < 1e-9 && (ax[1] - b[1]).abs() < 1e-9);
    }

    #[test]
    fn large_grid_system() {
        // 2-D resistor-grid Laplacian + identity: well-conditioned, sparse.
        let side = 20;
        let n = side * side;
        let mut t = TripletMatrix::new(n, n);
        let id = |r: usize, c: usize| r * side + c;
        for r in 0..side {
            for c in 0..side {
                let me = id(r, c);
                let mut deg = 1.0; // +1 keeps it nonsingular
                let mut nbrs = Vec::new();
                if r > 0 {
                    nbrs.push(id(r - 1, c));
                }
                if r + 1 < side {
                    nbrs.push(id(r + 1, c));
                }
                if c > 0 {
                    nbrs.push(id(r, c - 1));
                }
                if c + 1 < side {
                    nbrs.push(id(r, c + 1));
                }
                for &nb in &nbrs {
                    t.push(me, nb, -1.0);
                    deg += 1.0;
                }
                t.push(me, me, deg);
            }
        }
        let csc = t.to_csc();
        let b = vec![1.0; n];
        let lu = SparseLu::factor(&csc).unwrap();
        let x = lu.solve(&b).unwrap();
        let ax = csc.mul_vec(&x);
        for (ai, bi) in ax.iter().zip(&b) {
            assert!((ai - bi).abs() < 1e-9);
        }
        // Fill-in should stay modest relative to the dense n^2.
        assert!(lu.factor_nnz() < n * n / 4);
    }

    #[test]
    fn refactor_matches_fresh_factorization() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..20 {
            let n = 3 + (trial % 10);
            // Fixed pattern, two value assignments.
            let mut pos: Vec<(usize, usize)> = (0..n).map(|i| (i, i)).collect();
            for _ in 0..(2 * n) {
                pos.push((rng.gen_range(0..n), rng.gen_range(0..n)));
            }
            let fill = |rng: &mut StdRng| {
                let mut t = TripletMatrix::new(n, n);
                for (k, &(i, j)) in pos.iter().enumerate() {
                    let v = if k < n {
                        rng.gen_range(2.0..5.0) * if rng.gen_bool(0.3) { -1.0 } else { 1.0 }
                    } else {
                        rng.gen_range(-0.5..0.5)
                    };
                    t.push(i, j, v);
                }
                t
            };
            let a1 = fill(&mut rng).to_csc();
            let a2 = fill(&mut rng).to_csc();
            let mut lu = SparseLu::factor(&a1).unwrap();
            lu.refactor(&a2).unwrap();
            let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let x = lu.solve(&b).unwrap();
            let ax = a2.mul_vec(&x);
            for (ai, bi) in ax.iter().zip(&b) {
                assert!(
                    (ai - bi).abs() < 1e-8,
                    "trial {trial}: residual {}",
                    ai - bi
                );
            }
        }
    }

    #[test]
    fn symbolic_numeric_matches_fresh_factorization() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let n = 12;
        let mut pos: Vec<(usize, usize)> = (0..n).map(|i| (i, i)).collect();
        for _ in 0..(3 * n) {
            pos.push((rng.gen_range(0..n), rng.gen_range(0..n)));
        }
        let fill = |rng: &mut StdRng| {
            let mut t = TripletMatrix::new(n, n);
            for (k, &(i, j)) in pos.iter().enumerate() {
                let v = if k < n {
                    rng.gen_range(2.0..5.0)
                } else {
                    rng.gen_range(-0.4..0.4)
                };
                t.push(i, j, v);
            }
            t.to_csc()
        };
        let a1 = fill(&mut rng);
        let base = SparseLu::factor(&a1).unwrap();
        let sym = Arc::clone(base.symbolic());
        for _ in 0..5 {
            let a2 = fill(&mut rng);
            let lu = SymbolicLu::numeric(&sym, &a2).unwrap();
            // Sibling factors share the symbolic plan by pointer.
            assert!(Arc::ptr_eq(lu.symbolic(), &sym));
            let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let x = lu.solve(&b).unwrap();
            let x_ref = SparseLu::factor(&a2).unwrap().solve(&b).unwrap();
            for (a, r) in x.iter().zip(&x_ref) {
                assert!((a - r).abs() < 1e-9, "{a} vs {r}");
            }
        }
    }

    #[test]
    fn refactor_survives_exact_cancellation_in_original_factor() {
        // Elimination of this matrix cancels a fill entry to exactly 0.0.
        // The stored structure must still contain that position, or a
        // refactorization with different values silently skips the update
        // path through it and yields a wrong (but non-erroring) factor.
        let entries = [
            (0, 0, 3.0),
            (0, 3, -1.0),
            (1, 1, 3.0),
            (1, 3, 1.0),
            (2, 0, -1.0),
            (2, 1, -1.0),
            (2, 2, 2.0),
            (3, 3, 3.0),
        ];
        let fill = |scale: &dyn Fn(usize) -> f64| {
            let mut t = TripletMatrix::new(4, 4);
            for (i, &(r, c, v)) in entries.iter().enumerate() {
                t.push(r, c, v * scale(i));
            }
            t.to_csc()
        };
        let a1 = fill(&|_| 1.0);
        // Perturb every entry differently so any skipped update shows up.
        let a2 = fill(&|i| 1.0 + 0.1 * (i as f64 + 1.0));
        for ordering in [
            ColumnOrdering::Natural,
            ColumnOrdering::MinDegree,
            ColumnOrdering::Rcm,
        ] {
            let opts = SparseLuOptions {
                ordering,
                ..Default::default()
            };
            let mut lu = SparseLu::factor_with(&a1, &opts).unwrap();
            lu.refactor(&a2).unwrap();
            let b = [1.0, -2.0, 3.0, -4.0];
            let x = lu.solve(&b).unwrap();
            let x_ref = SparseLu::factor_with(&a2, &opts)
                .unwrap()
                .solve(&b)
                .unwrap();
            for (a, r) in x.iter().zip(&x_ref) {
                assert!((a - r).abs() < 1e-12, "{ordering:?}: {a} vs {r}");
            }
        }
    }

    #[test]
    fn refactor_rejects_new_pattern() {
        let mut t = TripletMatrix::new(3, 3);
        t.push(0, 0, 2.0);
        t.push(1, 1, 3.0);
        t.push(2, 2, 4.0);
        let mut lu = SparseLu::factor(&t.to_csc()).unwrap();
        t.push(0, 2, 1.0); // outside the factorized pattern
        assert!(matches!(
            lu.refactor(&t.to_csc()),
            Err(LinalgError::PatternChanged { .. })
        ));
    }

    #[test]
    fn refactor_subset_pattern_is_allowed() {
        // Dropping an entry (structural zero) keeps the factorization valid.
        let mut t = TripletMatrix::new(3, 3);
        t.push(0, 0, 2.0);
        t.push(1, 1, 3.0);
        t.push(2, 2, 4.0);
        t.push(0, 2, 1.0);
        t.push(2, 0, 0.5);
        let csc = t.to_csc();
        let mut lu = SparseLu::factor(&csc).unwrap();
        let mut t2 = TripletMatrix::new(3, 3);
        t2.push(0, 0, 5.0);
        t2.push(1, 1, 6.0);
        t2.push(2, 2, 7.0);
        let csc2 = t2.to_csc();
        lu.refactor(&csc2).unwrap();
        let x = lu.solve(&[5.0, 12.0, 21.0]).unwrap();
        for (xi, e) in x.iter().zip(&[1.0, 2.0, 3.0]) {
            assert!((xi - e).abs() < 1e-12);
        }
    }

    #[test]
    fn refactor_detects_collapsed_pivot() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 1, 1.0);
        let mut lu = SparseLu::factor(&t.to_csc()).unwrap();
        let mut t2 = TripletMatrix::new(2, 2);
        t2.push(0, 0, 0.0);
        t2.push(1, 1, 1.0);
        assert!(matches!(
            lu.refactor(&t2.to_csc()),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn refactor_with_reuses_workspace() {
        let mut t = TripletMatrix::new(3, 3);
        t.push(0, 0, 2.0);
        t.push(1, 1, 3.0);
        t.push(2, 2, 4.0);
        t.push(0, 2, 1.0);
        let csc = t.to_csc();
        let mut lu = SparseLu::factor(&csc).unwrap();
        let mut ws = LuWorkspace::new();
        for scale in [1.5, 2.0, 3.0] {
            let mut t2 = TripletMatrix::new(3, 3);
            t2.push(0, 0, 2.0 * scale);
            t2.push(1, 1, 3.0 * scale);
            t2.push(2, 2, 4.0 * scale);
            t2.push(0, 2, scale);
            let a = t2.to_csc();
            lu.refactor_with(&a, &mut ws).unwrap();
            let x = lu.solve(&[2.0 * scale, 3.0 * scale, 4.0 * scale]).unwrap();
            let ax = a.mul_vec(&x);
            for (ai, bi) in ax.iter().zip(&[2.0 * scale, 3.0 * scale, 4.0 * scale]) {
                assert!((ai - bi).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn solve_into_reuses_buffers() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 2.0);
        t.push(1, 1, 4.0);
        let lu = SparseLu::factor(&t.to_csc()).unwrap();
        let (mut work, mut out) = (Vec::new(), Vec::new());
        lu.solve_into(&[2.0, 4.0], &mut work, &mut out).unwrap();
        assert_eq!(out, vec![1.0, 1.0]);
        lu.solve_into(&[4.0, 8.0], &mut work, &mut out).unwrap();
        assert_eq!(out, vec![2.0, 2.0]);
    }

    fn grid_laplacian(side: usize) -> TripletMatrix {
        let n = side * side;
        let mut t = TripletMatrix::new(n, n);
        let id = |r: usize, c: usize| r * side + c;
        for r in 0..side {
            for c in 0..side {
                let me = id(r, c);
                let mut deg = 1.0;
                for (nr, nc) in [
                    (r.wrapping_sub(1), c),
                    (r + 1, c),
                    (r, c.wrapping_sub(1)),
                    (r, c + 1),
                ] {
                    if nr < side && nc < side {
                        t.push(me, id(nr, nc), -1.0);
                        deg += 1.0;
                    }
                }
                t.push(me, me, deg);
            }
        }
        t
    }

    #[test]
    fn sort_paired_matches_insertion_oracle() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(13);
        let mut perm = Vec::new();
        for len in [0usize, 1, 2, 3, 7, 30, 200] {
            // Distinct keys, as in a U column segment.
            let mut keys: Vec<usize> = (0..len).map(|i| i * 3 + 1).collect();
            for i in (1..len).rev() {
                let j = rng.gen_range(0..=i);
                keys.swap(i, j);
            }
            let vals: Vec<f64> = (0..len).map(|_| rng.gen_range(-5.0..5.0)).collect();
            let (mut k1, mut v1) = (keys.clone(), vals.clone());
            let (mut k2, mut v2) = (keys, vals);
            sort_paired(&mut k1, &mut v1, &mut perm);
            sort_paired_insertion(&mut k2, &mut v2);
            assert_eq!(k1, k2, "len {len}");
            assert_eq!(v1, v2, "len {len}");
        }
    }

    #[test]
    fn etree_and_level_schedule_are_consistent() {
        let lu = SparseLu::factor(&grid_laplacian(9).to_csc()).unwrap();
        let sym = lu.symbolic();
        let n = sym.dim();
        // Levels partition the steps, dependencies live in strictly lower
        // levels, and the etree parent is a dependent of its child.
        let mut level_of = vec![usize::MAX; n];
        let mut seen = 0usize;
        for l in 0..sym.level_count() {
            for &k in sym.level_steps(l) {
                assert_eq!(level_of[k], usize::MAX, "step {k} scheduled twice");
                level_of[k] = l;
                seen += 1;
            }
        }
        assert_eq!(seen, n);
        let mut roots = 0usize;
        for s in 0..n {
            match sym.etree_parent(s) {
                Some(p) => {
                    assert!(p > s, "parent {p} not after child {s}");
                    assert!(level_of[p] > level_of[s], "parent not deeper");
                }
                None => roots += 1,
            }
        }
        assert!(roots >= 1, "the last step is always a root");
        // A grid has plenty of independent leaf columns: real parallelism.
        assert!(sym.level_steps(0).len() > 4);
        assert!(sym.level_count() > 1);
    }

    #[test]
    fn parallel_refactor_matches_serial_bitwise() {
        let side = 12;
        let a1 = grid_laplacian(side).to_csc();
        // Same pattern, shifted values.
        let mut t2 = grid_laplacian(side);
        for i in 0..side * side {
            t2.push(i, i, 0.25 + (i % 7) as f64 * 0.125);
        }
        let a2 = t2.to_csc();
        let base = SparseLu::factor(&a1).unwrap();
        let mut ws = LuWorkspace::new();
        let b: Vec<f64> = (0..a1.cols()).map(|i| (i as f64 * 0.13).sin()).collect();
        let mut serial = base.clone();
        serial
            .refactor_with_strategy(&a2, &mut ws, RefactorStrategy::Serial)
            .unwrap();
        let x_serial = serial.solve(&b).unwrap();
        for threads in [2usize, 3, 5] {
            let mut par = base.clone();
            par.refactor_with_strategy(&a2, &mut ws, RefactorStrategy::Parallel { threads })
                .unwrap();
            let x_par = par.solve(&b).unwrap();
            // Identical per-column arithmetic => bit-identical factors.
            assert_eq!(x_par, x_serial, "threads {threads}");
        }
    }

    /// The aliasing argument behind `unsafe impl Sync for FactorValuePtrs`:
    /// two OS threads refactor *sibling* numeric factors over one shared
    /// `Arc<SymbolicLu>`, each internally level-parallel — so two worker
    /// pools traverse the same symbolic arrays while writing disjoint
    /// value arrays through raw pointers, concurrently. Under
    /// Miri-visible aliasing (a write crossing factor boundaries, or a
    /// read of another thread's in-progress level) the bit-exact match
    /// against the serial oracle would fail.
    #[test]
    fn concurrent_sibling_refactors_share_one_symbolic_plan() {
        let side = 12;
        let a1 = grid_laplacian(side).to_csc();
        let base = SparseLu::factor(&a1).unwrap();
        let shifted = |bump: f64| {
            let mut t = grid_laplacian(side);
            for i in 0..side * side {
                t.push(i, i, bump + (i % 5) as f64 * 0.0625);
            }
            t.to_csc()
        };
        let mats: Vec<CscMatrix> = vec![shifted(0.25), shifted(0.75)];
        let b: Vec<f64> = (0..a1.cols()).map(|i| (i as f64 * 0.29).cos()).collect();

        // Serial oracles, one per value set.
        let oracles: Vec<Vec<f64>> = mats
            .iter()
            .map(|a| {
                let mut lu = base.clone();
                let mut ws = LuWorkspace::new();
                lu.refactor_with_strategy(a, &mut ws, RefactorStrategy::Serial)
                    .unwrap();
                lu.solve(&b).unwrap()
            })
            .collect();

        let results: Vec<Vec<f64>> = std::thread::scope(|scope| {
            let handles: Vec<_> = mats
                .iter()
                .map(|a| {
                    let mut lu = base.clone();
                    let b = &b;
                    scope.spawn(move || {
                        let mut ws = LuWorkspace::new();
                        lu.refactor_with_strategy(
                            a,
                            &mut ws,
                            RefactorStrategy::Parallel { threads: 2 },
                        )
                        .unwrap();
                        lu.audit().unwrap();
                        lu.solve(b).unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(results, oracles);
    }

    #[test]
    fn parallel_refactor_detects_collapsed_pivot() {
        let side = 8;
        let a1 = grid_laplacian(side).to_csc();
        let base = SparseLu::factor(&a1).unwrap();
        // Scale everything to zero: every frozen pivot collapses.
        let mut t2 = TripletMatrix::new(a1.rows(), a1.cols());
        for c in 0..a1.cols() {
            for (r, _) in a1.col(c) {
                t2.push(r, c, 0.0);
            }
        }
        let a2 = t2.to_csc();
        let mut ws = LuWorkspace::new();
        let mut par = base.clone();
        assert!(matches!(
            par.refactor_with_strategy(&a2, &mut ws, RefactorStrategy::Parallel { threads: 3 }),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn parallel_refactor_rejects_new_pattern() {
        let mut t = TripletMatrix::new(600, 600);
        for i in 0..600 {
            t.push(i, i, 2.0 + i as f64 * 1e-3);
        }
        for i in 0..599 {
            t.push(i, i + 1, -0.5);
            t.push(i + 1, i, -0.5);
        }
        let mut lu = SparseLu::factor(&t.to_csc()).unwrap();
        t.push(0, 599, 1.0);
        let mut ws = LuWorkspace::new();
        assert!(matches!(
            lu.refactor_with_strategy(
                &t.to_csc(),
                &mut ws,
                RefactorStrategy::Parallel { threads: 4 }
            ),
            Err(LinalgError::PatternChanged { .. })
        ));
    }

    #[test]
    fn solve_sparse_matches_dense_solve_exactly() {
        let side = 10;
        let n = side * side;
        let csc = grid_laplacian(side).to_csc();
        let lu = SparseLu::factor(&csc).unwrap();
        let mut ws = SparseSolveWorkspace::new();
        let (mut work, mut dense_out, mut sparse_out) = (Vec::new(), Vec::new(), Vec::new());
        let patterns: Vec<Vec<(usize, f64)>> = vec![
            vec![],                                                 // empty RHS -> zero solution
            vec![(3, 1.0)],                                         // single unit impulse
            vec![(n - 1, -2.5), (7, 0.75)],                         // the rank-1 widget shape
            vec![(5, 1.0), (5, 2.0)],                               // duplicates accumulate
            (0..n).map(|i| (i, (i as f64 * 0.31).cos())).collect(), // full
        ];
        for (pi, pat) in patterns.iter().enumerate() {
            let mut b = vec![0.0; n];
            for &(i, v) in pat {
                b[i] += v;
            }
            lu.solve_into(&b, &mut work, &mut dense_out).unwrap();
            lu.solve_sparse_into(pat, &mut ws, &mut sparse_out).unwrap();
            assert_eq!(sparse_out.len(), n);
            for i in 0..n {
                assert!(
                    sparse_out[i] == dense_out[i],
                    "pattern {pi}, unknown {i}: {} vs {}",
                    sparse_out[i],
                    dense_out[i]
                );
            }
            // Everything off the reported pattern is exactly zero.
            let mut on = vec![false; n];
            for &i in ws.pattern() {
                on[i] = true;
            }
            for i in 0..n {
                if !on[i] {
                    assert_eq!(sparse_out[i], 0.0, "pattern {pi}");
                }
            }
        }
    }

    #[test]
    fn forward_half_solve_reach_is_small_for_local_rhs() {
        // The *full* solution of an irreducible system is structurally
        // dense, but the forward half ŵ = L⁻¹Pb — the quantity the
        // Woodbury path stores per rank-1 term — must stay local.
        let side = 40;
        let n = side * side;
        let lu = SparseLu::factor(&grid_laplacian(side).to_csc()).unwrap();
        let mut ws = SparseSolveWorkspace::new();
        let mut w = Vec::new();
        let mut worst = 0usize;
        for seed in [0usize, n / 2, n - 1] {
            lu.forward_sparse_into(&[(seed, 1.0), ((seed + 41) % n, -1.0)], &mut ws, &mut w)
                .unwrap();
            worst = worst.max(w.len());
        }
        assert!(worst < n / 2, "forward reach {worst} of {n} is not sparse");
    }

    #[test]
    fn partial_solves_compose_to_the_full_solve() {
        // ĝ·ŵ must equal vᵀA⁻¹u, and Q U⁻¹ ŵ must equal A⁻¹u — the two
        // identities the Woodbury path is built on.
        let side = 9;
        let n = side * side;
        let csc = grid_laplacian(side).to_csc();
        let lu = SparseLu::factor(&csc).unwrap();
        let mut ws = SparseSolveWorkspace::new();
        let u = [(5usize, 2.0), (47usize, -2.0)];
        let v = [(5usize, 1.0), (47usize, -1.0)];
        let (mut w, mut g) = (Vec::new(), Vec::new());
        lu.forward_sparse_into(&u, &mut ws, &mut w).unwrap();
        lu.transposed_backward_sparse_into(&v, &mut ws, &mut g)
            .unwrap();

        let mut u_dense = vec![0.0; n];
        for &(i, val) in &u {
            u_dense[i] += val;
        }
        let z = lu.solve(&u_dense).unwrap();
        let direct: f64 = v.iter().map(|&(i, val)| val * z[i]).sum();
        let dot = {
            let (mut i, mut j, mut acc) = (0usize, 0usize, 0.0);
            while i < g.len() && j < w.len() {
                match g[i].0.cmp(&w[j].0) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        acc += g[i].1 * w[j].1;
                        i += 1;
                        j += 1;
                    }
                }
            }
            acc
        };
        assert!(
            (dot - direct).abs() < 1e-9 * direct.abs().max(1.0),
            "{dot} vs {direct}"
        );

        // Completion half: Q U⁻¹ ŵ recovers A⁻¹u exactly as the push
        // path materializes it.
        let (mut work, mut out) = (Vec::new(), Vec::new());
        lu.backward_dense_from_steps(&w, &mut work, &mut out)
            .unwrap();
        for i in 0..n {
            assert!(
                (out[i] - z[i]).abs() < 1e-10,
                "unknown {i}: {} vs {}",
                out[i],
                z[i]
            );
        }
    }

    #[test]
    fn solve_sparse_rejects_out_of_range_index() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 1, 1.0);
        let lu = SparseLu::factor(&t.to_csc()).unwrap();
        let mut ws = SparseSolveWorkspace::new();
        let mut out = Vec::new();
        assert!(matches!(
            lu.solve_sparse_into(&[(2, 1.0)], &mut ws, &mut out),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn auto_strategy_is_correct_across_the_threshold() {
        // Banded systems just below and above PAR_COL_THRESHOLD: Auto must
        // agree with Serial bit-for-bit wherever it lands.
        for n in [
            SparseLu::PAR_COL_THRESHOLD - 1,
            SparseLu::PAR_COL_THRESHOLD,
            SparseLu::PAR_COL_THRESHOLD + 3,
        ] {
            let band = |scale: f64| {
                let mut t = TripletMatrix::new(n, n);
                for i in 0..n {
                    t.push(i, i, 3.0 + scale * (i % 5) as f64);
                    if i + 1 < n {
                        t.push(i, i + 1, -1.0);
                        t.push(i + 1, i, -0.5 * scale);
                    }
                    if i + 7 < n {
                        t.push(i + 7, i, 0.25);
                    }
                }
                t.to_csc()
            };
            let base = SparseLu::factor(&band(1.0)).unwrap();
            let a2 = band(1.5);
            let mut ws = LuWorkspace::new();
            let mut auto = base.clone();
            auto.refactor_with_strategy(&a2, &mut ws, RefactorStrategy::Auto)
                .unwrap();
            let mut serial = base.clone();
            serial
                .refactor_with_strategy(&a2, &mut ws, RefactorStrategy::Serial)
                .unwrap();
            let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
            assert_eq!(auto.solve(&b).unwrap(), serial.solve(&b).unwrap(), "n {n}");
        }
    }

    #[test]
    fn dimension_mismatch_on_solve() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 1, 1.0);
        let lu = SparseLu::factor(&t.to_csc()).unwrap();
        assert!(matches!(
            lu.solve(&[1.0]),
            Err(LinalgError::DimensionMismatch {
                expected: 2,
                found: 1
            })
        ));
    }

    /// Three coupled 3-cycles: strongly connected components {0,1,2},
    /// {3,4,5}, {6,7,8} with one-way coupling later → earlier, so the BTF
    /// ordering yields three diagonal blocks with nonempty `A_off`.
    /// Values scale with `scale` so refactor tests can reuse the pattern.
    fn three_block_system(scale: f64) -> TripletMatrix {
        let mut t = TripletMatrix::new(9, 9);
        for blk in 0..3usize {
            let base = 3 * blk;
            for i in 0..3 {
                t.push(
                    base + i,
                    base + i,
                    (4.0 + blk as f64 + i as f64 * 0.5) * scale,
                );
                t.push(
                    base + i,
                    base + (i + 1) % 3,
                    (-1.0 - i as f64 * 0.25) * scale,
                );
            }
        }
        // Cross-block entries (rows of earlier SCCs, columns of later).
        t.push(0, 3, 0.7 * scale);
        t.push(1, 4, -0.3 * scale);
        t.push(2, 6, 1.1 * scale);
        t.push(4, 7, 0.9 * scale);
        t.push(5, 8, -0.6 * scale);
        // A duplicate coordinate: off storage must accumulate, not dupe.
        t.push(0, 3, 0.05 * scale);
        t
    }

    #[test]
    fn multiblock_factor_stores_raw_off_values_and_solves() {
        let t = three_block_system(1.0);
        let a = t.to_csc();
        let lu = SparseLu::factor(&a).unwrap();
        let sym = lu.symbolic();
        assert!(sym.block_count() > 1, "expected a multi-block BTF");
        assert!(sym.off_nnz() > 0, "expected cross-block entries");
        // Off entries always target rows pivoted in earlier blocks.
        for s in 0..lu.dim() {
            let t_blk = sym.block_ptr().partition_point(|&p| p <= s) - 1;
            for &r in sym.off_column_rows(s) {
                assert!(
                    sym.pinv[r] < sym.block_ptr()[t_blk],
                    "off row inside own block"
                );
            }
        }
        let b: Vec<f64> = (0..9).map(|i| (i as f64 * 1.3).cos()).collect();
        let x = lu.solve(&b).unwrap();
        let x_ref = solve_dense_reference(&t, &b);
        for (xi, ri) in x.iter().zip(&x_ref) {
            assert!((xi - ri).abs() < 1e-12, "{xi} vs {ri}");
        }
    }

    #[test]
    fn multiblock_sparse_solve_matches_dense_solve_exactly() {
        let t = three_block_system(1.0);
        let a = t.to_csc();
        let lu = SparseLu::factor(&a).unwrap();
        assert!(lu.symbolic().block_count() > 1);
        let mut ws = SparseSolveWorkspace::new();
        let mut sparse_out = Vec::new();
        let (mut work, mut dense_out) = (Vec::new(), Vec::new());
        // Seeds in every block, including duplicates, to exercise the
        // cross-block seed queue.
        let rhs_cases: &[&[(usize, f64)]] = &[
            &[(7, 1.0)],
            &[(0, 2.0)],
            &[(4, -1.5), (8, 0.25)],
            &[(6, 1.0), (6, 0.5), (2, -0.75)],
        ];
        for rhs in rhs_cases {
            lu.solve_sparse_into(rhs, &mut ws, &mut sparse_out).unwrap();
            let mut b = vec![0.0; 9];
            for &(i, v) in rhs.iter() {
                b[i] += v;
            }
            lu.solve_into(&b, &mut work, &mut dense_out).unwrap();
            assert_eq!(sparse_out, dense_out, "rhs {rhs:?}");
        }
    }

    #[test]
    fn multiblock_refactor_replays_off_values() {
        let t = three_block_system(1.0);
        let a = t.to_csc();
        let base = SparseLu::factor(&a).unwrap();
        assert!(base.symbolic().block_count() > 1);
        // Same pattern, different values (off entries included).
        let t2 = three_block_system(1.5);
        let a2 = t2.to_csc();
        let mut ws = LuWorkspace::new();
        let mut lu = base.clone();
        lu.refactor_with(&a2, &mut ws).unwrap();
        let b: Vec<f64> = (0..9).map(|i| 1.0 + i as f64).collect();
        let x = lu.solve(&b).unwrap();
        let x_ref = solve_dense_reference(&t2, &b);
        for (xi, ri) in x.iter().zip(&x_ref) {
            assert!((xi - ri).abs() < 1e-12, "{xi} vs {ri}");
        }
        // The parallel replay hits the off scatter from worker scratch;
        // it must agree bitwise with the serial replay.
        let mut lu_par = base.clone();
        lu_par
            .refactor_with_strategy(&a2, &mut ws, RefactorStrategy::Parallel { threads: 3 })
            .unwrap();
        let x_par = lu_par.solve(&b).unwrap();
        assert_eq!(x, x_par);
    }
}
