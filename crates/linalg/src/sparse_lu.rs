//! Left-looking (Gilbert–Peierls) sparse LU with threshold partial pivoting.
//!
//! This is the solver behind every DC operating point and every transient
//! time step of the circuit simulator. It factors `A(:, q) = Pᵀ L U` where
//! `q` is a fill-reducing column ordering and `P` is the row permutation
//! chosen by pivoting. The algorithm follows Gilbert & Peierls (1988): for
//! each column, a depth-first search over the structure of the already
//! computed part of `L` predicts the nonzero pattern, and the numeric
//! update is applied in topological order.

use crate::ordering::{min_degree_ordering, reverse_cuthill_mckee};
use crate::{CscMatrix, LinalgError};

const NO_PIVOT: usize = usize::MAX;

/// Column-ordering strategy for [`SparseLu`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ColumnOrdering {
    /// Factor in natural column order.
    Natural,
    /// Greedy minimum degree on the symmetrized pattern (default).
    #[default]
    MinDegree,
    /// Reverse Cuthill–McKee.
    Rcm,
}

/// Options controlling [`SparseLu::factor_with`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparseLuOptions {
    /// Column ordering strategy.
    pub ordering: ColumnOrdering,
    /// Threshold in `(0, 1]` for diagonal-preferring partial pivoting: the
    /// diagonal entry is accepted as pivot when its magnitude is at least
    /// `pivot_threshold` times the column maximum. `1.0` forces strict
    /// partial pivoting.
    pub pivot_threshold: f64,
    /// Entries with magnitude at or below this are treated as numerically
    /// zero when selecting pivots.
    pub zero_tolerance: f64,
}

impl Default for SparseLuOptions {
    fn default() -> Self {
        SparseLuOptions {
            ordering: ColumnOrdering::MinDegree,
            pivot_threshold: 0.1,
            zero_tolerance: 0.0,
        }
    }
}

/// Sparse LU factorization `A(:, q) = Pᵀ L U`.
///
/// # Example
///
/// ```
/// use ohmflow_linalg::{SparseLu, TripletMatrix};
///
/// # fn main() -> Result<(), ohmflow_linalg::LinalgError> {
/// let mut t = TripletMatrix::new(3, 3);
/// t.push(0, 0, 2.0);
/// t.push(1, 1, -3.0); // indefinite is fine: the substrate has negative resistors
/// t.push(2, 2, 4.0);
/// t.push(0, 2, 1.0);
/// let lu = SparseLu::factor(&t.to_csc())?;
/// let x = lu.solve(&[5.0, -3.0, 4.0])?;
/// assert!((x[1] - 1.0).abs() < 1e-12 && (x[2] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SparseLu {
    n: usize,
    /// Column ordering: column `q[k]` of `A` is eliminated at step `k`.
    q: Vec<usize>,
    /// `row_perm[k]` = original row chosen as pivot at step `k`.
    row_perm: Vec<usize>,
    /// L stored by columns (unit diagonal implicit); row indices are
    /// *original* row ids.
    l_ptr: Vec<usize>,
    l_rows: Vec<usize>,
    l_vals: Vec<f64>,
    /// U stored by columns; row indices are pivot *steps* (`0..k`), the
    /// diagonal (pivot) stored last in each column segment.
    u_ptr: Vec<usize>,
    u_rows: Vec<usize>,
    u_vals: Vec<f64>,
}

impl SparseLu {
    /// Factors `a` with default options.
    ///
    /// # Errors
    ///
    /// [`LinalgError::NotSquare`] if `a` is not square;
    /// [`LinalgError::Singular`] if a column has no usable pivot.
    pub fn factor(a: &CscMatrix) -> Result<Self, LinalgError> {
        Self::factor_with(a, &SparseLuOptions::default())
    }

    /// Factors `a` with explicit [`SparseLuOptions`].
    ///
    /// # Errors
    ///
    /// Same as [`SparseLu::factor`].
    pub fn factor_with(a: &CscMatrix, opts: &SparseLuOptions) -> Result<Self, LinalgError> {
        if a.rows() != a.cols() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.cols();
        let q = match opts.ordering {
            ColumnOrdering::Natural => (0..n).collect(),
            ColumnOrdering::MinDegree => min_degree_ordering(a),
            ColumnOrdering::Rcm => reverse_cuthill_mckee(a),
        };

        let mut pinv = vec![NO_PIVOT; n]; // original row -> pivot step
        let mut row_perm = vec![NO_PIVOT; n]; // pivot step -> original row
        let mut l_ptr = vec![0usize];
        let mut l_rows: Vec<usize> = Vec::with_capacity(4 * a.nnz() + n);
        let mut l_vals: Vec<f64> = Vec::with_capacity(4 * a.nnz() + n);
        let mut u_ptr = vec![0usize];
        let mut u_rows: Vec<usize> = Vec::with_capacity(4 * a.nnz() + n);
        let mut u_vals: Vec<f64> = Vec::with_capacity(4 * a.nnz() + n);

        // Workspaces reused across columns; `stamp` arrays avoid O(n) clears.
        let mut x = vec![0.0f64; n];
        let mut pattern: Vec<usize> = Vec::with_capacity(64);
        let mut row_stamp = vec![usize::MAX; n]; // row in pattern this column?
        let mut step_stamp = vec![usize::MAX; n]; // step visited by DFS this column?
        let mut topo: Vec<usize> = Vec::with_capacity(64); // post-order of pivot steps
        let mut dfs: Vec<(usize, usize)> = Vec::with_capacity(64);

        for k in 0..n {
            let col = q[k];
            pattern.clear();
            topo.clear();

            for (r, v) in a.col(col) {
                if row_stamp[r] != k {
                    row_stamp[r] = k;
                    pattern.push(r);
                    x[r] = v;
                } else {
                    x[r] += v;
                }
                let step = pinv[r];
                if step != NO_PIVOT && step_stamp[step] != k {
                    // DFS over L's structure starting at `step`.
                    step_stamp[step] = k;
                    dfs.push((step, l_ptr[step]));
                    while let Some(&mut (s, ref mut ptr)) = dfs.last_mut() {
                        let hi = l_ptr[s + 1];
                        let mut descended = false;
                        while *ptr < hi {
                            let child_row = l_rows[*ptr];
                            *ptr += 1;
                            if row_stamp[child_row] != k {
                                row_stamp[child_row] = k;
                                pattern.push(child_row);
                                x[child_row] = 0.0;
                            }
                            let child_step = pinv[child_row];
                            if child_step != NO_PIVOT && step_stamp[child_step] != k {
                                step_stamp[child_step] = k;
                                dfs.push((child_step, l_ptr[child_step]));
                                descended = true;
                                break;
                            }
                        }
                        if !descended && {
                            let (s2, p2) = *dfs.last().expect("stack nonempty");
                            p2 >= l_ptr[s2 + 1]
                        } {
                            let (s2, _) = dfs.pop().expect("stack nonempty");
                            topo.push(s2);
                        }
                    }
                }
            }

            // Numeric update in topological order (reverse post-order).
            for &s in topo.iter().rev() {
                let xval = x[row_perm[s]];
                if xval != 0.0 {
                    for idx in l_ptr[s]..l_ptr[s + 1] {
                        x[l_rows[idx]] -= xval * l_vals[idx];
                    }
                }
            }

            // Pivot selection with threshold preference for the diagonal
            // (original row id == col), which keeps MNA factorizations
            // stable without destroying sparsity.
            let mut max_mag = 0.0f64;
            let mut max_row = NO_PIVOT;
            let mut diag_mag = -1.0f64;
            for &r in &pattern {
                if pinv[r] == NO_PIVOT {
                    let mag = x[r].abs();
                    if mag > max_mag {
                        max_mag = mag;
                        max_row = r;
                    }
                    if r == col {
                        diag_mag = mag;
                    }
                }
            }
            if max_row == NO_PIVOT || max_mag <= opts.zero_tolerance {
                for &r in &pattern {
                    x[r] = 0.0;
                }
                return Err(LinalgError::Singular { column: col });
            }
            let pivot_row =
                if diag_mag >= opts.pivot_threshold * max_mag && diag_mag > opts.zero_tolerance {
                    col
                } else {
                    max_row
                };
            let pivot_val = x[pivot_row];
            pinv[pivot_row] = k;
            row_perm[k] = pivot_row;

            // Emit U column (entries at pivotal rows, pivot last) and L
            // column (non-pivotal rows scaled by the pivot).
            for &r in &pattern {
                let step = pinv[r];
                if step != NO_PIVOT && step != k && x[r] != 0.0 {
                    u_rows.push(step);
                    u_vals.push(x[r]);
                }
            }
            u_rows.push(k);
            u_vals.push(pivot_val);
            u_ptr.push(u_rows.len());

            for &r in &pattern {
                if pinv[r] == NO_PIVOT && x[r] != 0.0 {
                    l_rows.push(r);
                    l_vals.push(x[r] / pivot_val);
                }
            }
            l_ptr.push(l_rows.len());

            for &r in &pattern {
                x[r] = 0.0;
            }
        }

        Ok(SparseLu {
            n,
            q,
            row_perm,
            l_ptr,
            l_rows,
            l_vals,
            u_ptr,
            u_rows,
            u_vals,
        })
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] if `b.len()` differs from the
    /// system dimension.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if b.len() != self.n {
            return Err(LinalgError::DimensionMismatch {
                expected: self.n,
                found: b.len(),
            });
        }
        // Forward solve L z = P b; z indexed by pivot step.
        let mut work: Vec<f64> = b.to_vec();
        let mut z = vec![0.0f64; self.n];
        for step in 0..self.n {
            let zk = work[self.row_perm[step]];
            z[step] = zk;
            if zk != 0.0 {
                for idx in self.l_ptr[step]..self.l_ptr[step + 1] {
                    work[self.l_rows[idx]] -= zk * self.l_vals[idx];
                }
            }
        }
        // Backward solve U y = z; U columns hold steps, diagonal last.
        let mut y = z;
        for step in (0..self.n).rev() {
            let (lo, hi) = (self.u_ptr[step], self.u_ptr[step + 1]);
            let yk = y[step] / self.u_vals[hi - 1];
            y[step] = yk;
            if yk != 0.0 {
                for idx in lo..(hi - 1) {
                    y[self.u_rows[idx]] -= yk * self.u_vals[idx];
                }
            }
        }
        // Undo the column permutation: x[q[k]] = y[k].
        let mut xout = vec![0.0f64; self.n];
        for k in 0..self.n {
            xout[self.q[k]] = y[k];
        }
        Ok(xout)
    }

    /// Solves `A x = b`, then applies one step of iterative refinement using
    /// the original matrix `a` to reduce the residual.
    ///
    /// # Errors
    ///
    /// Same as [`SparseLu::solve`].
    pub fn solve_refined(&self, a: &CscMatrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let mut x = self.solve(b)?;
        let ax = a.mul_vec(&x);
        let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, ai)| bi - ai).collect();
        let dx = self.solve(&r)?;
        for (xi, di) in x.iter_mut().zip(&dx) {
            *xi += di;
        }
        Ok(x)
    }

    /// System dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Total stored entries in `L` and `U` (a fill-in metric).
    pub fn factor_nnz(&self) -> usize {
        self.l_vals.len() + self.u_vals.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletMatrix;

    fn solve_dense_reference(t: &TripletMatrix, b: &[f64]) -> Vec<f64> {
        use crate::DenseMatrix;
        let csr = t.to_csr();
        let mut d = DenseMatrix::zeros(csr.rows(), csr.cols());
        for r in 0..csr.rows() {
            for (c, v) in csr.row(r) {
                d[(r, c)] += v;
            }
        }
        d.solve(b).expect("reference solve")
    }

    #[test]
    fn diagonal_system() {
        let mut t = TripletMatrix::new(3, 3);
        t.push(0, 0, 2.0);
        t.push(1, 1, 4.0);
        t.push(2, 2, -8.0);
        let lu = SparseLu::factor(&t.to_csc()).unwrap();
        let x = lu.solve(&[2.0, 4.0, 8.0]).unwrap();
        assert_eq!(x, vec![1.0, 1.0, -1.0]);
    }

    #[test]
    fn matches_dense_reference_on_random_systems() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..25 {
            let n = 2 + (trial % 12);
            let mut t = TripletMatrix::new(n, n);
            for i in 0..n {
                t.push(i, i, rng.gen_range(1.0..4.0) * if rng.gen_bool(0.3) { -1.0 } else { 1.0 });
            }
            for _ in 0..(2 * n) {
                let i = rng.gen_range(0..n);
                let j = rng.gen_range(0..n);
                t.push(i, j, rng.gen_range(-1.0..1.0) * 0.4);
            }
            let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let lu = SparseLu::factor(&t.to_csc()).unwrap();
            let x = lu.solve(&b).unwrap();
            let xref = solve_dense_reference(&t, &b);
            for (a, r) in x.iter().zip(&xref) {
                assert!((a - r).abs() < 1e-8, "trial {trial}: {a} vs {r}");
            }
        }
    }

    #[test]
    fn singular_matrix_detected() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(0, 1, 2.0);
        t.push(1, 0, 2.0);
        t.push(1, 1, 4.0);
        assert!(matches!(
            SparseLu::factor(&t.to_csc()),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn structurally_singular_detected() {
        // Empty column.
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 0, 1.0);
        assert!(SparseLu::factor(&t.to_csc()).is_err());
    }

    #[test]
    fn needs_row_pivoting() {
        // Zero diagonal forces off-diagonal pivot.
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 1, 1.0);
        t.push(1, 0, 1.0);
        let lu = SparseLu::factor(&t.to_csc()).unwrap();
        let x = lu.solve(&[3.0, 7.0]).unwrap();
        assert_eq!(x, vec![7.0, 3.0]);
    }

    #[test]
    fn all_orderings_agree() {
        let mut t = TripletMatrix::new(5, 5);
        for i in 0..5 {
            t.push(i, i, 3.0);
        }
        for i in 0..4 {
            t.push(i, i + 1, -1.0);
            t.push(i + 1, i, -1.0);
        }
        let b = [1.0, 2.0, 3.0, 4.0, 5.0];
        let csc = t.to_csc();
        let xref = solve_dense_reference(&t, &b);
        for ord in [ColumnOrdering::Natural, ColumnOrdering::MinDegree, ColumnOrdering::Rcm] {
            let opts = SparseLuOptions { ordering: ord, ..Default::default() };
            let x = SparseLu::factor_with(&csc, &opts).unwrap().solve(&b).unwrap();
            for (a, r) in x.iter().zip(&xref) {
                assert!((a - r).abs() < 1e-10, "{ord:?}");
            }
        }
    }

    #[test]
    fn refinement_reduces_residual() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(0, 1, 1.0);
        t.push(1, 0, 1.0);
        t.push(1, 1, 1.0000001);
        let csc = t.to_csc();
        let lu = SparseLu::factor(&csc).unwrap();
        let b = [2.0, 2.0000001];
        let x = lu.solve_refined(&csc, &b).unwrap();
        let ax = csc.mul_vec(&x);
        assert!((ax[0] - b[0]).abs() < 1e-9 && (ax[1] - b[1]).abs() < 1e-9);
    }

    #[test]
    fn large_grid_system() {
        // 2-D resistor-grid Laplacian + identity: well-conditioned, sparse.
        let side = 20;
        let n = side * side;
        let mut t = TripletMatrix::new(n, n);
        let id = |r: usize, c: usize| r * side + c;
        for r in 0..side {
            for c in 0..side {
                let me = id(r, c);
                let mut deg = 1.0; // +1 keeps it nonsingular
                let mut nbrs = Vec::new();
                if r > 0 {
                    nbrs.push(id(r - 1, c));
                }
                if r + 1 < side {
                    nbrs.push(id(r + 1, c));
                }
                if c > 0 {
                    nbrs.push(id(r, c - 1));
                }
                if c + 1 < side {
                    nbrs.push(id(r, c + 1));
                }
                for &nb in &nbrs {
                    t.push(me, nb, -1.0);
                    deg += 1.0;
                }
                t.push(me, me, deg);
            }
        }
        let csc = t.to_csc();
        let b = vec![1.0; n];
        let lu = SparseLu::factor(&csc).unwrap();
        let x = lu.solve(&b).unwrap();
        let ax = csc.mul_vec(&x);
        for (ai, bi) in ax.iter().zip(&b) {
            assert!((ai - bi).abs() < 1e-9);
        }
        // Fill-in should stay modest relative to the dense n^2.
        assert!(lu.factor_nnz() < n * n / 4);
    }

    #[test]
    fn dimension_mismatch_on_solve() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 1, 1.0);
        let lu = SparseLu::factor(&t.to_csc()).unwrap();
        assert!(matches!(
            lu.solve(&[1.0]),
            Err(LinalgError::DimensionMismatch { expected: 2, found: 1 })
        ));
    }
}
