use std::fmt;
use std::ops::{Index, IndexMut};

use crate::LinalgError;

/// Numeric scalar of an LU factorization's value arrays: `f64` (the
/// default) or `f32` (the mixed-precision storage behind
/// [`Precision::F32Refined`](crate::Precision)).
///
/// The symbolic plan, all index structures and every public solve
/// interface stay `f64`/`usize`; only the stored factor values and the
/// refactorization arithmetic are generic. Conversions are explicit so the
/// `f64` instantiation compiles to the identity and the hot kernels keep
/// their exact historical arithmetic.
pub trait LuScalar:
    Copy
    + PartialEq
    + Send
    + Sync
    + std::fmt::Debug
    + std::ops::Add<Output = Self>
    + std::ops::Sub<Output = Self>
    + std::ops::Mul<Output = Self>
    + std::ops::Div<Output = Self>
    + std::ops::AddAssign
    + std::ops::SubAssign
    + 'static
{
    /// The additive identity.
    const ZERO: Self;
    /// Rounds an `f64` into this scalar (identity for `f64`).
    fn from_f64(v: f64) -> Self;
    /// Widens this scalar to `f64` (identity for `f64`).
    fn to_f64(self) -> f64;
}

impl LuScalar for f64 {
    const ZERO: Self = 0.0;
    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }
}

impl LuScalar for f32 {
    const ZERO: Self = 0.0;
    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }
}

/// Width of the unrolled accumulator lanes of the dense micro-kernels:
/// four independent partial sums per stream, which is what LLVM needs to
/// autovectorize a reduction (a single serial accumulator carries a
/// loop-carried dependence it must preserve).
const LANES: usize = 4;

/// Lane-accumulated dot product `a · b` over `min` common length — the
/// register-blocked inner loop of the supernodal panel update. Fixed-size
/// `LANES`-wide chunks with independent accumulators; the remainder is
/// folded in serially.
#[inline]
pub(crate) fn dot_lanes<S: LuScalar>(a: &[S], b: &[S]) -> S {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [S::ZERO; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for l in 0..LANES {
            acc[l] += xa[l] * xb[l];
        }
    }
    let mut s = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        s += *x * *y;
    }
    s
}

/// Rank-`k` supernode panel update (the gemm-style kernel of the blocked
/// numeric replay): for each panel row `i`,
/// `x[rows[i]] -= panel[i*w + t0 .. i*w + w] · coef[t0..w]`.
///
/// `panel` is the supernode's dense row-major body block (`rows.len() × w`,
/// explicit zeros in padded positions, so padded columns contribute exactly
/// `0.0`), and `coef` the finalized local `U` coefficients. Rows are
/// processed in pairs so each `coef` load feeds two accumulator sets; the
/// inner loops are fixed-`LANES` chunks that autovectorize.
#[inline]
pub(crate) fn panel_rank_update<S: LuScalar>(
    panel: &[S],
    w: usize,
    t0: usize,
    rows: &[usize],
    coef: &[S],
    x: &mut [S],
) {
    let c = &coef[t0..w];
    let span = w - t0;
    let mut i = 0;
    while i + 1 < rows.len() {
        let p0 = &panel[i * w + t0..i * w + t0 + span];
        let p1 = &panel[(i + 1) * w + t0..(i + 1) * w + t0 + span];
        let mut a0 = [S::ZERO; LANES];
        let mut a1 = [S::ZERO; LANES];
        let mut c0 = p0.chunks_exact(LANES);
        let mut c1 = p1.chunks_exact(LANES);
        let mut cc = c.chunks_exact(LANES);
        for ((x0, x1), xc) in (&mut c0).zip(&mut c1).zip(&mut cc) {
            for l in 0..LANES {
                a0[l] += x0[l] * xc[l];
                a1[l] += x1[l] * xc[l];
            }
        }
        let mut d0 = (a0[0] + a0[1]) + (a0[2] + a0[3]);
        let mut d1 = (a1[0] + a1[1]) + (a1[2] + a1[3]);
        for ((x0, x1), xc) in c0
            .remainder()
            .iter()
            .zip(c1.remainder())
            .zip(cc.remainder())
        {
            d0 += *x0 * *xc;
            d1 += *x1 * *xc;
        }
        x[rows[i]] -= d0;
        x[rows[i + 1]] -= d1;
        i += 2;
    }
    if i < rows.len() {
        x[rows[i]] -= dot_lanes(&panel[i * w + t0..i * w + t0 + span], c);
    }
}

/// Dense unit-lower-triangular finalize of a supernode's local coefficient
/// vector: `c[t2] -= c[t] * diag[t*w + t2]` for `t` ascending, `t2 > t`.
/// `diag` is the supernode's `w × w` within-block `L` stored column-major
/// by source step (`diag[t*w + i] = L[pivot_row(k0+i), k0+t]`, explicit
/// zeros where the pattern is absent).
#[inline]
pub(crate) fn trsv_unit_lower<S: LuScalar>(diag: &[S], w: usize, t0: usize, c: &mut [S]) {
    for t in t0..w {
        let ct = c[t];
        if ct != S::ZERO {
            let col = &diag[t * w..t * w + w];
            for t2 in t + 1..w {
                c[t2] -= ct * col[t2];
            }
        }
    }
}

/// `f64`-accumulating dot product over a stored-`S` panel row — the solve
/// phase's inner loop: substitution arithmetic stays `f64` (accuracy costs
/// nothing there) while streaming the narrower stored values.
#[inline]
pub(crate) fn dot_lanes_f64<S: LuScalar>(a: &[S], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f64; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for l in 0..LANES {
            acc[l] += xa[l].to_f64() * xb[l];
        }
    }
    let mut s = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        s += x.to_f64() * *y;
    }
    s
}

/// A dense, row-major, `f64` matrix.
///
/// Used for small systems (the worked examples of the paper have a handful of
/// circuit nodes), for reference solutions in tests, and as the fallback when
/// sparsity does not pay off.
///
/// # Example
///
/// ```
/// use ohmflow_linalg::DenseMatrix;
///
/// let mut m = DenseMatrix::zeros(2, 2);
/// m[(0, 0)] = 1.0;
/// m[(1, 1)] = 2.0;
/// assert_eq!(m.mul_vec(&[3.0, 4.0]), vec![3.0, 8.0]);
/// ```
#[derive(Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major nested slice.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        DenseMatrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Matrix-vector product `A * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "mul_vec: dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            *yi = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        y
    }

    /// Transposed matrix.
    pub fn transpose(&self) -> DenseMatrix {
        let mut t = DenseMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Factors the matrix and solves `A x = b` in one call.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for non-square matrices,
    /// [`LinalgError::DimensionMismatch`] for a wrong-size `b`, and
    /// [`LinalgError::Singular`] when elimination encounters a zero pivot.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        DenseLu::factor(self)?.solve(b)
    }
}

impl Index<(usize, usize)> for DenseMatrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for DenseMatrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DenseMatrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{:>12.5e} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

/// Partial-pivoting LU factorization of a [`DenseMatrix`].
///
/// # Example
///
/// ```
/// use ohmflow_linalg::{DenseLu, DenseMatrix};
///
/// # fn main() -> Result<(), ohmflow_linalg::LinalgError> {
/// let a = DenseMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
/// let lu = DenseLu::factor(&a)?;
/// let x = lu.solve(&[3.0, 5.0])?;
/// assert!((x[0] - 0.8).abs() < 1e-12 && (x[1] - 1.4).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DenseLu {
    lu: DenseMatrix,
    perm: Vec<usize>,
    /// Parity of the permutation; `determinant` needs it.
    sign: f64,
}

impl DenseLu {
    /// Dimension of the factored system (the auditor checks it against
    /// the rank of the owning low-rank update).
    pub(crate) fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Factors `a` as `P A = L U` with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] if `a` is not square, or
    /// [`LinalgError::Singular`] if a pivot column is entirely zero.
    pub fn factor(a: &DenseMatrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows,
                cols: a.cols,
            });
        }
        let n = a.rows;
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;

        for k in 0..n {
            // Partial pivot: largest magnitude in column k at or below row k.
            let mut p = k;
            let mut best = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best == 0.0 {
                return Err(LinalgError::Singular { column: k });
            }
            if p != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
                perm.swap(k, p);
                sign = -sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                if factor != 0.0 {
                    for j in (k + 1)..n {
                        let upd = factor * lu[(k, j)];
                        lu[(i, j)] -= upd;
                    }
                }
            }
        }
        Ok(DenseLu { lu, perm, sign })
    }

    /// Solves `A x = b` using the stored factors.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b` has the wrong length.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let mut out = Vec::new();
        self.solve_into(b, &mut out)?;
        Ok(out)
    }

    /// [`DenseLu::solve`] into a caller-provided buffer, reusing its
    /// allocation.
    ///
    /// # Errors
    ///
    /// Same as [`DenseLu::solve`].
    pub fn solve_into(&self, b: &[f64], out: &mut Vec<f64>) -> Result<(), LinalgError> {
        let n = self.lu.rows;
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: n,
                found: b.len(),
            });
        }
        // Apply permutation, then forward- and back-substitute.
        out.clear();
        out.extend(self.perm.iter().map(|&p| b[p]));
        let x = out;
        for i in 1..n {
            let mut s = x[i];
            for (j, xj) in x.iter().enumerate().take(i) {
                s -= self.lu[(i, j)] * xj;
            }
            x[i] = s;
        }
        for i in (0..n).rev() {
            let mut s = x[i];
            for (j, xj) in x.iter().enumerate().take(n).skip(i + 1) {
                s -= self.lu[(i, j)] * xj;
            }
            x[i] = s / self.lu[(i, i)];
        }
        Ok(())
    }

    /// Determinant of the factored matrix.
    pub fn determinant(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.lu.rows {
            d *= self.lu[(i, i)];
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve_is_identity() {
        let a = DenseMatrix::identity(4);
        let b = [1.0, -2.0, 3.5, 0.0];
        let x = a.solve(&b).unwrap();
        assert_eq!(x, b.to_vec());
    }

    #[test]
    fn solve_3x3_known() {
        let a = DenseMatrix::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]);
        let x = a.solve(&[8.0, -11.0, -3.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
        assert!((x[2] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn singular_reports_column() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        match DenseLu::factor(&a) {
            Err(LinalgError::Singular { column }) => assert_eq!(column, 1),
            other => panic!("expected singular, got {other:?}"),
        }
    }

    #[test]
    fn not_square_rejected() {
        let a = DenseMatrix::zeros(2, 3);
        assert!(matches!(
            DenseLu::factor(&a),
            Err(LinalgError::NotSquare { rows: 2, cols: 3 })
        ));
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn determinant_matches_hand_computation() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let lu = DenseLu::factor(&a).unwrap();
        assert!((lu.determinant() + 2.0).abs() < 1e-12);
    }

    #[test]
    fn negative_conductance_indefinite_system() {
        // MNA systems with negative resistors are indefinite but solvable.
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, -1.0]]);
        let x = a.solve(&[3.0, 1.0]).unwrap();
        let r = a.mul_vec(&x);
        assert!((r[0] - 3.0).abs() < 1e-12 && (r[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn wrong_rhs_length() {
        let a = DenseMatrix::identity(2);
        assert!(matches!(
            a.solve(&[1.0]),
            Err(LinalgError::DimensionMismatch {
                expected: 2,
                found: 1
            })
        ));
    }
}
