//! Small dense-vector helpers used throughout the workspace.

/// Euclidean (L2) norm of `v`.
///
/// ```
/// assert_eq!(ohmflow_linalg::vecops::norm2(&[3.0, 4.0]), 5.0);
/// ```
pub fn norm2(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Maximum-magnitude (L∞) norm of `v`; `0.0` for an empty slice.
pub fn norm_inf(v: &[f64]) -> f64 {
    v.iter().fold(0.0_f64, |m, x| m.max(x.abs()))
}

/// Dot product of `a` and `b`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x` (BLAS `axpy`).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Relative difference `|a - b| / max(1, |a|, |b|)` useful for convergence
/// checks that behave sensibly near zero.
pub fn rel_diff(a: f64, b: f64) -> f64 {
    (a - b).abs() / 1.0_f64.max(a.abs()).max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norm2_basic() {
        assert_eq!(norm2(&[]), 0.0);
        assert!((norm2(&[1.0, 2.0, 2.0]) - 3.0).abs() < 1e-15);
    }

    #[test]
    fn norm_inf_basic() {
        assert_eq!(norm_inf(&[]), 0.0);
        assert_eq!(norm_inf(&[-5.0, 2.0]), 5.0);
    }

    #[test]
    fn dot_and_axpy() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0, 6.0];
        assert_eq!(dot(&a, &b), 32.0);
        let mut y = b;
        axpy(2.0, &a, &mut y);
        assert_eq!(y, [6.0, 9.0, 12.0]);
    }

    #[test]
    fn rel_diff_near_zero_is_absolute() {
        assert!(rel_diff(1e-12, 0.0) < 1e-11);
        assert!((rel_diff(200.0, 100.0) - 0.5).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}
