//! Small dense-vector helpers used throughout the workspace.
//!
//! The hot entry points ([`norm2`], [`dot`], [`axpy`]) run over multiple
//! independent accumulator lanes (fixed-size chunks, no cross-iteration
//! dependency inside a chunk) so LLVM autovectorizes them; the
//! straight-line scalar forms are kept as `*_scalar` test oracles. Lane
//! results are reduced pairwise, so a lane rewrite changes the floating
//! point result only by summation reassociation — the oracle tests bound
//! that at a few ulps.

/// Accumulator lanes of the chunked kernels: wide enough to fill a
/// 256-bit vector unit with f64 while staying register-resident on
/// anything narrower.
const LANES: usize = 4;

/// Euclidean (L2) norm of `v`.
///
/// ```
/// assert_eq!(ohmflow_linalg::vecops::norm2(&[3.0, 4.0]), 5.0);
/// ```
pub fn norm2(v: &[f64]) -> f64 {
    let mut acc = [0.0_f64; LANES];
    let mut chunks = v.chunks_exact(LANES);
    for c in &mut chunks {
        for (a, x) in acc.iter_mut().zip(c) {
            *a += x * x;
        }
    }
    let mut s = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for x in chunks.remainder() {
        s += x * x;
    }
    s.sqrt()
}

/// Single-accumulator reference form of [`norm2`] (test oracle).
pub fn norm2_scalar(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Maximum-magnitude (L∞) norm of `v`; `0.0` for an empty slice.
pub fn norm_inf(v: &[f64]) -> f64 {
    v.iter().fold(0.0_f64, |m, x| m.max(x.abs()))
}

/// Dot product of `a` and `b`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    let mut acc = [0.0_f64; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for (s, (x, y)) in acc.iter_mut().zip(xa.iter().zip(xb)) {
            *s += x * y;
        }
    }
    let mut s = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        s += x * y;
    }
    s
}

/// Single-accumulator reference form of [`dot`] (test oracle).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot_scalar(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x` (BLAS `axpy`).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    let mut cy = y.chunks_exact_mut(LANES);
    let mut cx = x.chunks_exact(LANES);
    for (wy, wx) in (&mut cy).zip(&mut cx) {
        // Fixed-width independent updates — each lane is its own
        // fused-multiply-add chain, so the loop vectorizes cleanly.
        for (yi, xi) in wy.iter_mut().zip(wx) {
            *yi += alpha * xi;
        }
    }
    for (yi, xi) in cy.into_remainder().iter_mut().zip(cx.remainder()) {
        *yi += alpha * xi;
    }
}

/// Straight-line reference form of [`axpy`] (test oracle). Bitwise
/// identical to [`axpy`]: per-element updates are independent, so
/// chunking changes no operation order.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy_scalar(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Relative difference `|a - b| / max(1, |a|, |b|)` useful for convergence
/// checks that behave sensibly near zero.
pub fn rel_diff(a: f64, b: f64) -> f64 {
    (a - b).abs() / 1.0_f64.max(a.abs()).max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norm2_basic() {
        assert_eq!(norm2(&[]), 0.0);
        assert!((norm2(&[1.0, 2.0, 2.0]) - 3.0).abs() < 1e-15);
    }

    #[test]
    fn norm_inf_basic() {
        assert_eq!(norm_inf(&[]), 0.0);
        assert_eq!(norm_inf(&[-5.0, 2.0]), 5.0);
    }

    #[test]
    fn dot_and_axpy() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0, 6.0];
        assert_eq!(dot(&a, &b), 32.0);
        let mut y = b;
        axpy(2.0, &a, &mut y);
        assert_eq!(y, [6.0, 9.0, 12.0]);
    }

    #[test]
    fn lane_kernels_match_scalar_oracles() {
        // Deterministic ill-aligned lengths spanning 0, sub-lane,
        // exact-lane and remainder cases.
        for n in [0usize, 1, 3, 4, 5, 8, 17, 64, 101] {
            let x: Vec<f64> = (0..n).map(|i| ((i * 37 + 11) % 19) as f64 - 9.0).collect();
            let y: Vec<f64> = (0..n).map(|i| ((i * 53 + 7) % 23) as f64 - 11.0).collect();
            let d = dot(&x, &y);
            let d0 = dot_scalar(&x, &y);
            assert!((d - d0).abs() <= 1e-12 * (1.0 + d0.abs()), "dot n={n}");
            let m = norm2(&x);
            let m0 = norm2_scalar(&x);
            assert!((m - m0).abs() <= 1e-12 * (1.0 + m0), "norm2 n={n}");
            let mut y1 = y.clone();
            let mut y2 = y.clone();
            axpy(1.5, &x, &mut y1);
            axpy_scalar(1.5, &x, &mut y2);
            assert_eq!(y1, y2, "axpy n={n}");
        }
    }

    #[test]
    fn rel_diff_near_zero_is_absolute() {
        assert!(rel_diff(1e-12, 0.0) < 1e-11);
        assert!((rel_diff(200.0, 100.0) - 0.5).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}
