//! Sherman–Morrison–Woodbury low-rank solve updates.
//!
//! Given a factored base matrix `A` and an accumulated low-rank change
//! `ΔA = Σᵢ uᵢ vᵢᵀ`, the Woodbury identity solves `(A + ΔA) x = b` using
//! only the **existing** factorization of `A`:
//!
//! ```text
//! (A + U Vᵀ)⁻¹ b = A⁻¹ b − A⁻¹ U (I + Vᵀ A⁻¹ U)⁻¹ Vᵀ A⁻¹ b
//! ```
//!
//! Each pushed rank-1 term costs one base solve (to compute `zᵢ = A⁻¹ uᵢ`)
//! and a dense refactorization of the tiny `k × k` capacitance matrix
//! `C = I + Vᵀ Z`; each subsequent solve costs one base solve plus `k`
//! axpy passes. This is the circuit simulator's clamp-diode fast path: a
//! diode toggling between its on/off conductance is a symmetric 1–2 node
//! conductance change — exactly a rank-1 `ΔA` — so the transient engine
//! can track long switching cascades without ever refactoring the MNA
//! matrix (see `DESIGN.md`).

use crate::{DenseLu, DenseMatrix, LinalgError, SparseLu};

/// An accumulated rank-`k` update `ΔA = Σᵢ uᵢ vᵢᵀ` over a factored base
/// matrix, with Woodbury solves against `A + ΔA`.
///
/// # Example
///
/// ```
/// use ohmflow_linalg::{LowRankUpdate, SparseLu, TripletMatrix};
///
/// # fn main() -> Result<(), ohmflow_linalg::LinalgError> {
/// let mut t = TripletMatrix::new(2, 2);
/// t.push(0, 0, 2.0);
/// t.push(1, 1, 4.0);
/// let base = SparseLu::factor(&t.to_csc())?;
/// // Add +2.0 at (0, 0): the updated matrix is diag(4, 4).
/// let mut up = LowRankUpdate::new(2);
/// up.push(&base, &[(0, 2.0)], &[(0, 1.0)])?;
/// let x = up.solve(&base, &[8.0, 8.0])?;
/// assert!((x[0] - 2.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct LowRankUpdate {
    n: usize,
    /// Sparse `uᵢ` vectors (kept so `ΔA·x` products stay cheap).
    us: Vec<Vec<(usize, f64)>>,
    /// Sparse `vᵢ` vectors.
    vs: Vec<Vec<(usize, f64)>>,
    /// Dense `zᵢ = A⁻¹ uᵢ`.
    zs: Vec<Vec<f64>>,
    /// Factored capacitance matrix `C = I + Vᵀ Z`, rebuilt on every push.
    cap: Option<DenseLu>,
    /// Scratch for `Vᵀ x` and `C⁻¹ (Vᵀ x)` (length `k`), reused across
    /// solves so the per-time-step hot loop stays allocation-free.
    wbuf: Vec<f64>,
    ybuf: Vec<f64>,
}

impl LowRankUpdate {
    /// An empty (identity) update over `n`-dimensional systems.
    pub fn new(n: usize) -> Self {
        LowRankUpdate {
            n,
            us: Vec::new(),
            vs: Vec::new(),
            zs: Vec::new(),
            cap: None,
            wbuf: Vec::new(),
            ybuf: Vec::new(),
        }
    }

    /// Number of accumulated rank-1 terms.
    pub fn rank(&self) -> usize {
        self.us.len()
    }

    /// `true` if no terms have been pushed (solves reduce to the base).
    pub fn is_empty(&self) -> bool {
        self.us.is_empty()
    }

    /// Drops every accumulated term (used after the caller refactors its
    /// base matrix with the updates baked in).
    pub fn clear(&mut self) {
        self.us.clear();
        self.vs.clear();
        self.zs.clear();
        self.cap = None;
    }

    /// Appends the rank-1 term `u vᵀ`, where `u` and `v` are sparse
    /// `(index, value)` vectors. A symmetric conductance change `Δg`
    /// between unknowns `a` and `b` is pushed as
    /// `u = Δg·(eₐ − e_b), v = eₐ − e_b`.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] for an out-of-range index, and
    /// [`LinalgError::Singular`] if the updated matrix is singular (the
    /// capacitance matrix fails to factor) — the term is rolled back, and
    /// the caller should fall back to refactoring the full matrix.
    pub fn push(
        &mut self,
        base: &SparseLu,
        u: &[(usize, f64)],
        v: &[(usize, f64)],
    ) -> Result<(), LinalgError> {
        for &(i, _) in u.iter().chain(v) {
            if i >= self.n {
                return Err(LinalgError::DimensionMismatch {
                    expected: self.n,
                    found: i + 1,
                });
            }
        }
        let mut dense_u = vec![0.0; self.n];
        for &(i, val) in u {
            dense_u[i] += val;
        }
        let z = base.solve(&dense_u)?;
        self.us.push(u.to_vec());
        self.vs.push(v.to_vec());
        self.zs.push(z);

        match self.refresh_capacitance() {
            Ok(()) => Ok(()),
            Err(e) => {
                self.us.pop();
                self.vs.pop();
                self.zs.pop();
                self.refresh_capacitance()
                    .expect("previous capacitance factored before");
                Err(e)
            }
        }
    }

    /// Rebuilds and refactors `C = I + Vᵀ Z`. `k` is small (the caller
    /// refactors its base long before the rank grows large), so the dense
    /// `O(k³)` cost is negligible next to one sparse solve.
    fn refresh_capacitance(&mut self) -> Result<(), LinalgError> {
        let k = self.us.len();
        if k == 0 {
            self.cap = None;
            return Ok(());
        }
        let mut c = DenseMatrix::zeros(k, k);
        for i in 0..k {
            c[(i, i)] = 1.0;
            for j in 0..k {
                let dot: f64 = self.vs[i].iter().map(|&(r, val)| val * self.zs[j][r]).sum();
                c[(i, j)] += dot;
            }
        }
        self.cap = Some(DenseLu::factor(&c)?);
        Ok(())
    }

    /// Solves `(A + ΔA) x = b`.
    ///
    /// # Errors
    ///
    /// Same as [`SparseLu::solve`].
    pub fn solve(&mut self, base: &SparseLu, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let mut work = Vec::new();
        let mut out = Vec::new();
        self.solve_into(base, b, &mut work, &mut out)?;
        Ok(out)
    }

    /// [`LowRankUpdate::solve`] into caller-provided buffers (see
    /// [`SparseLu::solve_into`]).
    ///
    /// # Errors
    ///
    /// Same as [`SparseLu::solve`].
    pub fn solve_into(
        &mut self,
        base: &SparseLu,
        b: &[f64],
        work: &mut Vec<f64>,
        out: &mut Vec<f64>,
    ) -> Result<(), LinalgError> {
        base.solve_into(b, work, out)?;
        let Some(cap) = &self.cap else {
            return Ok(());
        };
        let k = self.us.len();
        self.wbuf.clear();
        self.wbuf.resize(k, 0.0);
        for (w, vi) in self.wbuf.iter_mut().zip(&self.vs) {
            *w = vi.iter().map(|&(r, val)| val * out[r]).sum();
        }
        cap.solve_into(&self.wbuf, &mut self.ybuf)?;
        for (yi, zi) in self.ybuf.iter().zip(&self.zs) {
            if *yi != 0.0 {
                for (o, z) in out.iter_mut().zip(zi) {
                    *o -= yi * z;
                }
            }
        }
        Ok(())
    }

    /// Accumulates `ΔA · x` into `y` (used for residual checks without
    /// assembling the updated matrix).
    ///
    /// # Panics
    ///
    /// Panics if `x` and `y` are shorter than the system dimension.
    pub fn accumulate_matvec(&self, x: &[f64], y: &mut [f64]) {
        for (ui, vi) in self.us.iter().zip(&self.vs) {
            let dot: f64 = vi.iter().map(|&(r, val)| val * x[r]).sum();
            if dot != 0.0 {
                for &(r, val) in ui {
                    y[r] += val * dot;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletMatrix;

    fn grid_system(side: usize) -> TripletMatrix {
        let n = side * side;
        let mut t = TripletMatrix::new(n, n);
        let id = |r: usize, c: usize| r * side + c;
        for r in 0..side {
            for c in 0..side {
                let me = id(r, c);
                let mut deg = 1.0;
                for (nr, nc) in [
                    (r.wrapping_sub(1), c),
                    (r + 1, c),
                    (r, c.wrapping_sub(1)),
                    (r, c + 1),
                ] {
                    if nr < side && nc < side {
                        t.push(me, id(nr, nc), -1.0);
                        deg += 1.0;
                    }
                }
                t.push(me, me, deg);
            }
        }
        t
    }

    #[test]
    fn rank1_update_matches_refactored_matrix() {
        let side = 6;
        let t = grid_system(side);
        let csc = t.to_csc();
        let base = SparseLu::factor(&csc).unwrap();

        // Conductance-style update between unknowns 3 and 11: Δg = 5.
        let dg = 5.0;
        let d = [(3usize, 1.0), (11usize, -1.0)];
        let u: Vec<(usize, f64)> = d.iter().map(|&(i, s)| (i, dg * s)).collect();
        let mut up = LowRankUpdate::new(csc.cols());
        up.push(&base, &u, &d).unwrap();

        let mut t2 = grid_system(side);
        t2.push(3, 3, dg);
        t2.push(11, 11, dg);
        t2.push(3, 11, -dg);
        t2.push(11, 3, -dg);
        let exact = SparseLu::factor(&t2.to_csc()).unwrap();

        let b: Vec<f64> = (0..csc.cols()).map(|i| (i as f64 * 0.37).sin()).collect();
        let x_up = up.solve(&base, &b).unwrap();
        let x_ref = exact.solve(&b).unwrap();
        for (a, r) in x_up.iter().zip(&x_ref) {
            assert!((a - r).abs() < 1e-10, "{a} vs {r}");
        }
    }

    #[test]
    fn stacked_updates_compose() {
        let t = grid_system(5);
        let csc = t.to_csc();
        let base = SparseLu::factor(&csc).unwrap();
        let mut up = LowRankUpdate::new(csc.cols());
        let mut t2 = grid_system(5);
        for (step, &(a, b, dg)) in [(0usize, 7usize, 3.0), (12, 20, -0.5), (3, 3, 2.0)]
            .iter()
            .enumerate()
        {
            let d: Vec<(usize, f64)> = if a == b {
                vec![(a, 1.0)]
            } else {
                vec![(a, 1.0), (b, -1.0)]
            };
            let u: Vec<(usize, f64)> = d.iter().map(|&(i, s)| (i, dg * s)).collect();
            up.push(&base, &u, &d).unwrap();
            assert_eq!(up.rank(), step + 1);
            t2.push(a, a, dg);
            if a != b {
                t2.push(b, b, dg);
                t2.push(a, b, -dg);
                t2.push(b, a, -dg);
            }
        }
        let exact = SparseLu::factor(&t2.to_csc()).unwrap();
        let b: Vec<f64> = (0..csc.cols()).map(|i| 1.0 + i as f64).collect();
        let x_up = up.solve(&base, &b).unwrap();
        let x_ref = exact.solve(&b).unwrap();
        for (a, r) in x_up.iter().zip(&x_ref) {
            assert!((a - r).abs() < 1e-9, "{a} vs {r}");
        }
    }

    #[test]
    fn singular_update_rolls_back() {
        // A = I (2x2); pushing -1 at (0,0) makes it singular.
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 1, 1.0);
        let base = SparseLu::factor(&t.to_csc()).unwrap();
        let mut up = LowRankUpdate::new(2);
        assert!(up.push(&base, &[(0, -1.0)], &[(0, 1.0)]).is_err());
        assert_eq!(up.rank(), 0);
        // Still usable as a pass-through after the rollback.
        let x = up.solve(&base, &[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![2.0, 3.0]);
    }

    #[test]
    fn matvec_accumulation_matches_update() {
        let t = grid_system(4);
        let csc = t.to_csc();
        let base = SparseLu::factor(&csc).unwrap();
        let mut up = LowRankUpdate::new(csc.cols());
        up.push(&base, &[(2, 4.0), (9, -4.0)], &[(2, 1.0), (9, -1.0)])
            .unwrap();
        let x: Vec<f64> = (0..csc.cols()).map(|i| i as f64 * 0.1).collect();
        // (A + ΔA) x computed two ways.
        let mut y = csc.mul_vec(&x);
        up.accumulate_matvec(&x, &mut y);
        let x_back = up.solve(&base, &y).unwrap();
        for (a, r) in x_back.iter().zip(&x) {
            assert!((a - r).abs() < 1e-10);
        }
    }
}
