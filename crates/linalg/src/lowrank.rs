//! Sherman–Morrison–Woodbury low-rank solve updates.
//!
//! Given a factored base matrix `A` and an accumulated low-rank change
//! `ΔA = Σᵢ uᵢ vᵢᵀ`, the Woodbury identity solves `(A + ΔA) x = b` using
//! only the **existing** factorization of `A`:
//!
//! ```text
//! (A + U Vᵀ)⁻¹ b = A⁻¹ b − A⁻¹ U (I + Vᵀ A⁻¹ U)⁻¹ Vᵀ A⁻¹ b
//! ```
//!
//! Each pushed rank-1 term costs one solve of `zᵢ = A⁻¹ uᵢ`. On
//! single-block factorizations that is a **sparse-RHS** solve through
//! the reach-based half-solves — the forward half `ŵᵢ = L⁻¹ P uᵢ`
//! touches only the L-reach of `uᵢ`'s 1–2 nonzeros
//! ([`SparseLu::forward_sparse_into`]), and the structurally-dense
//! backward half completes it
//! ([`SparseLu::backward_dense_from_steps`]) — no dense right-hand side
//! is ever formed and the push loop allocates only the stored `zᵢ`.
//! Multi-block (BTF) factorizations scatter `uᵢ` and run one dense
//! traversal instead: chaining per-block reaches through the raw
//! cross-block values pays per-block constants that dominate once the
//! block count is large (substrate matrices split into thousands of
//! blocks).
//! The capacitance matrix `C = I + Vᵀ Z` is rebuilt from the sparse `vᵢ`
//! against the dense `zⱼ`, and each solve's correction stays the cheap
//! streaming form `out -= Σⱼ yⱼ zⱼ` (the solution is dense, so a dense
//! axpy per term is optimal). This is the circuit simulator's
//! clamp-diode fast path: a diode
//! toggling between its on/off conductance is a symmetric 1–2 node
//! conductance change — exactly a rank-1 `ΔA` — so the transient engine
//! can track long switching cascades without ever refactoring the MNA
//! matrix (see `DESIGN.md`).

use crate::{DenseLu, DenseMatrix, LinalgError, SparseLu, SparseSolveWorkspace};

/// One rank-1 term `u vᵀ` as borrowed sparse vectors — the per-term
/// argument shape of [`LowRankUpdate::push_batch`].
pub type RankOneTermRef<'a> = (&'a [(usize, f64)], &'a [(usize, f64)]);

/// An accumulated rank-`k` update `ΔA = Σᵢ uᵢ vᵢᵀ` over a factored base
/// matrix, with Woodbury solves against `A + ΔA`.
///
/// # Example
///
/// ```
/// use ohmflow_linalg::{LowRankUpdate, SparseLu, TripletMatrix};
///
/// # fn main() -> Result<(), ohmflow_linalg::LinalgError> {
/// let mut t = TripletMatrix::new(2, 2);
/// t.push(0, 0, 2.0);
/// t.push(1, 1, 4.0);
/// let base = SparseLu::factor(&t.to_csc())?;
/// // Add +2.0 at (0, 0): the updated matrix is diag(4, 4).
/// let mut up = LowRankUpdate::new(2);
/// up.push(&base, &[(0, 2.0)], &[(0, 1.0)])?;
/// let x = up.solve(&base, &[8.0, 8.0])?;
/// assert!((x[0] - 2.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct LowRankUpdate {
    pub(crate) n: usize,
    /// Sparse `uᵢ` vectors (kept so `ΔA·x` products stay cheap).
    pub(crate) us: Vec<Vec<(usize, f64)>>,
    /// Sparse `vᵢ` vectors.
    pub(crate) vs: Vec<Vec<(usize, f64)>>,
    /// Dense `zᵢ = A⁻¹ uᵢ`, materialized at push through the sparse
    /// forward half + dense backward completion.
    pub(crate) zs: Vec<Vec<f64>>,
    /// Factored capacitance matrix `C = I + Vᵀ Z`, rebuilt on every push.
    pub(crate) cap: Option<DenseLu>,
    /// Scratch for `Vᵀ x` and `C⁻¹ (Vᵀ x)` (length `k`), reused across
    /// solves so the per-time-step hot loop stays allocation-free.
    wbuf: Vec<f64>,
    ybuf: Vec<f64>,
    /// Scratch for the forward image ŵ = L⁻¹ P u of a pushed term.
    what_buf: Vec<(usize, f64)>,
    /// Step-space scratch of the backward completion (doubles as the dense
    /// RHS scratch of the small-system path).
    back_buf: Vec<f64>,
    /// Work buffer for the small-system dense solve.
    work_buf: Vec<f64>,
    /// Reach scratch for the sparse half-solves.
    solve_ws: SparseSolveWorkspace,
}

/// System size below which a pushed term's `z = A⁻¹u` is computed through
/// a plain dense solve: the reach machinery's constant costs (workspace
/// reset, DFS, sort) exceed the whole solve on tiny systems. A deliberate
/// twin of — but not a reference to — the parallel-refactor scheduling
/// threshold: the two knobs tune unrelated trade-offs.
const DENSE_PUSH_THRESHOLD: usize = 512;

impl LowRankUpdate {
    /// An empty (identity) update over `n`-dimensional systems.
    pub fn new(n: usize) -> Self {
        LowRankUpdate {
            n,
            ..Self::default()
        }
    }

    /// Number of accumulated rank-1 terms.
    pub fn rank(&self) -> usize {
        self.us.len()
    }

    /// `true` if no terms have been pushed (solves reduce to the base).
    pub fn is_empty(&self) -> bool {
        self.us.is_empty()
    }

    /// Drops every accumulated term (used after the caller refactors its
    /// base matrix with the updates baked in).
    pub fn clear(&mut self) {
        self.us.clear();
        self.vs.clear();
        self.zs.clear();
        self.cap = None;
    }

    /// Appends the rank-1 term `u vᵀ`, where `u` and `v` are sparse
    /// `(index, value)` vectors. A symmetric conductance change `Δg`
    /// between unknowns `a` and `b` is pushed as
    /// `u = Δg·(eₐ − e_b), v = eₐ − e_b`.
    ///
    /// Costs one sparse-RHS solve against `base` — reach-limited forward
    /// half, dense backward completion; no dense right-hand side is
    /// formed — plus the `O(k²)` capacitance refresh.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] for an out-of-range index, and
    /// [`LinalgError::Singular`] if the updated matrix is singular (the
    /// capacitance matrix fails to factor) — the term is rolled back, and
    /// the caller should fall back to refactoring the full matrix.
    pub fn push(
        &mut self,
        base: &SparseLu,
        u: &[(usize, f64)],
        v: &[(usize, f64)],
    ) -> Result<(), LinalgError> {
        for &(i, _) in u.iter().chain(v) {
            if i >= self.n {
                return Err(LinalgError::DimensionMismatch {
                    expected: self.n,
                    found: i + 1,
                });
            }
        }
        let mut z = Vec::new();
        if self.n < DENSE_PUSH_THRESHOLD || base.symbolic().block_count() > 1 {
            // Tiny systems: the reach machinery's constant costs (reset,
            // DFS, sort) exceed the whole dense solve — scatter a dense
            // RHS into reused scratch and solve directly. Multi-block
            // (BTF) factorizations land here too: chaining per-block
            // reaches through the cross-block values pays per-block
            // constants that grow with the block count, and substrate
            // matrices split into thousands of blocks — one dense
            // traversal is an order of magnitude cheaper there (measured
            // ~2ms vs ~18ms per column on a 16k-block factor).
            self.back_buf.clear();
            self.back_buf.resize(self.n, 0.0);
            for &(i, val) in u {
                self.back_buf[i] += val;
            }
            base.solve_into(&self.back_buf, &mut self.work_buf, &mut z)?;
        } else {
            base.forward_sparse_into(u, &mut self.solve_ws, &mut self.what_buf)?;
            base.backward_dense_from_steps(&self.what_buf, &mut self.back_buf, &mut z)?;
        }
        self.us.push(u.to_vec());
        self.vs.push(v.to_vec());
        self.zs.push(z);

        let res = match self.refresh_capacitance() {
            Ok(()) => Ok(()),
            Err(e) => {
                self.us.pop();
                self.vs.pop();
                self.zs.pop();
                self.refresh_capacitance()
                    .expect("invariant: capacitance-shape — previous capacitance factored before");
                Err(e)
            }
        };
        crate::verify::debug_auto_audit!(self.audit());
        res
    }

    /// Appends `k = terms.len()` rank-1 terms `uᵢ vᵢᵀ` in one batch.
    /// Each term is a `(u, v)` pair of sparse `(index, value)` vectors,
    /// exactly as in [`LowRankUpdate::push`].
    ///
    /// All `k` columns of `Z = A⁻¹ U` are driven through shared factor
    /// traversals — [`SparseLu::solve_multi_into`] carries up to
    /// [`SparseLu::MAX_SOLVE_LANES`] right-hand sides per L/U pass (on
    /// multi-block factorizations the same lane blocks run the per-block
    /// loop), so every factor value is loaded once per lane-chunk instead
    /// of once per term — and the capacitance matrix is refreshed
    /// **once**, where `k` sequential pushes stream the factor `k` times
    /// and pay `k` incremental `O(rank³)` refactors.
    ///
    /// Equivalent to pushing the terms one by one: term order is
    /// preserved and the accumulated update is identical up to roundoff.
    ///
    /// # Errors
    ///
    /// As [`LowRankUpdate::push`]; on any error the whole batch is rolled
    /// back — no partial application.
    pub fn push_batch(
        &mut self,
        base: &SparseLu,
        terms: &[RankOneTermRef<'_>],
    ) -> Result<(), LinalgError> {
        if terms.is_empty() {
            return Ok(());
        }
        if terms.len() == 1 {
            return self.push(base, terms[0].0, terms[0].1);
        }
        for (u, v) in terms {
            for &(i, _) in u.iter().chain(v.iter()) {
                if i >= self.n {
                    return Err(LinalgError::DimensionMismatch {
                        expected: self.n,
                        found: i + 1,
                    });
                }
            }
        }
        let k0 = self.us.len();
        if let Err(e) = self.compute_z_batch(base, terms) {
            self.zs.truncate(k0);
            return Err(e);
        }
        for (u, v) in terms {
            self.us.push(u.to_vec());
            self.vs.push(v.to_vec());
        }
        let res = match self.refresh_capacitance() {
            Ok(()) => Ok(()),
            Err(e) => {
                self.us.truncate(k0);
                self.vs.truncate(k0);
                self.zs.truncate(k0);
                self.refresh_capacitance()
                    .expect("invariant: capacitance-shape — previous capacitance factored before");
                Err(e)
            }
        };
        crate::verify::debug_auto_audit!(self.audit());
        res
    }

    /// Batch half of [`LowRankUpdate::push_batch`]: appends one
    /// `zᵢ = A⁻¹ uᵢ` per term to `self.zs`. On error some columns may
    /// already be appended — the caller truncates back to its saved rank.
    fn compute_z_batch(
        &mut self,
        base: &SparseLu,
        terms: &[RankOneTermRef<'_>],
    ) -> Result<(), LinalgError> {
        // The lane-chunked dense traversal handles every factor shape:
        // single-block factors amortize the factor streaming across
        // lanes, and multi-block (BTF) factorizations run the same
        // lane-blocked per-block loop — per-column reach chaining loses
        // to it by an order of magnitude once the block count is large
        // (thousands of blocks on substrate matrices).
        let mut i = 0;
        while i < terms.len() {
            let k = (terms.len() - i).min(SparseLu::MAX_SOLVE_LANES);
            self.back_buf.clear();
            self.back_buf.resize(self.n * k, 0.0);
            for (lane, (u, _)) in terms[i..i + k].iter().enumerate() {
                for &(r, val) in u.iter() {
                    self.back_buf[r * k + lane] += val;
                }
            }
            let mut zflat = Vec::new();
            base.solve_multi_into(&self.back_buf, k, &mut self.work_buf, &mut zflat)?;
            for lane in 0..k {
                self.zs
                    .push((0..self.n).map(|r| zflat[r * k + lane]).collect());
            }
            i += k;
        }
        Ok(())
    }

    /// Rebuilds and refactors `C = I + Vᵀ Z`. `k` is small (the caller
    /// refactors its base long before the rank grows large), so the dense
    /// `O(k³)` cost is negligible next to one sparse-RHS solve.
    fn refresh_capacitance(&mut self) -> Result<(), LinalgError> {
        let k = self.us.len();
        if k == 0 {
            self.cap = None;
            return Ok(());
        }
        let mut c = DenseMatrix::zeros(k, k);
        for i in 0..k {
            c[(i, i)] = 1.0;
            for j in 0..k {
                let dot: f64 = self.vs[i].iter().map(|&(r, val)| val * self.zs[j][r]).sum();
                c[(i, j)] += dot;
            }
        }
        self.cap = Some(DenseLu::factor(&c)?);
        Ok(())
    }

    /// Solves `(A + ΔA) x = b`.
    ///
    /// # Errors
    ///
    /// Same as [`SparseLu::solve`].
    pub fn solve(&mut self, base: &SparseLu, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let mut work = Vec::new();
        let mut out = Vec::new();
        self.solve_into(base, b, &mut work, &mut out)?;
        Ok(out)
    }

    /// [`LowRankUpdate::solve`] into caller-provided buffers (see
    /// [`SparseLu::solve_into`]).
    ///
    /// # Errors
    ///
    /// Same as [`SparseLu::solve`].
    pub fn solve_into(
        &mut self,
        base: &SparseLu,
        b: &[f64],
        work: &mut Vec<f64>,
        out: &mut Vec<f64>,
    ) -> Result<(), LinalgError> {
        base.solve_into(b, work, out)?;
        self.correct(base, out)
    }

    /// Applies the Woodbury correction to `out`, a base solution
    /// `A⁻¹ b`, turning it into `(A + ΔA)⁻¹ b`:
    /// `out -= Σⱼ yⱼ zⱼ` with `y = C⁻¹ Vᵀ out` — one capacitance solve
    /// plus one dense axpy per active term (the solution is dense, so the
    /// streaming axpy is the optimal application).
    ///
    /// A no-op while no terms are pushed. Split from
    /// [`LowRankUpdate::solve_into`] so callers can time / account the
    /// base triangular solve and the Woodbury application separately.
    ///
    /// # Errors
    ///
    /// Same as [`SparseLu::solve`].
    pub fn correct(&mut self, _base: &SparseLu, out: &mut [f64]) -> Result<(), LinalgError> {
        let Some(cap) = &self.cap else {
            return Ok(());
        };
        let k = self.us.len();
        self.wbuf.clear();
        self.wbuf.resize(k, 0.0);
        for (w, vi) in self.wbuf.iter_mut().zip(&self.vs) {
            *w = vi.iter().map(|&(r, val)| val * out[r]).sum();
        }
        cap.solve_into(&self.wbuf, &mut self.ybuf)?;
        for (yi, zi) in self.ybuf.iter().zip(&self.zs) {
            if *yi != 0.0 {
                // Dense correction per term through the lane-chunked axpy.
                crate::vecops::axpy(-yi, zi, out);
            }
        }
        Ok(())
    }

    /// Accumulates `ΔA · x` into `y` (used for residual checks without
    /// assembling the updated matrix).
    ///
    /// # Panics
    ///
    /// Panics if `x` and `y` are shorter than the system dimension.
    pub fn accumulate_matvec(&self, x: &[f64], y: &mut [f64]) {
        for (ui, vi) in self.us.iter().zip(&self.vs) {
            let dot: f64 = vi.iter().map(|&(r, val)| val * x[r]).sum();
            if dot != 0.0 {
                for &(r, val) in ui {
                    y[r] += val * dot;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletMatrix;

    fn grid_system(side: usize) -> TripletMatrix {
        let n = side * side;
        let mut t = TripletMatrix::new(n, n);
        let id = |r: usize, c: usize| r * side + c;
        for r in 0..side {
            for c in 0..side {
                let me = id(r, c);
                let mut deg = 1.0;
                for (nr, nc) in [
                    (r.wrapping_sub(1), c),
                    (r + 1, c),
                    (r, c.wrapping_sub(1)),
                    (r, c + 1),
                ] {
                    if nr < side && nc < side {
                        t.push(me, id(nr, nc), -1.0);
                        deg += 1.0;
                    }
                }
                t.push(me, me, deg);
            }
        }
        t
    }

    #[test]
    fn rank1_update_matches_refactored_matrix() {
        let side = 6;
        let t = grid_system(side);
        let csc = t.to_csc();
        let base = SparseLu::factor(&csc).unwrap();

        // Conductance-style update between unknowns 3 and 11: Δg = 5.
        let dg = 5.0;
        let d = [(3usize, 1.0), (11usize, -1.0)];
        let u: Vec<(usize, f64)> = d.iter().map(|&(i, s)| (i, dg * s)).collect();
        let mut up = LowRankUpdate::new(csc.cols());
        up.push(&base, &u, &d).unwrap();

        let mut t2 = grid_system(side);
        t2.push(3, 3, dg);
        t2.push(11, 11, dg);
        t2.push(3, 11, -dg);
        t2.push(11, 3, -dg);
        let exact = SparseLu::factor(&t2.to_csc()).unwrap();

        let b: Vec<f64> = (0..csc.cols()).map(|i| (i as f64 * 0.37).sin()).collect();
        let x_up = up.solve(&base, &b).unwrap();
        let x_ref = exact.solve(&b).unwrap();
        for (a, r) in x_up.iter().zip(&x_ref) {
            assert!((a - r).abs() < 1e-10, "{a} vs {r}");
        }
    }

    #[test]
    fn stacked_updates_compose() {
        let t = grid_system(5);
        let csc = t.to_csc();
        let base = SparseLu::factor(&csc).unwrap();
        let mut up = LowRankUpdate::new(csc.cols());
        let mut t2 = grid_system(5);
        for (step, &(a, b, dg)) in [(0usize, 7usize, 3.0), (12, 20, -0.5), (3, 3, 2.0)]
            .iter()
            .enumerate()
        {
            let d: Vec<(usize, f64)> = if a == b {
                vec![(a, 1.0)]
            } else {
                vec![(a, 1.0), (b, -1.0)]
            };
            let u: Vec<(usize, f64)> = d.iter().map(|&(i, s)| (i, dg * s)).collect();
            up.push(&base, &u, &d).unwrap();
            assert_eq!(up.rank(), step + 1);
            t2.push(a, a, dg);
            if a != b {
                t2.push(b, b, dg);
                t2.push(a, b, -dg);
                t2.push(b, a, -dg);
            }
        }
        let exact = SparseLu::factor(&t2.to_csc()).unwrap();
        let b: Vec<f64> = (0..csc.cols()).map(|i| 1.0 + i as f64).collect();
        let x_up = up.solve(&base, &b).unwrap();
        let x_ref = exact.solve(&b).unwrap();
        for (a, r) in x_up.iter().zip(&x_ref) {
            assert!((a - r).abs() < 1e-9, "{a} vs {r}");
        }
    }

    #[test]
    fn singular_update_rolls_back() {
        // A = I (2x2); pushing -1 at (0,0) makes it singular.
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 1, 1.0);
        let base = SparseLu::factor(&t.to_csc()).unwrap();
        let mut up = LowRankUpdate::new(2);
        assert!(up.push(&base, &[(0, -1.0)], &[(0, 1.0)]).is_err());
        assert_eq!(up.rank(), 0);
        // Still usable as a pass-through after the rollback.
        let x = up.solve(&base, &[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![2.0, 3.0]);
    }

    #[test]
    fn push_batch_matches_sequential_on_grid() {
        let t = grid_system(6);
        let csc = t.to_csc();
        let base = SparseLu::factor(&csc).unwrap();
        let pairs = [
            (0usize, 7usize, 3.0),
            (12, 20, -0.5),
            (3, 3, 2.0),
            (30, 5, 1.25),
        ];
        #[allow(clippy::type_complexity)]
        let terms: Vec<(Vec<(usize, f64)>, Vec<(usize, f64)>)> = pairs
            .iter()
            .map(|&(a, b, dg)| {
                let d: Vec<(usize, f64)> = if a == b {
                    vec![(a, 1.0)]
                } else {
                    vec![(a, 1.0), (b, -1.0)]
                };
                let u: Vec<(usize, f64)> = d.iter().map(|&(i, s)| (i, dg * s)).collect();
                (u, d)
            })
            .collect();
        let mut seq = LowRankUpdate::new(csc.cols());
        for (u, v) in &terms {
            seq.push(&base, u, v).unwrap();
        }
        let mut bat = LowRankUpdate::new(csc.cols());
        let refs: Vec<RankOneTermRef<'_>> = terms
            .iter()
            .map(|(u, v)| (u.as_slice(), v.as_slice()))
            .collect();
        bat.push_batch(&base, &refs).unwrap();
        assert_eq!(bat.rank(), 4);
        let b: Vec<f64> = (0..csc.cols()).map(|i| (i as f64 * 0.61).cos()).collect();
        let x_seq = seq.solve(&base, &b).unwrap();
        let x_bat = bat.solve(&base, &b).unwrap();
        for (a, r) in x_bat.iter().zip(&x_seq) {
            assert!((a - r).abs() < 1e-12 * r.abs().max(1.0), "{a} vs {r}");
        }
    }

    #[test]
    fn push_batch_rolls_back_whole_batch_on_singularity() {
        // A = I (2x2); the second term (-1 at (1,1)) makes it singular —
        // the *entire* batch must roll back, including the valid first term.
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 1, 1.0);
        let base = SparseLu::factor(&t.to_csc()).unwrap();
        let mut up = LowRankUpdate::new(2);
        let good: RankOneTermRef<'_> = (&[(0, 2.0)], &[(0, 1.0)]);
        let bad: RankOneTermRef<'_> = (&[(1, -1.0)], &[(1, 1.0)]);
        assert!(up.push_batch(&base, &[good, bad]).is_err());
        assert_eq!(up.rank(), 0);
        let x = up.solve(&base, &[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![2.0, 3.0]);
    }

    #[test]
    fn matvec_accumulation_matches_update() {
        let t = grid_system(4);
        let csc = t.to_csc();
        let base = SparseLu::factor(&csc).unwrap();
        let mut up = LowRankUpdate::new(csc.cols());
        up.push(&base, &[(2, 4.0), (9, -4.0)], &[(2, 1.0), (9, -1.0)])
            .unwrap();
        let x: Vec<f64> = (0..csc.cols()).map(|i| i as f64 * 0.1).collect();
        // (A + ΔA) x computed two ways.
        let mut y = csc.mul_vec(&x);
        up.accumulate_matvec(&x, &mut y);
        let x_back = up.solve(&base, &y).unwrap();
        for (a, r) in x_back.iter().zip(&x) {
            assert!((a - r).abs() < 1e-10);
        }
    }

    #[test]
    fn correct_is_equivalent_to_solve_into() {
        // The split correction path (base solve, then `correct`) must be
        // the same computation as `solve_into`.
        let t = grid_system(6);
        let csc = t.to_csc();
        let base = SparseLu::factor(&csc).unwrap();
        let mut up = LowRankUpdate::new(csc.cols());
        up.push(&base, &[(4, 2.0), (17, -2.0)], &[(4, 1.0), (17, -1.0)])
            .unwrap();
        let b: Vec<f64> = (0..csc.cols()).map(|i| (i as f64).cos()).collect();
        let x_joint = up.solve(&base, &b).unwrap();
        let (mut work, mut x_split) = (Vec::new(), Vec::new());
        base.solve_into(&b, &mut work, &mut x_split).unwrap();
        up.correct(&base, &mut x_split).unwrap();
        assert_eq!(x_joint, x_split);
    }
}
