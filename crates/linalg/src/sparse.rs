use std::fmt;

/// Coordinate-format (COO / "triplet") sparse-matrix builder.
///
/// This is the assembly format: MNA stamping pushes `(row, col, value)`
/// triplets, duplicates are *summed* on conversion — exactly the semantics a
/// circuit stamper wants (two resistors between the same nodes simply add
/// conductance).
///
/// # Example
///
/// ```
/// use ohmflow_linalg::TripletMatrix;
///
/// let mut t = TripletMatrix::new(2, 2);
/// t.push(0, 0, 1.0);
/// t.push(0, 0, 2.0); // duplicate: summed
/// let csr = t.to_csr();
/// assert_eq!(csr.get(0, 0), 3.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TripletMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl TripletMatrix {
    /// Creates an empty `rows x cols` builder.
    pub fn new(rows: usize, cols: usize) -> Self {
        TripletMatrix {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Creates an empty builder with reserved capacity for `nnz` entries.
    pub fn with_capacity(rows: usize, cols: usize, nnz: usize) -> Self {
        TripletMatrix {
            rows,
            cols,
            entries: Vec::with_capacity(nnz),
        }
    }

    /// Appends `value` at `(row, col)`. Duplicates are summed on conversion.
    ///
    /// # Panics
    ///
    /// Panics if the position is out of bounds.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.rows && col < self.cols,
            "triplet ({row},{col}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        self.entries.push((row, col, value));
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of raw (possibly duplicate) entries pushed so far.
    pub fn raw_len(&self) -> usize {
        self.entries.len()
    }

    /// Removes all entries, keeping the dimensions.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Compresses into row-major [`CsrMatrix`], summing duplicates and
    /// dropping exact zeros produced by cancellation only when `prune` asks
    /// for it (structural zeros are kept so factorization patterns stay
    /// stable between Newton iterations).
    pub fn to_csr(&self) -> CsrMatrix {
        compress(self.rows, self.cols, &self.entries, /*by_row=*/ true).into_csr()
    }

    /// Compresses into column-major [`CscMatrix`].
    pub fn to_csc(&self) -> CscMatrix {
        compress(self.cols, self.rows, &self.entries, /*by_row=*/ false).into_csc()
    }
}

/// Intermediate compressed form shared by the CSR/CSC conversions.
struct Compressed {
    /// Outer dimension (rows for CSR, cols for CSC).
    outer: usize,
    /// Inner dimension.
    inner: usize,
    ptr: Vec<usize>,
    idx: Vec<usize>,
    val: Vec<f64>,
}

fn compress(
    outer_n: usize,
    inner_n: usize,
    entries: &[(usize, usize, f64)],
    by_row: bool,
) -> Compressed {
    // Counting sort by outer index, then sort each segment by inner index and
    // merge duplicates.
    let key = |e: &(usize, usize, f64)| if by_row { e.0 } else { e.1 };
    let sub = |e: &(usize, usize, f64)| if by_row { e.1 } else { e.0 };

    let mut counts = vec![0usize; outer_n + 1];
    for e in entries {
        counts[key(e) + 1] += 1;
    }
    for i in 0..outer_n {
        counts[i + 1] += counts[i];
    }
    let mut slot = counts.clone();
    let mut tmp_idx = vec![0usize; entries.len()];
    let mut tmp_val = vec![0.0f64; entries.len()];
    for e in entries {
        let k = key(e);
        let s = slot[k];
        tmp_idx[s] = sub(e);
        tmp_val[s] = e.2;
        slot[k] += 1;
    }

    let mut ptr = Vec::with_capacity(outer_n + 1);
    let mut idx = Vec::with_capacity(entries.len());
    let mut val = Vec::with_capacity(entries.len());
    ptr.push(0);
    let mut seg: Vec<(usize, f64)> = Vec::new();
    for o in 0..outer_n {
        seg.clear();
        seg.extend(
            tmp_idx[counts[o]..counts[o + 1]]
                .iter()
                .copied()
                .zip(tmp_val[counts[o]..counts[o + 1]].iter().copied()),
        );
        seg.sort_unstable_by_key(|&(i, _)| i);
        let mut last: Option<usize> = None;
        for &(i, v) in seg.iter() {
            if last == Some(i) {
                *val.last_mut()
                    .expect("invariant: a duplicate entry was just pushed") += v;
            } else {
                idx.push(i);
                val.push(v);
                last = Some(i);
            }
        }
        ptr.push(idx.len());
    }
    Compressed {
        outer: outer_n,
        inner: inner_n,
        ptr,
        idx,
        val,
    }
}

impl Compressed {
    fn into_csr(self) -> CsrMatrix {
        CsrMatrix {
            rows: self.outer,
            cols: self.inner,
            row_ptr: self.ptr,
            col_idx: self.idx,
            values: self.val,
        }
    }

    fn into_csc(self) -> CscMatrix {
        CscMatrix {
            cols: self.outer,
            rows: self.inner,
            col_ptr: self.ptr,
            row_idx: self.idx,
            values: self.val,
        }
    }
}

/// Compressed-sparse-row matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Value at `(row, col)`, `0.0` if not stored.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        let (lo, hi) = (self.row_ptr[row], self.row_ptr[row + 1]);
        match self.col_idx[lo..hi].binary_search(&col) {
            Ok(k) => self.values[lo + k],
            Err(_) => 0.0,
        }
    }

    /// Iterator over `(col, value)` pairs of one row.
    pub fn row(&self, row: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let (lo, hi) = (self.row_ptr[row], self.row_ptr[row + 1]);
        self.col_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Matrix-vector product `A * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "mul_vec: dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for (r, yr) in y.iter_mut().enumerate() {
            let mut s = 0.0;
            for (c, v) in self.row(r) {
                s += v * x[c];
            }
            *yr = s;
        }
        y
    }
}

/// Compressed-sparse-column matrix — the input format of [`crate::SparseLu`].
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    rows: usize,
    cols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Column pointer array (`cols + 1` entries).
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// Row indices, column-segment by column-segment.
    pub fn row_idx(&self) -> &[usize] {
        &self.row_idx
    }

    /// Stored values aligned with [`CscMatrix::row_idx`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterator over `(row, value)` pairs of one column.
    pub fn col(&self, col: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let (lo, hi) = (self.col_ptr[col], self.col_ptr[col + 1]);
        self.row_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Value at `(row, col)`, `0.0` if not stored.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        let (lo, hi) = (self.col_ptr[col], self.col_ptr[col + 1]);
        match self.row_idx[lo..hi].binary_search(&row) {
            Ok(k) => self.values[lo + k],
            Err(_) => 0.0,
        }
    }

    /// Matrix-vector product `A * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = Vec::new();
        self.mul_vec_into(x, &mut y);
        y
    }

    /// [`CscMatrix::mul_vec`] into a caller-provided buffer, reusing its
    /// allocation (hot loops computing residuals every time step).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec_into(&self, x: &[f64], y: &mut Vec<f64>) {
        assert_eq!(x.len(), self.cols, "mul_vec: dimension mismatch");
        y.clear();
        y.resize(self.rows, 0.0);
        for (c, &xc) in x.iter().enumerate() {
            if xc != 0.0 {
                for (r, v) in self.col(c) {
                    y[r] += v * xc;
                }
            }
        }
    }
}

impl fmt::Display for CscMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CscMatrix {}x{} nnz={}",
            self.rows,
            self.cols,
            self.nnz()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> TripletMatrix {
        // [ 1 0 2 ]
        // [ 0 3 0 ]
        // [ 4 0 5 ]
        let mut t = TripletMatrix::new(3, 3);
        t.push(0, 0, 1.0);
        t.push(0, 2, 2.0);
        t.push(1, 1, 3.0);
        t.push(2, 0, 4.0);
        t.push(2, 2, 5.0);
        t
    }

    #[test]
    fn csr_roundtrip_values() {
        let csr = example().to_csr();
        assert_eq!(csr.nnz(), 5);
        assert_eq!(csr.get(0, 0), 1.0);
        assert_eq!(csr.get(0, 1), 0.0);
        assert_eq!(csr.get(2, 2), 5.0);
    }

    #[test]
    fn csc_roundtrip_values() {
        let csc = example().to_csc();
        assert_eq!(csc.nnz(), 5);
        assert_eq!(csc.get(0, 2), 2.0);
        assert_eq!(csc.get(1, 1), 3.0);
        assert_eq!(csc.get(1, 0), 0.0);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut t = TripletMatrix::new(1, 1);
        t.push(0, 0, 1.5);
        t.push(0, 0, 2.5);
        assert_eq!(t.to_csr().get(0, 0), 4.0);
        assert_eq!(t.to_csc().get(0, 0), 4.0);
    }

    #[test]
    fn mul_vec_agrees_between_formats() {
        let t = example();
        let x = [1.0, 2.0, 3.0];
        assert_eq!(t.to_csr().mul_vec(&x), t.to_csc().mul_vec(&x));
        assert_eq!(t.to_csr().mul_vec(&x), vec![7.0, 6.0, 19.0]);
    }

    #[test]
    fn empty_matrix() {
        let t = TripletMatrix::new(2, 2);
        let csr = t.to_csr();
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.mul_vec(&[1.0, 1.0]), vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_push_panics() {
        let mut t = TripletMatrix::new(1, 1);
        t.push(1, 0, 1.0);
    }

    #[test]
    fn clear_resets_entries_not_shape() {
        let mut t = example();
        t.clear();
        assert_eq!(t.raw_len(), 0);
        assert_eq!(t.rows(), 3);
        assert_eq!(t.to_csr().nnz(), 0);
    }
}
