//! Nested-dissection ordering: recursive bisection of the symmetrized
//! adjacency with one-sided vertex separators numbered last, and AMD on
//! the leaf subdomains (George, "Nested dissection of a regular finite
//! element mesh").
//!
//! Minimum-degree-family orderings treat the graph locally; on patterns
//! with small separators (grids, circuit substrates) a global recursive
//! bisection confines every elimination reach to one side of a separator,
//! which is what keeps the sparse triangular solves of the Woodbury path
//! reach-local even when the matrix is irreducible. The bisection here is
//! deliberately self-contained — no external partitioner:
//!
//! 1. a pseudo-peripheral vertex is found by two BFS sweeps from a
//!    minimum-degree start,
//! 2. a BFS wave from it claims half the vertices for one side (jumping to
//!    an unclaimed vertex whenever a connected component is exhausted, so
//!    disconnected patterns split for free),
//! 3. a few greedy Fiduccia–Mattheyses-flavoured passes move boundary
//!    vertices with positive edge-cut gain, under a balance floor,
//! 4. the side with the smaller boundary donates that boundary as the
//!    vertex separator.
//!
//! Parts recurse; subdomains at or below [`ND_LEAF_CUTOFF`] are ordered by
//! AMD on their induced subgraph, and so is each separator (its internal
//! order only matters for fill among the last-numbered columns).
//!
//! A **separator quality gate** guards every recursion step: if the cut
//! exceeds `4√n` (the planar-separator scaling dissection needs to win)
//! or leaves a part below the balance floor, the subgraph is ordered by
//! AMD instead. Expander-like patterns (R-MAT cores) have no small
//! vertex separators, and numbering a fat separator last inflates fill
//! toward natural-order levels — the gate makes dissection strictly
//! "do no harm" relative to AMD while still engaging fully on separable
//! substrates (grids, meshes).

use super::amd::amd_from_adjacency;
use super::AdjacencyCsr;
use crate::CscMatrix;

/// Subgraphs at or below this size stop recursing and are ordered by AMD:
/// below ~a hundred vertices separator quality no longer pays for the
/// bisection, while AMD is essentially optimal.
pub(crate) const ND_LEAF_CUTOFF: usize = 100;

/// Balance floor of a bisection: refinement never lets a side shrink below
/// `n / BALANCE_DIVISOR` vertices.
const BALANCE_DIVISOR: usize = 5;

/// Maximum greedy boundary-refinement passes per bisection; each pass is
/// `O(edges)` and they converge (or stop moving) quickly.
const REFINE_PASSES: usize = 4;

/// The top-level bisection of a matrix pattern, as
/// [`nested_dissection_ordering`] computes it: two vertex sets with no
/// edge between them in the symmetrized pattern, plus the separator.
#[derive(Debug, Clone)]
pub struct NdSplit {
    /// First part (empty only for degenerate patterns).
    pub part_a: Vec<usize>,
    /// Second part; no symmetrized-pattern entry couples `part_a` and
    /// `part_b`. Empty when the pattern is below the leaf cutoff (no
    /// bisection happens).
    pub part_b: Vec<usize>,
    /// Separator vertices (numbered last by the ordering).
    pub separator: Vec<usize>,
}

/// Nested-dissection column ordering of `a`'s symmetrized pattern.
///
/// # Example
///
/// ```
/// use ohmflow_linalg::{nested_dissection_ordering, TripletMatrix};
///
/// let mut t = TripletMatrix::new(3, 3);
/// for i in 0..3 { t.push(i, i, 1.0); }
/// t.push(0, 1, 1.0);
/// let perm = nested_dissection_ordering(&t.to_csc());
/// assert_eq!(perm.len(), 3);
/// ```
pub fn nested_dissection_ordering(a: &CscMatrix) -> Vec<usize> {
    nd_from_adjacency(&AdjacencyCsr::build(a))
}

/// [`nested_dissection_ordering`] on a pre-built symmetrized adjacency
/// (what the hybrid BTF ordering calls per large diagonal block).
pub(crate) fn nd_from_adjacency(adj: &AdjacencyCsr) -> Vec<usize> {
    let n = adj.len();
    let mut out = Vec::with_capacity(n);
    let global: Vec<usize> = (0..n).collect();
    nd_rec(adj, &global, &mut out);
    out
}

/// The top-level split [`nested_dissection_ordering`] would recurse on —
/// exposed so tests and regression guards can check separator quality
/// (the separator actually separates; neither part is close to the whole).
/// Patterns at or below the leaf cutoff return everything in `part_a`.
pub fn nested_dissection_split(a: &CscMatrix) -> NdSplit {
    let adj = AdjacencyCsr::build(a);
    let n = adj.len();
    if n <= ND_LEAF_CUTOFF {
        return NdSplit {
            part_a: (0..n).collect(),
            part_b: Vec::new(),
            separator: Vec::new(),
        };
    }
    let (part_a, part_b, separator) = bisect(&adj);
    NdSplit {
        part_a,
        part_b,
        separator,
    }
}

/// Recursive dissection of a local subgraph; `global[v]` is the original
/// vertex id of local vertex `v`. Appends the subgraph's ordering (in
/// original ids) to `out`.
fn nd_rec(adj: &AdjacencyCsr, global: &[usize], out: &mut Vec<usize>) {
    let n = adj.len();
    if n <= ND_LEAF_CUTOFF {
        let p = amd_from_adjacency(adj);
        out.extend(p.iter().map(|&v| global[v]));
        return;
    }
    let (part_a, part_b, sep) = bisect(adj);
    // Separator quality gate — the "do no harm" rule. Dissection only
    // pays when separators scale like a planar/2-D domain's, `O(√n)`
    // (the George separator theorem regime the grid substrate lives
    // in). Expander-like patterns (R-MAT cores) have no such cuts: BFS
    // bisection yields separators of a sizeable *fraction* of `n`, and
    // numbering those last inflates fill toward natural-order levels —
    // measured 41× AMD on the rmat1024 core even with a `n/8` cap,
    // because a marginal cut at every level compounds. A cut beyond
    // `4√n` (or a part under the balance floor) therefore falls back to
    // AMD for the whole subgraph, which keeps the hybrid's fill within
    // noise of pure AMD on substrates dissection cannot help. The gate
    // subsumes the degenerate cases (empty part, all-separator).
    let sep_cap = 4 * ((n as f64).sqrt() as usize) + 4;
    let poor = sep.len() > sep_cap
        || part_a.len() * BALANCE_DIVISOR < n
        || part_b.len() * BALANCE_DIVISOR < n;
    if poor {
        let p = amd_from_adjacency(adj);
        out.extend(p.iter().map(|&v| global[v]));
        return;
    }
    for part in [&part_a, &part_b] {
        if !part.is_empty() {
            let (sub, sub_global) = induced(adj, part, global);
            nd_rec(&sub, &sub_global, out);
        }
    }
    if !sep.is_empty() {
        let (sub, sub_global) = induced(adj, &sep, global);
        let p = amd_from_adjacency(&sub);
        out.extend(p.iter().map(|&v| sub_global[v]));
    }
}

/// One bisection: returns `(part_a, part_b, separator)` vertex lists (a
/// partition of `0..n`) such that no edge joins `part_a` and `part_b`.
fn bisect(adj: &AdjacencyCsr) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
    let n = adj.len();
    debug_assert!(n >= 2);

    // Pseudo-peripheral seed: two BFS sweeps from a minimum-degree start.
    let v0 = (0..n).min_by_key(|&v| adj.degree(v)).unwrap_or(0);
    let mut dist = vec![usize::MAX; n];
    let mut queue: Vec<usize> = Vec::with_capacity(n);
    let f1 = bfs_farthest(adj, v0, &mut dist, &mut queue);
    let f2 = bfs_farthest(adj, f1, &mut dist, &mut queue);

    // Region growing: a BFS wave from the peripheral vertex claims half
    // the vertices for side 0. When a connected component is exhausted
    // before the target, the wave restarts from the lowest unclaimed
    // vertex — disconnected patterns split along component lines for free.
    let target = n / 2;
    let mut side = vec![1u8; n];
    let mut seen = vec![false; n];
    queue.clear();
    queue.push(f2);
    seen[f2] = true;
    let (mut head, mut count, mut next_unseen) = (0usize, 0usize, 0usize);
    while count < target {
        if head == queue.len() {
            while next_unseen < n && seen[next_unseen] {
                next_unseen += 1;
            }
            if next_unseen >= n {
                break;
            }
            queue.push(next_unseen);
            seen[next_unseen] = true;
        }
        let v = queue[head];
        head += 1;
        side[v] = 0;
        count += 1;
        for &w in adj.neighbors(v) {
            if !seen[w] {
                seen[w] = true;
                queue.push(w);
            }
        }
    }
    let mut size = [count, n - count];

    // Greedy FM-flavoured refinement: move any vertex with more neighbors
    // across the cut than on its own side, while both sides stay above the
    // balance floor. Deterministic, `O(edges)` per pass.
    let min_side = (n / BALANCE_DIVISOR).max(1);
    for _ in 0..REFINE_PASSES {
        let mut moved = false;
        for v in 0..n {
            let s = side[v] as usize;
            if size[s] <= min_side {
                continue;
            }
            let (mut same, mut other) = (0usize, 0usize);
            for &w in adj.neighbors(v) {
                if side[w] == side[v] {
                    same += 1;
                } else {
                    other += 1;
                }
            }
            if other > same {
                side[v] ^= 1;
                size[s] -= 1;
                size[1 - s] += 1;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }

    // One-sided vertex separator: the side with the smaller edge boundary
    // donates that boundary. Every remaining vertex of the donating side
    // then has no neighbor on the other side, so the parts are decoupled.
    let boundary_size = |from: u8| {
        (0..n)
            .filter(|&v| side[v] == from && adj.neighbors(v).iter().any(|&w| side[w] != from))
            .count()
    };
    let sep_side = if boundary_size(1) < boundary_size(0) {
        1u8
    } else {
        0u8
    };
    let (mut part_a, mut part_b, mut sep) = (Vec::new(), Vec::new(), Vec::new());
    for v in 0..n {
        if side[v] == sep_side && adj.neighbors(v).iter().any(|&w| side[w] != sep_side) {
            sep.push(v);
        } else if side[v] == 0 {
            part_a.push(v);
        } else {
            part_b.push(v);
        }
    }
    (part_a, part_b, sep)
}

/// BFS from `seed`; returns the last farthest vertex reached (its own
/// component only — unreachable vertices keep `usize::MAX` distance).
fn bfs_farthest(
    adj: &AdjacencyCsr,
    seed: usize,
    dist: &mut [usize],
    queue: &mut Vec<usize>,
) -> usize {
    dist.fill(usize::MAX);
    queue.clear();
    queue.push(seed);
    dist[seed] = 0;
    let (mut head, mut far) = (0usize, seed);
    while head < queue.len() {
        let v = queue[head];
        head += 1;
        if dist[v] > dist[far] {
            far = v;
        }
        for &w in adj.neighbors(v) {
            if dist[w] == usize::MAX {
                dist[w] = dist[v] + 1;
                queue.push(w);
            }
        }
    }
    far
}

/// Induced subgraph over `verts` (local ids `0..verts.len()` in list
/// order), plus the original ids of the new local vertices.
fn induced(adj: &AdjacencyCsr, verts: &[usize], global: &[usize]) -> (AdjacencyCsr, Vec<usize>) {
    let mut local = vec![usize::MAX; adj.len()];
    for (i, &v) in verts.iter().enumerate() {
        local[v] = i;
    }
    let mut offsets = vec![0usize; verts.len() + 1];
    let mut count = 0usize;
    for (i, &v) in verts.iter().enumerate() {
        count += adj
            .neighbors(v)
            .iter()
            .filter(|&&w| local[w] != usize::MAX)
            .count();
        offsets[i + 1] = count;
    }
    let mut targets = Vec::with_capacity(count);
    for &v in verts {
        targets.extend(
            adj.neighbors(v)
                .iter()
                .filter(|&&w| local[w] != usize::MAX)
                .map(|&w| local[w]),
        );
    }
    let sub_global = verts.iter().map(|&v| global[v]).collect();
    (AdjacencyCsr { offsets, targets }, sub_global)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletMatrix;

    fn is_permutation(p: &[usize], n: usize) -> bool {
        let mut seen = vec![false; n];
        p.iter().all(|&i| {
            if i < n && !seen[i] {
                seen[i] = true;
                true
            } else {
                false
            }
        }) && p.len() == n
    }

    fn grid(side: usize) -> TripletMatrix {
        let n = side * side;
        let mut t = TripletMatrix::new(n, n);
        let id = |r: usize, c: usize| r * side + c;
        for r in 0..side {
            for c in 0..side {
                let me = id(r, c);
                t.push(me, me, 4.0);
                if r + 1 < side {
                    t.push(me, id(r + 1, c), -1.0);
                    t.push(id(r + 1, c), me, -1.0);
                }
                if c + 1 < side {
                    t.push(me, id(r, c + 1), -1.0);
                    t.push(id(r, c + 1), me, -1.0);
                }
            }
        }
        t
    }

    #[test]
    fn nd_handles_empty_and_tiny() {
        assert!(nested_dissection_ordering(&TripletMatrix::new(0, 0).to_csc()).is_empty());
        let mut t = TripletMatrix::new(1, 1);
        t.push(0, 0, 1.0);
        assert_eq!(nested_dissection_ordering(&t.to_csc()), vec![0]);
    }

    #[test]
    fn nd_is_a_permutation_on_random_patterns() {
        let mut lcg = 0x9E3779B97F4A7C15u64;
        let mut next = |m: usize| {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((lcg >> 33) as usize) % m
        };
        for trial in 0..25 {
            let n = 1 + next(400);
            let mut t = TripletMatrix::new(n, n);
            for _ in 0..next(4 * n + 1) {
                t.push(next(n), next(n), 1.0);
            }
            let p = nested_dissection_ordering(&t.to_csc());
            assert!(is_permutation(&p, n), "trial {trial}, n {n}");
        }
    }

    #[test]
    fn nd_is_a_permutation_on_disconnected_patterns() {
        // Two components, one above the leaf cutoff, one below.
        let n = ND_LEAF_CUTOFF + 60;
        let mut t = TripletMatrix::new(n, n);
        for i in 0..ND_LEAF_CUTOFF + 19 {
            t.push(i, i + 1, 1.0);
            t.push(i + 1, i, 1.0);
        }
        for i in ND_LEAF_CUTOFF + 20..n {
            t.push(i, i, 1.0);
        }
        let p = nested_dissection_ordering(&t.to_csc());
        assert!(is_permutation(&p, n));
    }

    #[test]
    fn split_separator_actually_separates() {
        let a = grid(20).to_csc();
        let split = nested_dissection_split(&a);
        let n = a.cols();
        assert_eq!(
            split.part_a.len() + split.part_b.len() + split.separator.len(),
            n
        );
        assert!(!split.part_a.is_empty() && !split.part_b.is_empty());
        // A 20x20 grid has a ~20-vertex separator; the parts must be real.
        assert!(split.separator.len() < n / 4, "{}", split.separator.len());
        let mut in_b = vec![false; n];
        for &v in &split.part_b {
            in_b[v] = true;
        }
        for &v in &split.part_a {
            for (r, _) in a.col(v) {
                assert!(!in_b[r], "edge {v}-{r} crosses the separator");
            }
        }
    }

    #[test]
    fn nd_confines_grid_fill() {
        // Sanity: on a 24x24 grid ND fill should land well below natural
        // order fill (the classic nested-dissection result).
        use crate::{ColumnOrdering, SparseLu, SparseLuOptions};
        let a = grid(24).to_csc();
        let natural = SparseLu::factor_with(
            &a,
            &SparseLuOptions {
                ordering: ColumnOrdering::Natural,
                ..Default::default()
            },
        )
        .unwrap();
        let nd = SparseLu::factor_with(
            &a,
            &SparseLuOptions {
                ordering: ColumnOrdering::NestedDissection,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            nd.factor_nnz() * 2 < natural.factor_nnz() * 3,
            "nd {} vs natural {}",
            nd.factor_nnz(),
            natural.factor_nnz()
        );
    }
}
