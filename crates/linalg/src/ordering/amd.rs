//! Approximate minimum degree on a quotient graph.
//!
//! The plain minimum-degree ordering in [`super::classic`] updates degrees
//! by literally merging the pivot's neighborhood into each neighbor — an
//! explicit clique that both over-allocates (the merged lists *are* the
//! fill) and over-counts (a variable reachable through two eliminated
//! pivots is stored twice until deduplicated). This module implements the
//! real AMD algorithm (Amestoy, Davis & Duff) instead:
//!
//! * **Quotient graph.** Eliminated pivots become *elements*: a variable's
//!   adjacency is a short list of elements plus its remaining original
//!   variable neighbors, never an explicit clique. All lists live in one
//!   flat workspace (`iw`) with per-node offsets, compacted by a mark-free
//!   garbage collection when the tail runs out.
//! * **Element absorption.** When pivot `me` is eliminated, every element
//!   adjacent to it is absorbed into the new element (their variables are
//!   subsumed by `Lme`), and any older element whose variables all lie in
//!   `Lme` is absorbed too — lists only ever shrink.
//! * **Approximate external degree.** The degree of a variable touched by
//!   the pivot is bounded by `|A_i \ Lme| + |Lme \ i| + Σ_e |Le \ Lme|`,
//!   with `|Le \ Lme|` for all touched elements computed in one scan via a
//!   stamped counter array — no set operations, no sorting.
//! * **Supervariables.** Variables of `Lme` with identical quotient-graph
//!   adjacency are *indistinguishable* — they can be eliminated
//!   consecutively without changing fill. They are detected by hashing
//!   each candidate's list and comparing within hash buckets, then merged
//!   into one supervariable (weighted by `nv`), which is what keeps the
//!   graph — and every later degree update — small.
//!
//! The result is the standard production ordering of sparse direct
//! solvers: near-linear-time in practice, and far less fill than the plain
//! minimum degree on expander-like patterns, where the clique-merge
//! version's over-counted degrees systematically mis-rank pivots.

use super::AdjacencyCsr;
use crate::CscMatrix;

const NONE: usize = usize::MAX;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeKind {
    /// Live variable (principal if `nv > 0`).
    Var,
    /// Eliminated pivot, still live as a quotient-graph element.
    Element,
    /// Absorbed element or variable merged into a supervariable.
    Dead,
}

/// Removes `i` (currently of degree `d`) from its degree list.
#[inline]
fn list_remove(i: usize, d: usize, dhead: &mut [usize], dnext: &mut [usize], dprev: &mut [usize]) {
    if dprev[i] != NONE {
        dnext[dprev[i]] = dnext[i];
    } else {
        dhead[d] = dnext[i];
    }
    if dnext[i] != NONE {
        dprev[dnext[i]] = dprev[i];
    }
}

/// Pushes `i` onto the front of degree list `d`.
#[inline]
fn list_push(i: usize, d: usize, dhead: &mut [usize], dnext: &mut [usize], dprev: &mut [usize]) {
    dprev[i] = NONE;
    dnext[i] = dhead[d];
    if dhead[d] != NONE {
        dprev[dhead[d]] = i;
    }
    dhead[d] = i;
}

/// Approximate-minimum-degree ordering of the symmetrized pattern of `a`.
///
/// Returns `perm` with `perm[k]` = original index of the column eliminated
/// at step `k`. Deterministic for a given pattern. Any pattern is accepted
/// — structural singularity is the factorization's problem, not the
/// ordering's.
///
/// # Example
///
/// ```
/// use ohmflow_linalg::{amd_ordering, TripletMatrix};
///
/// let mut t = TripletMatrix::new(3, 3);
/// for i in 0..3 { t.push(i, i, 1.0); }
/// t.push(0, 1, 1.0);
/// t.push(1, 2, 1.0);
/// let perm = amd_ordering(&t.to_csc());
/// assert_eq!(perm.len(), 3);
/// ```
pub fn amd_ordering(a: &CscMatrix) -> Vec<usize> {
    amd_from_adjacency(&AdjacencyCsr::build(a))
}

/// [`amd_ordering`] on a pre-built symmetrized adjacency.
pub(crate) fn amd_from_adjacency(adj: &AdjacencyCsr) -> Vec<usize> {
    let n = adj.len();
    if n == 0 {
        return Vec::new();
    }

    // Flat list workspace: node `i`'s list is
    // `iw[pe[i] .. pe[i] + len[i]]`, with the first `elen[i]` entries
    // being elements (variables only; elements store plain var lists with
    // `elen` unused). Initially a copy of the adjacency with headroom.
    let mut iw: Vec<usize> = Vec::with_capacity(adj.edge_count() + n + 1);
    let mut pe = vec![0usize; n];
    let mut len = vec![0usize; n];
    let mut elen = vec![0usize; n];
    for i in 0..n {
        pe[i] = iw.len();
        iw.extend_from_slice(adj.neighbors(i));
        len[i] = adj.degree(i);
    }
    let mut pfree = iw.len();
    // Headroom for the first element's variable list; later shortfalls go
    // through garbage collection plus growth.
    iw.resize(pfree + n + 1, 0);

    let mut kind = vec![NodeKind::Var; n];
    // Supervariable weight; negated while the variable sits in `Lme`.
    let mut nv: Vec<isize> = vec![1; n];
    let mut degree: Vec<usize> = (0..n).map(|i| adj.degree(i)).collect();

    // Stamped multipurpose workspace: `|Le \ Lme|` counters in the degree
    // pass, adjacency marks in the supervariable comparison.
    let mut w = vec![0u64; n];
    let mut wflg = 0u64;

    // Degree lists.
    let mut dhead = vec![NONE; n];
    let mut dnext = vec![NONE; n];
    let mut dprev = vec![NONE; n];
    for i in (0..n).rev() {
        list_push(i, degree[i], &mut dhead, &mut dnext, &mut dprev);
    }
    let mut min_deg = 0usize;

    // Supervariable member chains (for expanding the final ordering) and
    // the per-pivot hash buckets.
    let mut mem_next = vec![NONE; n];
    let mut mem_tail: Vec<usize> = (0..n).collect();
    let mut hash_of = vec![0u64; n];
    let mut hhead = vec![NONE; n];
    let mut hnext = vec![NONE; n];
    let mut hstamp = vec![0u64; n];
    let mut hdone = vec![0u64; n];
    let mut pivot_tag = 0u64;

    let mut order = Vec::with_capacity(n);
    let mut nel = 0usize;

    while nel < n {
        // --- Pivot selection: head of the lowest non-empty bucket. ---
        while dhead[min_deg] == NONE {
            min_deg += 1;
        }
        let me = dhead[min_deg];
        list_remove(me, min_deg, &mut dhead, &mut dnext, &mut dprev);
        let nvpiv = nv[me] as usize;
        nel += nvpiv;
        nv[me] = -(nvpiv as isize);
        pivot_tag += 1;

        // --- Build Lme (the new element's variables) at the tail. ---
        if pfree + n > iw.len() {
            garbage_collect(&mut iw, &mut pe, &len, &kind, &nv, n, &mut pfree);
            if pfree + n > iw.len() {
                iw.resize(pfree + n + iw.len() / 2, 0);
            }
        }
        let lme_start = pfree;
        // Variables adjacent to `me` directly...
        for idx in pe[me] + elen[me]..pe[me] + len[me] {
            let j = iw[idx];
            if kind[j] == NodeKind::Var && nv[j] > 0 {
                list_remove(j, degree[j], &mut dhead, &mut dnext, &mut dprev);
                nv[j] = -nv[j];
                iw[pfree] = j;
                pfree += 1;
            }
        }
        // ...and through its elements, which are absorbed into `me`.
        for idx in pe[me]..pe[me] + elen[me] {
            let e = iw[idx];
            if kind[e] != NodeKind::Element {
                continue;
            }
            for eidx in pe[e]..pe[e] + len[e] {
                let j = iw[eidx];
                if kind[j] == NodeKind::Var && nv[j] > 0 {
                    list_remove(j, degree[j], &mut dhead, &mut dnext, &mut dprev);
                    nv[j] = -nv[j];
                    iw[pfree] = j;
                    pfree += 1;
                }
            }
            kind[e] = NodeKind::Dead;
        }
        let lme_len = pfree - lme_start;
        kind[me] = NodeKind::Element;
        pe[me] = lme_start;
        len[me] = lme_len;
        elen[me] = 0;
        let lme_size: usize = iw[lme_start..lme_start + lme_len]
            .iter()
            .map(|&j| (-nv[j]) as usize)
            .sum();

        // --- Pass 1: |Le \ Lme| for every element touching Lme. ---
        // `w[e]` is seeded with `wflg + |Le|` on first touch and loses the
        // weight of each Lme member adjacent to `e`; what remains above
        // `wflg` is exactly the external part. Seeded values reach at most
        // `wflg + n`, so the marker must jump past that range each time or
        // a stale counter from a previous pivot would read as current.
        wflg += n as u64 + 2;
        for li in 0..lme_len {
            let i = iw[lme_start + li];
            let wi = (-nv[i]) as u64;
            for idx in pe[i]..pe[i] + elen[i] {
                let e = iw[idx];
                if kind[e] != NodeKind::Element {
                    continue;
                }
                if w[e] < wflg {
                    let size: usize = iw[pe[e]..pe[e] + len[e]]
                        .iter()
                        .filter(|&&j| kind[j] == NodeKind::Var)
                        .map(|&j| nv[j].unsigned_abs())
                        .sum();
                    w[e] = wflg + size as u64;
                }
                w[e] -= wi;
            }
        }

        // --- Pass 2: degree update, list pruning, hashing. ---
        for li in 0..lme_len {
            let i = iw[lme_start + li];
            let wi = (-nv[i]) as usize;
            let p1 = pe[i];
            let e_end = p1 + elen[i];
            let v_end = p1 + len[i];
            let mut pn = p1;
            let mut deg = 0usize;
            let mut hash = 0u64;
            // Keep live elements with a nonzero external part; absorb the
            // rest into `me` (their variables are all in Lme).
            for idx in p1..e_end {
                let e = iw[idx];
                if kind[e] != NodeKind::Element {
                    continue;
                }
                let external = (w[e] - wflg) as usize;
                if external == 0 {
                    kind[e] = NodeKind::Dead;
                } else {
                    deg += external;
                    iw[pn] = e;
                    pn += 1;
                    hash = hash.wrapping_add(e as u64);
                }
            }
            let kept_elems = pn - p1;
            // Keep live principal variables outside Lme (members of Lme
            // are connected through `me` from now on).
            for idx in e_end..v_end {
                let j = iw[idx];
                if kind[j] == NodeKind::Var && nv[j] > 0 {
                    deg += nv[j] as usize;
                    iw[pn] = j;
                    pn += 1;
                    hash = hash.wrapping_add(j as u64);
                }
            }
            // Insert `me` at the end of the element sublist. The pruned
            // list is at least one shorter than the original (`i` reached
            // Lme through `me`'s own list or an absorbed element, either
            // of which freed a slot), so slot `pn` is within the extent.
            // A hard assert: if the invariant ever broke, writing at `pn`
            // would silently corrupt the next node's list.
            assert!(pn < v_end, "pruning freed no slot for me");
            if pn > p1 + kept_elems {
                iw[pn] = iw[p1 + kept_elems]; // first var moves to the end
            }
            iw[p1 + kept_elems] = me;
            elen[i] = kept_elems + 1;
            len[i] = pn + 1 - p1;
            // Approximate external degree (weighted), clamped by the exact
            // upper bounds: live variables left, and the previous degree
            // grown by the new element only.
            let lme_ext = lme_size - wi;
            let d = (deg + lme_ext).min(degree[i] + lme_ext).min(n - nel);
            degree[i] = d;
            hash_of[i] = hash;
        }

        // --- Pass 3: supervariable detection within Lme. ---
        // Hash buckets over the updated lists; exact list comparison
        // (stamped marks) inside each bucket; equal pairs merge weights
        // and member chains. The comparison markers must clear the pass-1
        // counter range (up to `wflg + n`), hence another full jump.
        wflg += n as u64 + 2;
        for li in 0..lme_len {
            let i = iw[lme_start + li];
            if nv[i] == 0 {
                continue;
            }
            let b = (hash_of[i] % n as u64) as usize;
            if hstamp[b] != pivot_tag {
                hstamp[b] = pivot_tag;
                hhead[b] = NONE;
            }
            hnext[i] = hhead[b];
            hhead[b] = i;
        }
        for li in 0..lme_len {
            let i = iw[lme_start + li];
            if nv[i] == 0 {
                continue;
            }
            let b = (hash_of[i] % n as u64) as usize;
            if hdone[b] == pivot_tag {
                continue;
            }
            hdone[b] = pivot_tag;
            let mut x = hhead[b];
            while x != NONE {
                if nv[x] != 0 {
                    // Mark x's adjacency, then test every later chain
                    // member for an identical list.
                    wflg += 1;
                    for idx in pe[x]..pe[x] + len[x] {
                        w[iw[idx]] = wflg;
                    }
                    let mut y = hnext[x];
                    while y != NONE {
                        let identical = nv[y] != 0
                            && len[y] == len[x]
                            && elen[y] == elen[x]
                            && iw[pe[y]..pe[y] + len[y]].iter().all(|&z| w[z] == wflg);
                        if identical {
                            // y is indistinguishable from x: absorb.
                            nv[x] += nv[y]; // both negative: weights add
                            nv[y] = 0;
                            kind[y] = NodeKind::Dead;
                            mem_next[mem_tail[x]] = y;
                            mem_tail[x] = mem_tail[y];
                        }
                        y = hnext[y];
                    }
                }
                x = hnext[x];
            }
        }

        // --- Pass 4: restore weights, requeue survivors, compact Lme. ---
        let mut keep = 0usize;
        for li in 0..lme_len {
            let j = iw[lme_start + li];
            if nv[j] < 0 {
                nv[j] = -nv[j];
                let d = degree[j];
                list_push(j, d, &mut dhead, &mut dnext, &mut dprev);
                min_deg = min_deg.min(d);
                iw[lme_start + keep] = j;
                keep += 1;
            }
        }
        len[me] = keep;
        if keep == 0 {
            kind[me] = NodeKind::Dead; // element with no variables is inert
        }

        // --- Emit the pivot supervariable's members. ---
        let mut x = me;
        while x != NONE {
            order.push(x);
            x = mem_next[x];
        }
    }
    debug_assert_eq!(order.len(), n);
    order
}

/// Compacts every live list to the front of `iw`, in current offset order,
/// and rewinds `pfree`. Lists never overlap and only move left, so
/// `copy_within` suffices.
fn garbage_collect(
    iw: &mut [usize],
    pe: &mut [usize],
    len: &[usize],
    kind: &[NodeKind],
    nv: &[isize],
    n: usize,
    pfree: &mut usize,
) {
    let mut live: Vec<usize> = (0..n)
        .filter(|&i| match kind[i] {
            NodeKind::Var => nv[i] != 0,
            NodeKind::Element => true,
            NodeKind::Dead => false,
        })
        .collect();
    live.sort_unstable_by_key(|&i| pe[i]);
    let mut write = 0usize;
    for i in live {
        let start = pe[i];
        iw.copy_within(start..start + len[i], write);
        pe[i] = write;
        write += len[i];
    }
    *pfree = write;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ordering::min_degree_ordering;
    use crate::TripletMatrix;

    fn is_permutation(p: &[usize], n: usize) -> bool {
        let mut seen = vec![false; n];
        p.iter().all(|&i| {
            if i < n && !seen[i] {
                seen[i] = true;
                true
            } else {
                false
            }
        }) && p.len() == n
    }

    fn chain(n: usize) -> CscMatrix {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.0);
            if i + 1 < n {
                t.push(i, i + 1, -1.0);
                t.push(i + 1, i, -1.0);
            }
        }
        t.to_csc()
    }

    fn grid(side: usize) -> CscMatrix {
        let n = side * side;
        let mut t = TripletMatrix::new(n, n);
        let id = |r: usize, c: usize| r * side + c;
        for r in 0..side {
            for c in 0..side {
                let me = id(r, c);
                t.push(me, me, 4.0);
                if r + 1 < side {
                    t.push(me, id(r + 1, c), -1.0);
                    t.push(id(r + 1, c), me, -1.0);
                }
                if c + 1 < side {
                    t.push(me, id(r, c + 1), -1.0);
                    t.push(id(r, c + 1), me, -1.0);
                }
            }
        }
        t.to_csc()
    }

    /// Fill of a symbolic Cholesky-style elimination of the symmetrized
    /// pattern under `perm` — the ordering-quality metric both orderings
    /// are compared on (exact, set-based; test-only).
    fn symbolic_fill(a: &CscMatrix, perm: &[usize]) -> usize {
        use std::collections::BTreeSet;
        let n = a.cols();
        let mut adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
        for c in 0..n {
            for (r, _) in a.col(c) {
                if r != c {
                    adj[c].insert(r);
                    adj[r].insert(c);
                }
            }
        }
        let mut pos = vec![0usize; n];
        for (k, &v) in perm.iter().enumerate() {
            pos[v] = k;
        }
        let mut fill = 0usize;
        for &p in perm {
            let nbrs: Vec<usize> = adj[p]
                .iter()
                .copied()
                .filter(|&u| pos[u] > pos[p])
                .collect();
            fill += nbrs.len();
            for &u in &nbrs {
                for &v in &nbrs {
                    if u != v {
                        adj[u].insert(v);
                    }
                }
                adj[u].remove(&p);
            }
        }
        fill
    }

    #[test]
    fn amd_is_a_permutation_on_basic_shapes() {
        assert!(is_permutation(&amd_ordering(&chain(17)), 17));
        assert!(is_permutation(&amd_ordering(&grid(7)), 49));
        assert!(amd_ordering(&TripletMatrix::new(0, 0).to_csc()).is_empty());
    }

    #[test]
    fn amd_handles_disconnected_and_dense_rows() {
        let mut t = TripletMatrix::new(8, 8);
        for i in 0..8 {
            t.push(i, i, 1.0);
        }
        // Component {0,1}, isolated {2..5}, and a dense row 6.
        t.push(0, 1, 1.0);
        t.push(1, 0, 1.0);
        for j in 0..8 {
            t.push(6, j, 1.0);
        }
        assert!(is_permutation(&amd_ordering(&t.to_csc()), 8));
    }

    #[test]
    fn amd_eliminates_star_leaves_first() {
        let mut t = TripletMatrix::new(6, 6);
        for i in 0..6 {
            t.push(i, i, 1.0);
        }
        for leaf in 1..6 {
            t.push(0, leaf, 1.0);
            t.push(leaf, 0, 1.0);
        }
        let perm = amd_ordering(&t.to_csc());
        let center_pos = perm.iter().position(|&v| v == 0).expect("center");
        // Leaves are indistinguishable degree-1 supervariables; the center
        // must come after at least the first leaf group.
        assert!(center_pos >= 1, "center too early: {perm:?}");
        assert!(is_permutation(&perm, 6));
    }

    #[test]
    fn amd_merges_indistinguishable_variables() {
        // K4 plus a pendant: the four clique members minus the pendant's
        // anchor are indistinguishable after the pendant is eliminated;
        // the ordering must still be valid and fill-free-ish.
        let mut t = TripletMatrix::new(5, 5);
        for i in 0..5 {
            t.push(i, i, 1.0);
        }
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    t.push(i, j, 1.0);
                }
            }
        }
        t.push(4, 0, 1.0);
        t.push(0, 4, 1.0);
        let a = t.to_csc();
        let perm = amd_ordering(&a);
        assert!(is_permutation(&perm, 5));
        // A clique has zero fill under any order that eliminates the
        // pendant first; AMD must find a zero-extra-fill order here.
        assert_eq!(
            symbolic_fill(&a, &perm),
            symbolic_fill(&a, &[4, 0, 1, 2, 3])
        );
    }

    #[test]
    fn amd_fill_no_worse_than_min_degree_on_random_patterns() {
        // AMD's *approximate* degrees can lose to exact minimum degree on
        // an individual instance, but across a batch of patterns it must
        // be at least competitive in total — that is its entire point.
        let mut lcg = 0xABCDEF0102030405u64;
        let mut next = |m: usize| {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((lcg >> 33) as usize) % m
        };
        let (mut amd_total, mut md_total) = (0usize, 0usize);
        for _ in 0..20 {
            let n = 20 + next(40);
            let mut t = TripletMatrix::new(n, n);
            for i in 0..n {
                t.push(i, i, 1.0);
            }
            for _ in 0..(3 * n) {
                t.push(next(n), next(n), 1.0);
            }
            let a = t.to_csc();
            let amd = amd_ordering(&a);
            assert!(is_permutation(&amd, n));
            amd_total += symbolic_fill(&a, &amd);
            md_total += symbolic_fill(&a, &min_degree_ordering(&a));
        }
        assert!(
            amd_total <= md_total + md_total / 10,
            "AMD fill {amd_total} far above min-degree {md_total}"
        );
    }

    #[test]
    fn amd_grid_fill_beats_natural_order() {
        let a = grid(20);
        let natural: Vec<usize> = (0..a.cols()).collect();
        let amd = amd_ordering(&a);
        assert!(is_permutation(&amd, a.cols()));
        let f_amd = symbolic_fill(&a, &amd);
        let f_nat = symbolic_fill(&a, &natural);
        assert!(
            2 * f_amd < f_nat,
            "AMD fill {f_amd} not clearly below natural {f_nat}"
        );
    }

    #[test]
    fn amd_is_deterministic() {
        let a = grid(9);
        assert_eq!(amd_ordering(&a), amd_ordering(&a));
    }

    #[test]
    fn amd_survives_workspace_garbage_collection() {
        // A tight initial workspace forces the GC path: build a pattern
        // with heavy fill (random + ring) and check validity end to end.
        let mut lcg = 0x1234u64;
        let mut next = |m: usize| {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((lcg >> 33) as usize) % m
        };
        let n = 120;
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 1.0);
            t.push(i, (i + 1) % n, 1.0);
            t.push((i + 1) % n, i, 1.0);
        }
        for _ in 0..(2 * n) {
            t.push(next(n), next(n), 1.0);
        }
        assert!(is_permutation(&amd_ordering(&t.to_csc()), n));
    }
}
