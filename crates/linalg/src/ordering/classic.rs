//! The original greedy orderings: plain minimum degree (kept as the fill
//! oracle the quotient-graph AMD is validated against) and reverse
//! Cuthill–McKee.
//!
//! Both read the shared flat-CSR symmetrized adjacency
//! ([`super::AdjacencyCsr`]) — offsets plus one index buffer — instead of
//! allocating a `Vec` per row; only the minimum degree's *mutable* working
//! lists are materialized per vertex, because elimination rewrites them.

use super::AdjacencyCsr;
use crate::CscMatrix;

/// Greedy minimum-degree ordering on the symmetrized pattern of `a`.
///
/// Returns a permutation `perm` such that `perm[k]` is the original index of
/// the column eliminated at step `k`. This is a plain (quotient-graph-free)
/// minimum-degree: degrees are updated by merging the pivot's neighborhood
/// into each neighbor. It survives as the **test oracle** for
/// [`amd_ordering`](super::amd_ordering) — exact degrees, trivially
/// auditable — and as an explicit [`ColumnOrdering::MinDegree`] choice;
/// production factorizations default to the AMD+BTF path.
///
/// [`ColumnOrdering::MinDegree`]: crate::ColumnOrdering::MinDegree
///
/// # Example
///
/// ```
/// use ohmflow_linalg::{min_degree_ordering, TripletMatrix};
///
/// let mut t = TripletMatrix::new(3, 3);
/// for i in 0..3 { t.push(i, i, 1.0); }
/// t.push(0, 1, 1.0);
/// t.push(1, 2, 1.0);
/// let perm = min_degree_ordering(&t.to_csc());
/// assert_eq!(perm.len(), 3);
/// ```
pub fn min_degree_ordering(a: &CscMatrix) -> Vec<usize> {
    let n = a.cols();
    let csr = AdjacencyCsr::build(a);
    // Elimination rewrites each vertex's list, so the immutable CSR is
    // expanded into per-vertex working lists here (and only here).
    let mut adj: Vec<Vec<usize>> = (0..n).map(|v| csr.neighbors(v).to_vec()).collect();
    let mut eliminated = vec![false; n];
    let mut degree: Vec<usize> = adj.iter().map(Vec::len).collect();
    let mut perm = Vec::with_capacity(n);

    // Bucketed selection: `buckets[d]` holds the live vertices of current
    // degree `d` as an ordered set, so the pivot — the minimum
    // `(degree, index)` pair, the same tie-break the historical linear scan
    // applied — pops in `O(log n)` instead of an `O(n)` scan per round.
    // `min_deg` only moves down when an update lowers a degree below it and
    // climbs past drained buckets otherwise, so bucket maintenance is
    // `O((moves + n) log n)` overall instead of the old `O(n²)` selection.
    // The clique merges below dedup through a stamp array and reuse two
    // scratch buffers instead of allocating/sorting per neighbor — the
    // resulting permutation is identical (degrees are set sizes and the
    // selection tie-breaks on vertex index, neither depends on adjacency
    // order), but a full factorization stops being dominated by the
    // ordering phase.
    let mut buckets: Vec<std::collections::BTreeSet<usize>> = vec![Default::default(); n + 1];
    for (v, &d) in degree.iter().enumerate() {
        buckets[d].insert(v);
    }
    let mut min_deg = 0usize;
    let mut nbrs: Vec<usize> = Vec::new();
    let mut merged: Vec<usize> = Vec::new();
    let mut stamp = vec![usize::MAX; n];
    for round in 0..n {
        while buckets[min_deg].is_empty() {
            min_deg += 1;
        }
        let p = *buckets[min_deg]
            .first()
            .expect("invariant: the minimum-degree bucket is nonempty");
        buckets[min_deg].remove(&p);
        eliminated[p] = true;
        perm.push(p);

        // Form the clique of p's remaining neighbors.
        nbrs.clear();
        nbrs.extend(adj[p].iter().copied().filter(|&u| !eliminated[u]));
        for ui in 0..nbrs.len() {
            let u = nbrs[ui];
            // Merge: u's new neighborhood is (old ∪ nbrs) \ {u, eliminated}.
            merged.clear();
            let tag = round * n + ui; // unique per (round, neighbor)
            for &w in adj[u].iter().chain(&nbrs) {
                if w != u && !eliminated[w] && stamp[w] != tag {
                    stamp[w] = tag;
                    merged.push(w);
                }
            }
            if degree[u] != merged.len() {
                buckets[degree[u]].remove(&u);
                buckets[merged.len()].insert(u);
                degree[u] = merged.len();
                min_deg = min_deg.min(merged.len());
            }
            adj[u].clear();
            adj[u].extend_from_slice(&merged);
        }
        adj[p] = Vec::new();
    }
    perm
}

/// Reverse Cuthill–McKee ordering on the symmetrized pattern of `a`.
///
/// Produces a bandwidth-reducing permutation; useful as an alternative to
/// [`min_degree_ordering`] for long chain-like circuits. Reads the shared
/// CSR adjacency directly — BFS never mutates the graph.
pub fn reverse_cuthill_mckee(a: &CscMatrix) -> Vec<usize> {
    let n = a.cols();
    let adj = AdjacencyCsr::build(a);
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);

    // BFS from the lowest-degree vertex of each component.
    while let Some(start) = (0..n)
        .filter(|&v| !visited[v])
        .min_by_key(|&v| adj.degree(v))
    {
        let mut queue = std::collections::VecDeque::new();
        visited[start] = true;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let mut nbrs: Vec<usize> = adj
                .neighbors(v)
                .iter()
                .copied()
                .filter(|&u| !visited[u])
                .collect();
            nbrs.sort_unstable_by_key(|&u| adj.degree(u));
            for u in nbrs {
                visited[u] = true;
                queue.push_back(u);
            }
        }
    }
    order.reverse();
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletMatrix;

    fn chain(n: usize) -> CscMatrix {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.0);
            if i + 1 < n {
                t.push(i, i + 1, -1.0);
                t.push(i + 1, i, -1.0);
            }
        }
        t.to_csc()
    }

    fn is_permutation(p: &[usize], n: usize) -> bool {
        let mut seen = vec![false; n];
        p.iter().all(|&i| {
            if i < n && !seen[i] {
                seen[i] = true;
                true
            } else {
                false
            }
        }) && p.len() == n
    }

    #[test]
    fn min_degree_is_a_permutation() {
        let a = chain(17);
        assert!(is_permutation(&min_degree_ordering(&a), 17));
    }

    #[test]
    fn rcm_is_a_permutation() {
        let a = chain(17);
        assert!(is_permutation(&reverse_cuthill_mckee(&a), 17));
    }

    #[test]
    fn min_degree_eliminates_leaves_first_on_star() {
        // Star graph: center 0 connected to 1..=4. Leaves have degree 1 and
        // must all be eliminated before the center.
        let mut t = TripletMatrix::new(5, 5);
        for i in 0..5 {
            t.push(i, i, 1.0);
        }
        for leaf in 1..5 {
            t.push(0, leaf, 1.0);
            t.push(leaf, 0, 1.0);
        }
        let perm = min_degree_ordering(&t.to_csc());
        // The center (degree 4) must not be eliminated while any leaf still
        // has a strictly smaller degree; after three leaves go, the center
        // ties at degree 1 and either order is a valid minimum degree.
        let center_pos = perm.iter().position(|&v| v == 0).expect("center present");
        assert!(center_pos >= 3, "center eliminated too early: {perm:?}");
    }

    /// The historical O(n²) selection scan over `Vec<Vec>` adjacency, kept
    /// verbatim as the oracle for the bucketed version: minimum degree,
    /// ties broken by vertex index.
    fn min_degree_reference(a: &CscMatrix) -> Vec<usize> {
        let n = a.cols();
        let csr = AdjacencyCsr::build(a);
        let mut adj: Vec<Vec<usize>> = (0..n).map(|v| csr.neighbors(v).to_vec()).collect();
        let mut eliminated = vec![false; n];
        let mut degree: Vec<usize> = adj.iter().map(Vec::len).collect();
        let mut perm = Vec::with_capacity(n);
        for _ in 0..n {
            let mut best = usize::MAX;
            let mut best_deg = usize::MAX;
            for v in 0..n {
                if !eliminated[v] && degree[v] < best_deg {
                    best_deg = degree[v];
                    best = v;
                    if best_deg == 0 {
                        break;
                    }
                }
            }
            let p = best;
            eliminated[p] = true;
            perm.push(p);
            let nbrs: Vec<usize> = adj[p].iter().copied().filter(|&u| !eliminated[u]).collect();
            for &u in &nbrs {
                let mut merged: Vec<usize> = adj[u]
                    .iter()
                    .chain(&nbrs)
                    .copied()
                    .filter(|&w| w != u && !eliminated[w])
                    .collect();
                merged.sort_unstable();
                merged.dedup();
                degree[u] = merged.len();
                adj[u] = merged;
            }
            adj[p] = Vec::new();
        }
        perm
    }

    #[test]
    fn bucketed_selection_matches_reference_scan() {
        // Deterministic pseudo-random patterns of assorted shapes: the
        // bucketed (degree, index) pop must reproduce the scan exactly.
        let mut lcg = 0x2545F4914F6CDD1Du64;
        let mut next = |m: usize| {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((lcg >> 33) as usize) % m
        };
        for trial in 0..30 {
            let n = 2 + next(40);
            let mut t = TripletMatrix::new(n, n);
            for i in 0..n {
                t.push(i, i, 1.0);
            }
            for _ in 0..(1 + next(3 * n)) {
                t.push(next(n), next(n), 1.0);
            }
            let a = t.to_csc();
            assert_eq!(
                min_degree_ordering(&a),
                min_degree_reference(&a),
                "trial {trial} (n = {n})"
            );
        }
    }

    #[test]
    fn handles_empty_matrix() {
        let t = TripletMatrix::new(0, 0);
        assert!(min_degree_ordering(&t.to_csc()).is_empty());
        assert!(reverse_cuthill_mckee(&t.to_csc()).is_empty());
    }

    #[test]
    fn handles_disconnected_components() {
        let mut t = TripletMatrix::new(4, 4);
        for i in 0..4 {
            t.push(i, i, 1.0);
        }
        t.push(0, 1, 1.0);
        t.push(1, 0, 1.0);
        // component {2}, {3} isolated
        assert!(is_permutation(&min_degree_ordering(&t.to_csc()), 4));
        assert!(is_permutation(&reverse_cuthill_mckee(&t.to_csc()), 4));
    }
}
