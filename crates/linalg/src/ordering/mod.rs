//! Fill-reducing orderings and block-triangular permutations for sparse
//! factorization.
//!
//! Circuit MNA matrices are unsymmetric in values but nearly symmetric in
//! structure, so the fill-reducing orderings work on the symmetrized
//! pattern `A + Aᵀ` — the standard practice in SPICE-class solvers. The
//! subsystem has three layers:
//!
//! * [`classic`] — the original greedy minimum-degree and reverse
//!   Cuthill–McKee orderings. Minimum degree is kept primarily as the
//!   *fill-count oracle* the AMD implementation is tested against.
//! * [`amd`] — a true approximate-minimum-degree ordering on a quotient
//!   graph: supervariables (hash-based indistinguishable-node detection),
//!   element absorption and approximate external degrees. This is the
//!   production ordering; on expander-shaped patterns (R-MAT substrates)
//!   it cuts fill dramatically versus the plain minimum degree, whose
//!   clique-merge degree updates both over-count and dominate runtime.
//! * [`btf`] — block-triangular form: a maximum transversal
//!   (augmenting-path matching) makes the diagonal structurally nonzero,
//!   Tarjan's SCC algorithm on the matched graph yields the diagonal
//!   blocks, and each block is then ordered independently by AMD
//!   ([`amd_btf_ordering`]). The factorization of a block-triangular
//!   permutation never fills below a diagonal block, so every block
//!   factors as if it were its own (much smaller) matrix.
//! * [`nd`] — nested dissection: recursive bisection with vertex
//!   separators numbered last, AMD on the leaf subdomains
//!   ([`nested_dissection_ordering`]). Separators are what keep the
//!   sparse triangular-solve reaches local on an *irreducible* block that
//!   BTF cannot split further; [`amd_btf_nd_ordering`] therefore runs
//!   both ND and AMD on every diagonal BTF block of at least
//!   [`ND_BLOCK_CUTOFF`] unknowns and keeps whichever the exact
//!   no-pivoting fill count ([`fill`]) says is cheaper (AMD on the small
//!   ones) — the production default.
//!
//! All three layers share one flat-CSR symmetrized adjacency
//! ([`AdjacencyCsr`]): offsets plus a single index buffer, built with two
//! counting passes and a stamp-array dedup — no per-row allocation, so
//! ordering construction stays a small fraction of factorization time.

mod amd;
mod btf;
mod classic;
mod fill;
mod nd;

pub use amd::amd_ordering;
pub use btf::{block_triangular_form, maximum_transversal, BtfStructure};
pub use classic::{min_degree_ordering, reverse_cuthill_mckee};
pub use nd::{nested_dissection_ordering, nested_dissection_split, NdSplit};

use crate::CscMatrix;

/// The symmetrized pattern `A + Aᵀ` (self-loops removed, duplicates
/// removed) in flat CSR form: `targets[offsets[v]..offsets[v + 1]]` are the
/// neighbors of vertex `v`, in first-occurrence order of the column walk.
///
/// One offsets array and one index buffer replace the historical
/// `Vec<Vec<usize>>`: the build allocates exactly three vectors regardless
/// of `n`, and every ordering (minimum degree, RCM, AMD) reads the same
/// structure.
#[derive(Debug, Clone)]
pub(crate) struct AdjacencyCsr {
    offsets: Vec<usize>,
    targets: Vec<usize>,
}

impl AdjacencyCsr {
    /// Builds the symmetrized adjacency of `a`.
    pub(crate) fn build(a: &CscMatrix) -> Self {
        let n = a.cols();
        // Pass 1: per-vertex counts with duplicates (upper bounds).
        let mut counts = vec![0usize; n];
        for c in 0..n {
            for (r, _) in a.col(c) {
                if r != c && r < n {
                    counts[c] += 1;
                    counts[r] += 1;
                }
            }
        }
        let mut offsets = vec![0usize; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + counts[v];
        }
        // Pass 2: scatter both directions of every off-diagonal entry.
        let mut cursor = offsets.clone();
        let mut targets = vec![0usize; offsets[n]];
        for c in 0..n {
            for (r, _) in a.col(c) {
                if r != c && r < n {
                    targets[cursor[c]] = r;
                    cursor[c] += 1;
                    targets[cursor[r]] = c;
                    cursor[r] += 1;
                }
            }
        }
        // Pass 3: dedup each row in place with a stamp array, compacting
        // left — the write cursor never passes the read cursor, so no
        // second buffer is needed. Offsets are rewritten as rows shrink.
        let mut stamp = vec![usize::MAX; n];
        let mut write = 0usize;
        let mut row_start = 0usize;
        for v in 0..n {
            let row_end = offsets[v + 1];
            offsets[v] = write;
            for read in row_start..row_end {
                let w = targets[read];
                if stamp[w] != v {
                    stamp[w] = v;
                    targets[write] = w;
                    write += 1;
                }
            }
            row_start = row_end;
        }
        offsets[n] = write;
        targets.truncate(write);
        AdjacencyCsr { offsets, targets }
    }

    /// Vertex count.
    pub(crate) fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Neighbors of `v` (no self-loop, no duplicates).
    pub(crate) fn neighbors(&self, v: usize) -> &[usize] {
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Degree of `v`.
    pub(crate) fn degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Total stored directed edges (each undirected edge counts twice).
    pub(crate) fn edge_count(&self) -> usize {
        self.targets.len()
    }
}

/// A block-aware column ordering: the composition of a block-triangular
/// permutation with an independent AMD ordering of every diagonal block —
/// what [`ColumnOrdering::AmdBtf`] feeds the factorization.
///
/// [`ColumnOrdering::AmdBtf`]: crate::ColumnOrdering::AmdBtf
#[derive(Debug, Clone)]
pub struct BlockOrdering {
    /// Column ordering: column `perm[k]` is eliminated at pivot step `k`.
    pub perm: Vec<usize>,
    /// Block boundaries in pivot-step space: block `t` owns steps
    /// `block_ptr[t]..block_ptr[t + 1]`. Always covers `0..n`.
    pub block_ptr: Vec<usize>,
    /// Structurally matched row of the column at each step — the preferred
    /// pivot: the maximum transversal guarantees it is nonzero in the
    /// block's submatrix, so threshold pivoting keeps a structural anchor
    /// even for zero-diagonal columns (branch-current equations).
    pub diag_rows: Vec<usize>,
}

impl BlockOrdering {
    /// The trivial single-block ordering wrapping a plain column
    /// permutation (diagonal rows preferred, as before).
    pub fn single_block(perm: Vec<usize>) -> Self {
        let n = perm.len();
        let block_ptr = if n == 0 { vec![0] } else { vec![0, n] };
        BlockOrdering {
            diag_rows: perm.clone(),
            perm,
            block_ptr,
        }
    }
}

/// Smallest diagonal BTF block [`amd_btf_nd_ordering`] hands to nested
/// dissection instead of AMD. Below ~2k unknowns the reach-locality payoff
/// of separators no longer covers the bisection cost, and AMD's fill is as
/// good or better.
pub const ND_BLOCK_CUTOFF: usize = 2048;

/// Block-triangular form with per-block AMD.
///
/// A maximum transversal matches every column to a structurally nonzero
/// row; Tarjan's algorithm on the matched graph splits the matrix into
/// strongly connected diagonal blocks (numbered so the permuted matrix is
/// block *upper* triangular — entries below a diagonal block are
/// structurally zero); each block's submatrix is then ordered by AMD on
/// its own symmetrized pattern, independent of every other block.
///
/// Structurally singular matrices (no perfect matching) have no
/// block-triangular form; they fall back to a single block ordered by
/// plain AMD, and the factorization reports the singularity numerically
/// exactly as before.
///
/// This was the production default through PR 5; [`amd_btf_nd_ordering`]
/// (the same decomposition with nested dissection on large blocks) now
/// holds that role, and this ordering is kept as the pure-AMD baseline the
/// hybrid's fill is guarded against.
pub fn amd_btf_ordering(a: &CscMatrix) -> BlockOrdering {
    btf_ordering_impl(a, usize::MAX)
}

/// The production default ordering: block-triangular form with a hybrid
/// per-block ordering — on diagonal blocks of at least
/// [`ND_BLOCK_CUTOFF`] unknowns, nested dissection
/// ([`nested_dissection_ordering`]) and AMD are both computed and the one
/// with the smaller *counted* no-pivoting fill is kept (ND needs a ≥ 10 %
/// win); smaller blocks go straight to AMD.
///
/// BTF isolates what it can; on separable irreducible cores ND's
/// separators bound every Gilbert–Peierls solve reach to one side of a
/// bisection, where AMD's local ordering lets reaches funnel through the
/// whole core — and where no good separators exist (R-MAT expander
/// cores) the measured selection keeps AMD, so the hybrid never pays for
/// dissection that does not help. Fallback behavior for structurally
/// singular matrices mirrors [`amd_btf_ordering`] (single block, ordered
/// by the same size rule).
pub fn amd_btf_nd_ordering(a: &CscMatrix) -> BlockOrdering {
    btf_ordering_impl(a, ND_BLOCK_CUTOFF)
}

/// Margin a nested-dissection candidate must beat AMD's counted fill by
/// (numerator / denominator of the allowed fraction) before a block adopts
/// it: threshold partial pivoting at numeric time can amplify a marginal
/// symbolic win into a real loss, so only a clear win switches orderings.
const ND_ADOPT_NUM: usize = 9;
const ND_ADOPT_DEN: usize = 10;

/// The hybrid per-block ordering for a large (≥ [`ND_BLOCK_CUTOFF`])
/// diagonal block: fill-measured selection between AMD and nested
/// dissection.
///
/// Separator-width heuristics are not enough to predict whether
/// dissection pays — the DIMACS-grid substrate's irreducible block has
/// textbook `O(√n)` separators and still factors 3× worse under ND than
/// under AMD (auxiliary branch-equation chains give its elimination a
/// structure the one-sided bisection orders poorly). So the hybrid
/// *counts* instead of guessing: both candidate orderings are run through
/// the exact no-pivoting fill count ([`fill::symbolic_fill`]), and ND is
/// adopted only when its fill is at least 10 % below AMD's
/// ([`ND_ADOPT_NUM`]/[`ND_ADOPT_DEN`]), with the count aborted early the
/// moment a candidate exceeds its budget. Expander-like blocks
/// short-circuit for free: ND's internal separator-quality gate already
/// returns AMD's own permutation for them.
fn hybrid_block_ordering(a: &CscMatrix) -> Vec<usize> {
    let adj = AdjacencyCsr::build(a);
    let amd_p = amd::amd_from_adjacency(&adj);
    let nd_p = nd::nd_from_adjacency(&adj);
    if nd_p == amd_p {
        return amd_p;
    }
    let Some(amd_fill) = fill::symbolic_fill(&adj, &amd_p, usize::MAX) else {
        return amd_p;
    };
    let budget = amd_fill / ND_ADOPT_DEN * ND_ADOPT_NUM;
    match fill::symbolic_fill(&adj, &nd_p, budget) {
        Some(_) => nd_p,
        None => amd_p,
    }
}

/// Shared BTF ordering construction: blocks of at least `nd_cutoff`
/// columns are ordered by the fill-measured AMD/ND hybrid
/// ([`hybrid_block_ordering`]), smaller ones by AMD (`usize::MAX`
/// disables ND entirely).
fn btf_ordering_impl(a: &CscMatrix, nd_cutoff: usize) -> BlockOrdering {
    let n = a.cols();
    if n == 0 {
        return BlockOrdering::single_block(Vec::new());
    }
    let Some(btf) = block_triangular_form(a) else {
        return BlockOrdering::single_block(if n >= nd_cutoff {
            hybrid_block_ordering(a)
        } else {
            amd_ordering(a)
        });
    };
    let mut perm = Vec::with_capacity(n);
    let mut diag_rows = Vec::with_capacity(n);
    // Column -> block, for the per-block row restriction below.
    let mut block_of_col = vec![0usize; n];
    for t in 0..btf.block_count() {
        for &c in btf.block_cols(t) {
            block_of_col[c] = t;
        }
    }
    let col_ptr = a.col_ptr();
    let row_idx = a.row_idx();
    // One shared column→local-index scratch across blocks: entries are
    // (re)written for every column of the current block before any read,
    // and reads are gated on `block_of_col[rc] == t`, so stale values from
    // previous blocks are never observed — no per-block O(n) reset.
    let mut local_of = vec![usize::MAX; n];
    for t in 0..btf.block_count() {
        let cols = btf.block_cols(t);
        if cols.len() <= 2 {
            // AMD on a 1x1 or 2x2 block cannot improve anything.
            perm.extend_from_slice(cols);
        } else {
            // Local submatrix pattern A(R_t, C_t): rows are renamed to the
            // local index of their matched column. Values are irrelevant.
            for (lc, &c) in cols.iter().enumerate() {
                local_of[c] = lc;
            }
            let mut t_local = crate::TripletMatrix::new(cols.len(), cols.len());
            for (lc, &c) in cols.iter().enumerate() {
                for &r in &row_idx[col_ptr[c]..col_ptr[c + 1]] {
                    let rc = btf.col_of_row[r];
                    if block_of_col[rc] == t {
                        t_local.push(local_of[rc], lc, 1.0);
                    }
                }
            }
            let local_csc = t_local.to_csc();
            let local_perm = if cols.len() >= nd_cutoff {
                hybrid_block_ordering(&local_csc)
            } else {
                amd_ordering(&local_csc)
            };
            perm.extend(local_perm.iter().map(|&lc| cols[lc]));
        }
    }
    for &c in &perm {
        diag_rows.push(btf.row_of_col[c]);
    }
    BlockOrdering {
        perm,
        block_ptr: btf.block_ptr,
        diag_rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletMatrix;

    fn is_permutation(p: &[usize], n: usize) -> bool {
        let mut seen = vec![false; n];
        p.iter().all(|&i| {
            if i < n && !seen[i] {
                seen[i] = true;
                true
            } else {
                false
            }
        }) && p.len() == n
    }

    #[test]
    fn adjacency_csr_matches_naive_symmetrization() {
        let mut lcg = 0x9E3779B97F4A7C15u64;
        let mut next = |m: usize| {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((lcg >> 33) as usize) % m
        };
        for trial in 0..40 {
            let n = 1 + next(30);
            let mut t = TripletMatrix::new(n, n);
            for _ in 0..next(4 * n + 1) {
                t.push(next(n), next(n), 1.0);
            }
            let a = t.to_csc();
            let csr = AdjacencyCsr::build(&a);
            // Naive reference: sets of neighbors.
            let mut sets: Vec<std::collections::BTreeSet<usize>> = vec![Default::default(); n];
            for c in 0..n {
                for (r, _) in a.col(c) {
                    if r != c {
                        sets[c].insert(r);
                        sets[r].insert(c);
                    }
                }
            }
            for (v, set) in sets.iter().enumerate() {
                let mut got: Vec<usize> = csr.neighbors(v).to_vec();
                got.sort_unstable();
                let want: Vec<usize> = set.iter().copied().collect();
                assert_eq!(got, want, "trial {trial}, vertex {v}");
                assert_eq!(csr.degree(v), want.len());
            }
            assert_eq!(csr.len(), n);
        }
    }

    #[test]
    fn adjacency_csr_dedup_keeps_first_occurrence_order() {
        // 0-1 stamped twice, 0-2 once: neighbor order of 0 must be [1, 2].
        let mut t = TripletMatrix::new(3, 3);
        t.push(1, 0, 1.0);
        t.push(2, 0, 1.0);
        t.push(1, 0, 1.0);
        t.push(0, 1, 1.0);
        let csr = AdjacencyCsr::build(&t.to_csc());
        assert_eq!(csr.neighbors(0), &[1, 2]);
        assert_eq!(csr.edge_count(), 4);
    }

    #[test]
    fn amd_btf_handles_empty_and_singleton() {
        let empty = TripletMatrix::new(0, 0).to_csc();
        let b = amd_btf_ordering(&empty);
        assert!(b.perm.is_empty());
        assert_eq!(b.block_ptr, vec![0]);

        let mut t = TripletMatrix::new(1, 1);
        t.push(0, 0, 2.0);
        let b = amd_btf_ordering(&t.to_csc());
        assert_eq!(b.perm, vec![0]);
        assert_eq!(b.block_ptr, vec![0, 1]);
        assert_eq!(b.diag_rows, vec![0]);
    }

    #[test]
    fn amd_btf_on_diagonal_matrix_gives_unit_blocks() {
        let n = 7;
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 1.0);
        }
        let b = amd_btf_ordering(&t.to_csc());
        assert!(is_permutation(&b.perm, n));
        assert_eq!(b.block_ptr.len(), n + 1);
        for (k, &c) in b.perm.iter().enumerate() {
            assert_eq!(b.diag_rows[k], c);
        }
    }

    #[test]
    fn amd_btf_structurally_singular_falls_back_to_single_block() {
        // Empty column 1: no perfect matching exists.
        let mut t = TripletMatrix::new(3, 3);
        t.push(0, 0, 1.0);
        t.push(2, 2, 1.0);
        t.push(1, 0, 1.0);
        let b = amd_btf_ordering(&t.to_csc());
        assert!(is_permutation(&b.perm, 3));
        assert_eq!(b.block_ptr, vec![0, 3]);
        // Fallback prefers the diagonal, as the plain orderings do.
        assert_eq!(b.diag_rows, b.perm);
    }

    #[test]
    fn amd_btf_nd_shares_block_structure_with_amd_btf() {
        // The hybrid only changes the ordering *within* blocks: the block
        // decomposition (and thus block_ptr) must be identical, and the
        // matched pivot rows must still anchor every step.
        let mut lcg = 0x2545F4914F6CDD1Du64;
        let mut next = |m: usize| {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((lcg >> 33) as usize) % m
        };
        for _ in 0..15 {
            let n = 2 + next(40);
            let mut t = TripletMatrix::new(n, n);
            for i in 0..n {
                t.push(i, i, 1.0);
            }
            for _ in 0..next(3 * n + 1) {
                t.push(next(n), next(n), 1.0);
            }
            let a = t.to_csc();
            let plain = amd_btf_ordering(&a);
            let hybrid = amd_btf_nd_ordering(&a);
            assert!(is_permutation(&hybrid.perm, n));
            assert_eq!(plain.block_ptr, hybrid.block_ptr);
        }
    }

    #[test]
    fn hybrid_never_loses_to_amd_btf_on_a_big_separable_block() {
        // A 48x48 grid Laplacian is one SCC of 2304 unknowns — above
        // ND_BLOCK_CUTOFF, so the hybrid runs the fill-measured AMD/ND
        // selection on it. Whatever it picks must not cost fill over the
        // pure-AMD baseline (the do-no-harm contract; 5 % pivoting slack).
        use crate::{ColumnOrdering, SparseLu, SparseLuOptions};
        let side = 48;
        let n = side * side;
        assert!(n >= ND_BLOCK_CUTOFF);
        let mut t = TripletMatrix::new(n, n);
        let id = |r: usize, c: usize| r * side + c;
        for r in 0..side {
            for c in 0..side {
                let me = id(r, c);
                t.push(me, me, 4.0);
                if r + 1 < side {
                    t.push(me, id(r + 1, c), -1.0);
                    t.push(id(r + 1, c), me, -1.0);
                }
                if c + 1 < side {
                    t.push(me, id(r, c + 1), -1.0);
                    t.push(id(r, c + 1), me, -1.0);
                }
            }
        }
        let a = t.to_csc();
        let fill = |ordering| {
            SparseLu::factor_with(
                &a,
                &SparseLuOptions {
                    ordering,
                    ..Default::default()
                },
            )
            .unwrap()
            .factor_nnz()
        };
        let baseline = fill(ColumnOrdering::AmdBtf);
        let hybrid = fill(ColumnOrdering::AmdBtfNd);
        assert!(
            hybrid * 100 <= baseline * 105,
            "hybrid fill {hybrid} vs AMD+BTF baseline {baseline}"
        );
    }

    #[test]
    fn amd_btf_block_ptr_partitions_steps() {
        let mut t = TripletMatrix::new(6, 6);
        for i in 0..6 {
            t.push(i, i, 1.0);
        }
        // Two 3-cycles: blocks {0,1,2} and {3,4,5}, coupled one way.
        for (r, c) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (0, 3)] {
            t.push(r, c, 1.0);
        }
        let b = amd_btf_ordering(&t.to_csc());
        assert!(is_permutation(&b.perm, 6));
        assert_eq!(*b.block_ptr.first().unwrap(), 0);
        assert_eq!(*b.block_ptr.last().unwrap(), 6);
        assert!(b.block_ptr.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(b.block_ptr.len() - 1, 2, "two SCCs expected");
    }
}
