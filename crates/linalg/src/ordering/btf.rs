//! Block-triangular form: maximum transversal + strongly connected
//! components.
//!
//! A square sparse matrix with a structurally nonzero diagonal can be
//! symmetrically permuted to *block upper triangular* form: the diagonal
//! blocks are the strongly connected components of the directed graph
//! `column → column-matched-to-row` (one vertex per column, one edge per
//! stored entry), numbered so that every edge points to an equal or
//! lower-numbered block. Factoring the permuted matrix then never creates
//! fill below a diagonal block — each block eliminates as if it were its
//! own matrix, and the off-diagonal blocks only ever contribute `U`
//! entries. This is the KLU/SPICE decomposition; on circuit matrices it
//! peels dangling subtrees and one-way couplings off the irreducible core.
//!
//! The structurally nonzero diagonal comes from a **maximum transversal**:
//! a maximum matching between columns and rows in the bipartite graph of
//! stored entries, found by augmenting-path search (Duff's MC21 scheme:
//! a cheap first-fit pass, then one DFS per still-unmatched column with a
//! per-column look-ahead cursor so each entry's cheap test runs once).

use crate::CscMatrix;

const NONE: usize = usize::MAX;

/// Column→row maximum matching over the stored pattern of `a`.
///
/// Returns `(row_of_col, matched)` where `row_of_col[c]` is the row matched
/// to column `c` (`usize::MAX` if the column could not be matched) and
/// `matched` is the matching size. `matched == n` iff the matrix is
/// structurally nonsingular.
///
/// The search seeds diagonal entries first, so on a typical MNA matrix —
/// structurally nonzero diagonal except for branch-current rows — almost
/// every column keeps its natural pivot and the augmenting DFS only runs
/// for the few constraint columns.
pub fn maximum_transversal(a: &CscMatrix) -> (Vec<usize>, usize) {
    let n = a.cols();
    let col_ptr = a.col_ptr();
    let row_idx = a.row_idx();
    let mut row_of_col = vec![NONE; n];
    let mut col_of_row = vec![NONE; a.rows()];
    let mut matched = 0usize;

    // Cheap pass 1: claim diagonals.
    for c in 0..n {
        if row_idx[col_ptr[c]..col_ptr[c + 1]].contains(&c) && col_of_row[c] == NONE {
            row_of_col[c] = c;
            col_of_row[c] = c;
            matched += 1;
        }
    }
    // Cheap pass 2: first-fit any free row.
    for c in 0..n {
        if row_of_col[c] != NONE {
            continue;
        }
        for &r in &row_idx[col_ptr[c]..col_ptr[c + 1]] {
            if col_of_row[r] == NONE {
                row_of_col[c] = r;
                col_of_row[r] = c;
                matched += 1;
                break;
            }
        }
    }

    // Augmenting-path DFS for the remaining free columns. `cheap[c]`
    // advances monotonically over c's entries across all searches — rows
    // never become unmatched again, so the "does c still see a free row"
    // test is amortized O(nnz) over the whole transversal (MC21).
    let mut cheap: Vec<usize> = col_ptr[..n].to_vec();
    let mut visited = vec![NONE; n]; // stamp: column visited in search `c0`
    let mut stack: Vec<(usize, usize)> = Vec::new(); // (column, entry cursor)
    for c0 in 0..n {
        if row_of_col[c0] != NONE {
            continue;
        }
        stack.clear();
        stack.push((c0, col_ptr[c0]));
        visited[c0] = c0;
        while let Some(&(c, _)) = stack.last() {
            // Look-ahead: a free row ends the search immediately.
            let mut free_row = NONE;
            while cheap[c] < col_ptr[c + 1] {
                let r = row_idx[cheap[c]];
                cheap[c] += 1;
                if col_of_row[r] == NONE {
                    free_row = r;
                    break;
                }
            }
            if free_row != NONE {
                // Augment along the stack: the top column takes the free
                // row; every ancestor takes the row its child currently
                // holds (the entry it probed to descend), down to the
                // unmatched root.
                let mut take = free_row;
                while let Some((col, _)) = stack.pop() {
                    let displaced = row_of_col[col];
                    row_of_col[col] = take;
                    col_of_row[take] = col;
                    if displaced == NONE {
                        break; // the root `c0`
                    }
                    take = displaced;
                }
                matched += 1;
                break;
            }
            // Descend: probe matched rows, recursing into their columns.
            let mut child = NONE;
            {
                let (_, ptr) = stack
                    .last_mut()
                    .expect("invariant: the DFS stack is nonempty inside the walk");
                while *ptr < col_ptr[c + 1] {
                    let r = row_idx[*ptr];
                    *ptr += 1;
                    let c2 = col_of_row[r];
                    debug_assert_ne!(c2, NONE, "free rows handled by look-ahead");
                    if c2 < n && visited[c2] != c0 {
                        child = c2;
                        break;
                    }
                }
            }
            if child != NONE {
                visited[child] = c0;
                stack.push((child, col_ptr[child]));
            } else {
                stack.pop();
            }
        }
    }
    (row_of_col, matched)
}

/// The block-triangular structure of a structurally nonsingular matrix:
/// matching, inverse matching, and the columns of each diagonal block in
/// elimination (topological) order.
#[derive(Debug, Clone)]
pub struct BtfStructure {
    /// `row_of_col[c]` = row matched to column `c`.
    pub row_of_col: Vec<usize>,
    /// `col_of_row[r]` = column matched to row `r`.
    pub col_of_row: Vec<usize>,
    /// Block boundaries into [`BtfStructure::col_order`] (and therefore
    /// into pivot-step space once the ordering is applied).
    pub block_ptr: Vec<usize>,
    /// Columns grouped by block, blocks in elimination order: every stored
    /// entry of a block's columns lives in the rows of that block or an
    /// *earlier* one (block upper triangular).
    pub col_order: Vec<usize>,
}

impl BtfStructure {
    /// Number of diagonal blocks.
    pub fn block_count(&self) -> usize {
        self.block_ptr.len() - 1
    }

    /// The columns of block `t`.
    pub fn block_cols(&self, t: usize) -> &[usize] {
        &self.col_order[self.block_ptr[t]..self.block_ptr[t + 1]]
    }
}

/// Computes the block-triangular form of `a`, or `None` if `a` is not
/// square or has no perfect matching (structurally singular — no BTF
/// exists; callers fall back to a single block).
pub fn block_triangular_form(a: &CscMatrix) -> Option<BtfStructure> {
    let n = a.cols();
    if a.rows() != n {
        return None;
    }
    let (row_of_col, matched) = maximum_transversal(a);
    if matched != n {
        return None;
    }
    let mut col_of_row = vec![NONE; n];
    for (c, &r) in row_of_col.iter().enumerate() {
        col_of_row[r] = c;
    }

    // Tarjan SCC on the digraph with one vertex per column and an edge
    // `c -> col_of_row[r]` per stored entry `(r, c)`. SCCs pop in reverse
    // topological order of the condensation, i.e. a popped component's
    // successors are already popped — so pop order *is* the block order
    // that makes every edge point to an equal-or-earlier block, which is
    // exactly the block upper triangular property.
    let col_ptr = a.col_ptr();
    let row_idx = a.row_idx();
    let mut index = vec![NONE; n]; // discovery order
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut scc_stack: Vec<usize> = Vec::new();
    let mut dfs: Vec<(usize, usize)> = Vec::new(); // (column, entry cursor)
    let mut next_index = 0usize;
    let mut block_ptr = vec![0usize];
    let mut col_order: Vec<usize> = Vec::with_capacity(n);

    for root in 0..n {
        if index[root] != NONE {
            continue;
        }
        dfs.push((root, col_ptr[root]));
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        scc_stack.push(root);
        on_stack[root] = true;
        while let Some(&mut (c, ref mut ptr)) = dfs.last_mut() {
            if *ptr < col_ptr[c + 1] {
                let w = col_of_row[row_idx[*ptr]];
                *ptr += 1;
                if w == c {
                    continue;
                }
                if index[w] == NONE {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    scc_stack.push(w);
                    on_stack[w] = true;
                    dfs.push((w, col_ptr[w]));
                } else if on_stack[w] {
                    low[c] = low[c].min(index[w]);
                }
            } else {
                dfs.pop();
                if let Some(&(parent, _)) = dfs.last() {
                    low[parent] = low[parent].min(low[c]);
                }
                if low[c] == index[c] {
                    // Pop one complete SCC = one diagonal block.
                    loop {
                        let w = scc_stack
                            .pop()
                            .expect("invariant: every SCC root has members on the stack");
                        on_stack[w] = false;
                        col_order.push(w);
                        if w == c {
                            break;
                        }
                    }
                    block_ptr.push(col_order.len());
                }
            }
        }
    }
    Some(BtfStructure {
        row_of_col,
        col_of_row,
        block_ptr,
        col_order,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletMatrix;

    fn matrix(n: usize, entries: &[(usize, usize)]) -> CscMatrix {
        let mut t = TripletMatrix::new(n, n);
        for &(r, c) in entries {
            t.push(r, c, 1.0);
        }
        t.to_csc()
    }

    #[test]
    fn transversal_matches_identity_diagonal() {
        let a = matrix(4, &[(0, 0), (1, 1), (2, 2), (3, 3), (0, 2)]);
        let (m, count) = maximum_transversal(&a);
        assert_eq!(count, 4);
        assert_eq!(m, vec![0, 1, 2, 3]);
    }

    #[test]
    fn transversal_needs_augmenting_path() {
        // col0 -> {row0, row1}, col1 -> {row0}: col1 must displace col0.
        let a = matrix(2, &[(0, 0), (1, 0), (0, 1)]);
        let (m, count) = maximum_transversal(&a);
        assert_eq!(count, 2);
        assert_eq!(m, vec![1, 0]);
    }

    #[test]
    fn transversal_long_displacement_chain() {
        // Columns k reach only rows {k, k+1} except the last, which only
        // reaches row 0: the augmenting path must displace every column.
        let n = 6;
        let mut entries = Vec::new();
        for k in 0..n - 1 {
            entries.push((k, k));
            entries.push((k + 1, k));
        }
        entries.push((0, n - 1));
        let (m, count) = maximum_transversal(&matrix(n, &entries));
        assert_eq!(count, n);
        let mut seen = vec![false; n];
        for &r in &m {
            assert!(!seen[r]);
            seen[r] = true;
        }
    }

    #[test]
    fn transversal_detects_structural_singularity() {
        // Two columns can only take row 0.
        let a = matrix(2, &[(0, 0), (0, 1)]);
        let (_, count) = maximum_transversal(&a);
        assert_eq!(count, 1);
        assert!(block_triangular_form(&a).is_none());
    }

    #[test]
    fn btf_blocks_are_upper_triangular() {
        // Three SCCs with forward coupling: {0,1} <- {2} <- {3,4} in
        // dependency terms (entries above the diagonal blocks only).
        let a = matrix(
            5,
            &[
                (0, 0),
                (1, 1),
                (0, 1),
                (1, 0), // block {0,1}
                (2, 2), // block {2}
                (3, 3),
                (4, 4),
                (3, 4),
                (4, 3), // block {3,4}
                (0, 2), // {2} couples into {0,1}'s rows
                (2, 3), // {3,4} couples into {2}'s rows
            ],
        );
        let btf = block_triangular_form(&a).expect("nonsingular");
        assert_eq!(btf.block_count(), 3);
        // Block index per column.
        let mut block_of = [0usize; 5];
        for t in 0..btf.block_count() {
            for &c in btf.block_cols(t) {
                block_of[c] = t;
            }
        }
        // Every stored entry must sit in the rows of an equal-or-earlier
        // block: A(rows of later blocks, cols of block t) == 0.
        for c in 0..5 {
            for (r, _) in a.col(c) {
                assert!(
                    block_of[btf.col_of_row[r]] <= block_of[c],
                    "entry ({r}, {c}) below its diagonal block"
                );
            }
        }
        // And the coupling direction pins the order completely.
        assert!(block_of[0] < block_of[2] && block_of[2] < block_of[3]);
        assert_eq!(block_of[0], block_of[1]);
        assert_eq!(block_of[3], block_of[4]);
    }

    #[test]
    fn btf_irreducible_matrix_is_one_block() {
        // A cycle through all columns: one SCC.
        let n = 5;
        let mut entries: Vec<(usize, usize)> = (0..n).map(|i| (i, i)).collect();
        for i in 0..n {
            entries.push(((i + 1) % n, i));
        }
        let btf = block_triangular_form(&matrix(n, &entries)).expect("nonsingular");
        assert_eq!(btf.block_count(), 1);
        assert_eq!(btf.block_cols(0).len(), n);
    }

    #[test]
    fn btf_random_patterns_block_property_holds() {
        let mut lcg = 0xDEADBEEFCAFEu64;
        let mut next = |m: usize| {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((lcg >> 33) as usize) % m
        };
        for trial in 0..50 {
            let n = 2 + next(25);
            let mut entries: Vec<(usize, usize)> = (0..n).map(|i| (i, i)).collect();
            for _ in 0..next(3 * n + 1) {
                entries.push((next(n), next(n)));
            }
            let a = matrix(n, &entries);
            let btf = block_triangular_form(&a).expect("diagonal present");
            assert_eq!(*btf.block_ptr.last().unwrap(), n);
            let mut block_of = vec![NONE; n];
            for t in 0..btf.block_count() {
                for &c in btf.block_cols(t) {
                    assert_eq!(block_of[c], NONE, "trial {trial}: column {c} twice");
                    block_of[c] = t;
                }
            }
            for c in 0..n {
                for (r, _) in a.col(c) {
                    assert!(
                        block_of[btf.col_of_row[r]] <= block_of[c],
                        "trial {trial}: entry ({r}, {c}) crosses below"
                    );
                }
            }
        }
    }
}
