//! Exact symbolic fill count of a column ordering under the no-pivoting
//! symmetric model — the quantity every fill-reducing ordering is trying
//! to minimize, computed by George–Liu quotient-graph elimination.
//!
//! [`symbolic_fill`] eliminates the vertices of the symmetrized pattern in
//! the given order and returns the number of below-diagonal entries of the
//! Cholesky-style factor (`factor nnz = n + 2 · count` for a symmetric
//! pattern factored without row pivoting). The hybrid BTF ordering uses it
//! to *measure* candidate per-block orderings against each other instead
//! of guessing from separator widths: a nested-dissection ordering is only
//! adopted for a block when its counted fill actually beats AMD's.
//!
//! The count is exact for the no-pivoting model; threshold partial
//! pivoting at numeric time can move real fill either way (it cost 3× on
//! the DIMACS-grid substrate block that motivated this module), which is
//! why the caller demands a strict win before switching orderings.
//!
//! A `budget` aborts the elimination as soon as the count exceeds it —
//! comparing a candidate against an incumbent never costs more than the
//! incumbent's own fill.

use super::AdjacencyCsr;

/// Number of below-diagonal factor entries produced by eliminating the
/// vertices of `adj` in `order`, or `None` once the count exceeds
/// `budget`. `order` must be a permutation of `0..adj.len()`.
pub(crate) fn symbolic_fill(adj: &AdjacencyCsr, order: &[usize], budget: usize) -> Option<usize> {
    let n = adj.len();
    debug_assert_eq!(order.len(), n);
    let mut eliminated = vec![false; n];
    // Quotient graph: each uneliminated vertex keeps its original
    // neighbors (filtered through `eliminated` on read) plus the list of
    // elements it borders. Element `e` (the clique left by eliminating
    // vertex `e`) stores its uneliminated boundary; absorbed elements are
    // emptied and marked dead.
    let mut elements_of: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut boundary: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut alive = vec![false; n];
    let mut stamp = vec![usize::MAX; n];
    let mut reach: Vec<usize> = Vec::new();
    let mut count = 0usize;

    for (step, &v) in order.iter().enumerate() {
        debug_assert!(!eliminated[v]);
        reach.clear();
        stamp[v] = step;
        for &w in adj.neighbors(v) {
            if !eliminated[w] && stamp[w] != step {
                stamp[w] = step;
                reach.push(w);
            }
        }
        for &e in &elements_of[v] {
            if !alive[e] {
                continue;
            }
            for &w in &boundary[e] {
                if !eliminated[w] && stamp[w] != step {
                    stamp[w] = step;
                    reach.push(w);
                }
            }
            // Absorbed: every uneliminated boundary vertex of `e` is in
            // the new element's boundary, so stale references to `e` are
            // dead weight from here on.
            alive[e] = false;
            boundary[e] = Vec::new();
        }
        count += reach.len();
        if count > budget {
            return None;
        }
        eliminated[v] = true;
        elements_of[v] = Vec::new();
        for &w in &reach {
            elements_of[w].push(v);
        }
        boundary[v] = std::mem::take(&mut reach);
        alive[v] = true;
    }
    Some(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ColumnOrdering, SparseLu, SparseLuOptions, TripletMatrix};

    fn grid(side: usize) -> TripletMatrix {
        let n = side * side;
        let mut t = TripletMatrix::new(n, n);
        let id = |r: usize, c: usize| r * side + c;
        for r in 0..side {
            for c in 0..side {
                let me = id(r, c);
                t.push(me, me, 4.0);
                if r + 1 < side {
                    t.push(me, id(r + 1, c), -1.0);
                    t.push(id(r + 1, c), me, -1.0);
                }
                if c + 1 < side {
                    t.push(me, id(r, c + 1), -1.0);
                    t.push(id(r, c + 1), me, -1.0);
                }
            }
        }
        t
    }

    /// On a diagonally dominant symmetric matrix threshold pivoting keeps
    /// every diagonal pivot, so the numeric factor realizes exactly the
    /// symbolic model: `factor_nnz = n + 2 * symbolic_fill`.
    #[test]
    fn count_matches_pivot_free_factorization() {
        let a = grid(12).to_csc();
        let n = a.cols();
        let adj = AdjacencyCsr::build(&a);
        let natural: Vec<usize> = (0..n).collect();
        let count = symbolic_fill(&adj, &natural, usize::MAX).unwrap();
        let lu = SparseLu::factor_with(
            &a,
            &SparseLuOptions {
                ordering: ColumnOrdering::Natural,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(lu.factor_nnz(), n + 2 * count);

        let amd = crate::amd_ordering(&a);
        let count_amd = symbolic_fill(&adj, &amd, usize::MAX).unwrap();
        let lu_amd = SparseLu::factor_with(
            &a,
            &SparseLuOptions {
                ordering: ColumnOrdering::Amd,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(lu_amd.factor_nnz(), n + 2 * count_amd);
        assert!(count_amd < count, "AMD must reduce grid fill");
    }

    #[test]
    fn budget_aborts_early() {
        let a = grid(12).to_csc();
        let adj = AdjacencyCsr::build(&a);
        let natural: Vec<usize> = (0..a.cols()).collect();
        let full = symbolic_fill(&adj, &natural, usize::MAX).unwrap();
        assert_eq!(symbolic_fill(&adj, &natural, full), Some(full));
        assert_eq!(symbolic_fill(&adj, &natural, full - 1), None);
    }

    #[test]
    fn empty_and_disconnected_patterns() {
        let empty = AdjacencyCsr::build(&TripletMatrix::new(0, 0).to_csc());
        assert_eq!(symbolic_fill(&empty, &[], usize::MAX), Some(0));

        // Diagonal matrix: no fill under any order.
        let mut t = TripletMatrix::new(5, 5);
        for i in 0..5 {
            t.push(i, i, 1.0);
        }
        let adj = AdjacencyCsr::build(&t.to_csc());
        let order: Vec<usize> = (0..5).rev().collect();
        assert_eq!(symbolic_fill(&adj, &order, usize::MAX), Some(0));
    }
}
