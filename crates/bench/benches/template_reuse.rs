//! Criterion bench for the topology-keyed template machinery: how much of
//! the per-solve cost a Fig. 10-style same-topology sweep amortizes away.
//!
//! Three perspectives on the same substrate, all through the staged
//! facade:
//!
//! * `fig10_repeat_solves` — the headline claim: re-solving one R-MAT
//!   instance through `MaxFlowSolver::solve_fresh` (full cold path per
//!   solve) vs `MaxFlowSolver::solve` (value-only instantiation +
//!   numeric-only linear algebra against the cached plan). The acceptance
//!   bar is ≥ 3× for the planned path.
//! * `fig10_n_sweep` — the Fig. 10 quantization sweep: one topology
//!   re-instantiated per voltage-level count `N`, fresh build per `N` vs
//!   `Plan::instance_mapped`.
//! * `session_from_template` — the circuit layer alone: cold
//!   `DcSolver::session` (structure + ordering + symbolic + numeric) vs
//!   `DcPlan::session` (numeric-only refactorization).

use criterion::{criterion_group, criterion_main, Criterion};
use ohmflow::builder::CapacityMapping;
use ohmflow::{MaxFlowSolver, SolveOptions};
use ohmflow_bench::fig10_instance;
use ohmflow_circuit::DcSolver;

fn sweep_config() -> SolveOptions {
    let mut cfg = SolveOptions::evaluation_quasi_static(10e9);
    cfg.params.v_flow = 800.0;
    cfg
}

fn bench_repeat_solves(c: &mut Criterion) {
    let g = fig10_instance(128, false, 42);
    let solver = MaxFlowSolver::new(sweep_config());
    // Prime the cache so the planned path measures steady-state reuse.
    solver.solve(&g).expect("prime plan");
    let mut group = c.benchmark_group("fig10_repeat_solves_rmat128");
    group.sample_size(10);
    group.bench_function("from_scratch", |b| {
        b.iter(|| solver.solve_fresh(&g).expect("solve").value)
    });
    group.bench_function("cached_template", |b| {
        b.iter(|| solver.solve(&g).expect("solve").value)
    });
    group.finish();
}

fn bench_n_sweep(c: &mut Criterion) {
    let g = fig10_instance(96, false, 7);
    let solver = MaxFlowSolver::new(sweep_config());
    let levels: Vec<u32> = (1..=8).map(|i| 4 * i).collect();
    let mut group = c.benchmark_group("fig10_n_sweep_rmat96");
    group.sample_size(10);
    group.bench_function("from_scratch_per_level", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &n in &levels {
                let mut cfg = sweep_config();
                cfg.build.capacity_mapping = CapacityMapping::Quantized { levels: n };
                acc += MaxFlowSolver::new(cfg)
                    .solve_fresh(&g)
                    .expect("solve")
                    .value;
            }
            acc
        })
    });
    let plan = solver.plan(&g).expect("plan");
    group.bench_function("template_instantiate_per_level", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &n in &levels {
                let inst = plan
                    .instance_mapped(&g, CapacityMapping::Quantized { levels: n })
                    .expect("instance");
                acc += inst.solve().expect("solve").value;
            }
            acc
        })
    });
    group.finish();
}

fn bench_session_from_template(c: &mut Criterion) {
    let g = fig10_instance(96, false, 3);
    let solver = MaxFlowSolver::new(sweep_config());
    let plan = solver.plan(&g).expect("plan");
    let sc = plan.instance(&g).expect("instance").substrate().clone();
    let dcs = DcSolver::new();
    let dc_plan = dcs.plan(sc.circuit()).expect("dc plan");
    let mut group = c.benchmark_group("session_creation_rmat96");
    group.sample_size(10);
    group.bench_function("cold", |b| {
        b.iter(|| dcs.session(sc.circuit()).expect("session").stats())
    });
    group.bench_function("from_template", |b| {
        b.iter(|| dc_plan.session(sc.circuit()).expect("session").stats())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_repeat_solves,
    bench_n_sweep,
    bench_session_from_template
);
criterion_main!(benches);
