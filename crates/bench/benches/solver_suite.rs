//! Criterion bench across the solver suite: the three CPU algorithms, the
//! analog substrate's quasi-static solve (the simulated-hardware cost, not
//! the hardware's own convergence time), the relaxation-transient engines
//! (incremental frozen-DC session vs. the full-refactor reference — the
//! headline hot path), and batch-parallel throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use ohmflow::builder::CapacityMapping;
use ohmflow::solver::RelaxationEngine;
use ohmflow::{MaxFlowSolver, Problem, SolveOptions};
use ohmflow_bench::fig10_instance;
use ohmflow_graph::generators;
use ohmflow_maxflow::{dinic, edmonds_karp, push_relabel, PushRelabelVariant};

fn bench_solvers(c: &mut Criterion) {
    let g = fig10_instance(256, false, 256);
    let mut group = c.benchmark_group("solvers_rmat256_sparse");
    group.sample_size(10);
    group.bench_function("edmonds_karp", |b| b.iter(|| edmonds_karp(&g).value));
    group.bench_function("dinic", |b| b.iter(|| dinic(&g).value));
    group.bench_function("push_relabel_hl", |b| {
        b.iter(|| push_relabel(&g, PushRelabelVariant::HighestLabel).value)
    });
    let mut cfg = SolveOptions::ideal();
    cfg.params.v_flow = 800.0;
    let solver = MaxFlowSolver::new(cfg);
    group.bench_function("analog_quasi_static_sim", |b| {
        b.iter(|| solver.solve_fresh(&g).expect("solve").value)
    });
    group.finish();
}

/// The §5 hot path: the relaxation transient, incremental engine vs. the
/// seed's full-refactor path (the acceptance target is ≥ 5× on
/// fig15a(100)).
fn bench_relaxation_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("relaxation_transient");
    group.sample_size(10);
    for (graph_label, g) in [
        ("fig15a100", generators::fig15a(100)),
        ("fig5a", generators::fig5a()),
    ] {
        for (engine_label, engine) in [
            ("incremental", RelaxationEngine::Incremental),
            ("full_refactor", RelaxationEngine::FullRefactor),
        ] {
            let mut cfg = SolveOptions::evaluation(10e9);
            cfg.build.capacity_mapping = CapacityMapping::Exact;
            cfg.engine = engine;
            let solver = MaxFlowSolver::new(cfg);
            group.bench_function(format!("{graph_label}/{engine_label}"), |b| {
                b.iter(|| solver.solve_fresh(&g).expect("solve").value)
            });
        }
    }
    group.finish();
}

/// Batch-parallel throughput: independent instances across all cores.
fn bench_solve_batch(c: &mut Criterion) {
    let graphs: Vec<_> = (0..8).map(|s| fig10_instance(96, false, s)).collect();
    let mut cfg = SolveOptions::ideal();
    cfg.params.v_flow = 800.0;
    let solver = MaxFlowSolver::new(cfg);
    let mut group = c.benchmark_group("batch_8x_rmat96");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| {
            graphs
                .iter()
                .map(|g| solver.solve_fresh(g).expect("solve").value)
                .sum::<f64>()
        })
    });
    group.bench_function("solve_batch_parallel", |b| {
        b.iter(|| {
            solver
                .solve_many(graphs.iter().map(Problem::from))
                .into_iter()
                .map(|r| r.expect("solve").value)
                .sum::<f64>()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_solvers,
    bench_relaxation_engines,
    bench_solve_batch
);
criterion_main!(benches);
