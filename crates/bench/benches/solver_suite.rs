//! Criterion bench across the solver suite: the three CPU algorithms and
//! the analog substrate's quasi-static solve (the simulated-hardware cost,
//! not the hardware's own convergence time).

use criterion::{criterion_group, criterion_main, Criterion};
use ohmflow::solver::{AnalogConfig, AnalogMaxFlow};
use ohmflow_bench::fig10_instance;
use ohmflow_maxflow::{dinic, edmonds_karp, push_relabel, PushRelabelVariant};

fn bench_solvers(c: &mut Criterion) {
    let g = fig10_instance(256, false, 256);
    let mut group = c.benchmark_group("solvers_rmat256_sparse");
    group.sample_size(10);
    group.bench_function("edmonds_karp", |b| b.iter(|| edmonds_karp(&g).value));
    group.bench_function("dinic", |b| b.iter(|| dinic(&g).value));
    group.bench_function("push_relabel_hl", |b| {
        b.iter(|| push_relabel(&g, PushRelabelVariant::HighestLabel).value)
    });
    let mut cfg = AnalogConfig::ideal();
    cfg.params.v_flow = 800.0;
    let solver = AnalogMaxFlow::new(cfg);
    group.bench_function("analog_quasi_static_sim", |b| {
        b.iter(|| solver.solve(&g).expect("solve").value)
    });
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
