//! Criterion bench of the Fig. 10 CPU baseline (push-relabel) over the
//! dense and sparse R-MAT sweeps — the measured side of the speedup claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ohmflow_bench::fig10_instance;
use ohmflow_maxflow::{push_relabel, PushRelabelVariant};

fn bench_push_relabel(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_push_relabel");
    group.sample_size(10);
    for &n in &[256usize, 384, 512] {
        for dense in [false, true] {
            let g = fig10_instance(n, dense, n as u64);
            let label = if dense { "dense" } else { "sparse" };
            group.bench_with_input(BenchmarkId::new(label, n), &g, |b, g| {
                b.iter(|| push_relabel(g, PushRelabelVariant::HighestLabel).value)
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_push_relabel);
criterion_main!(benches);
