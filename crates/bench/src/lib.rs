//! Shared helpers for the benchmark harness: workload sweeps and wall-clock
//! timing of the CPU baseline. Each paper table/figure has a dedicated
//! binary (see `src/bin/`), indexed in `DESIGN.md`.

use std::time::Instant;

use ohmflow_graph::rmat::RmatConfig;
use ohmflow_graph::FlowNetwork;
use ohmflow_maxflow::{push_relabel, PushRelabelVariant};

/// The paper's Fig. 10 vertex sweep: 256 to 960 in steps of 64.
pub fn fig10_sizes() -> Vec<usize> {
    (0..12).map(|i| 256 + 64 * i).collect()
}

/// A reduced sweep for quick runs (`OHMFLOW_FULL=1` enables the full one).
pub fn active_sizes() -> Vec<usize> {
    if std::env::var("OHMFLOW_FULL").is_ok() {
        fig10_sizes()
    } else {
        vec![256, 320, 384, 448]
    }
}

/// Generates the dense or sparse R-MAT instance of Fig. 10.
///
/// Capacities are drawn from `1..=100` (the paper does not state its
/// range; with capacities `<= N = 20` the quantization would be exact and
/// the error series degenerate).
pub fn fig10_instance(vertices: usize, dense: bool, seed: u64) -> FlowNetwork {
    let mut cfg = if dense {
        RmatConfig::dense(vertices, seed)
    } else {
        RmatConfig::sparse(vertices, seed)
    };
    cfg.max_capacity = 100;
    cfg.generate().expect("rmat instance")
}

/// Median wall-clock nanoseconds of `f` over `reps` runs, with one warmup
/// run discarded — the shared timing primitive of the profile/report bins.
pub fn median_ns<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let _ = f();
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t0 = Instant::now();
            let _ = f();
            t0.elapsed().as_nanos() as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Times the push-relabel CPU baseline (median of `reps` runs), returning
/// `(seconds, flow value)`.
pub fn time_push_relabel(g: &FlowNetwork, reps: usize) -> (f64, i64) {
    let mut times = Vec::with_capacity(reps);
    let mut value = 0;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let r = push_relabel(g, PushRelabelVariant::HighestLabel);
        times.push(t0.elapsed().as_secs_f64());
        value = r.value;
    }
    times.sort_by(|a, b| a.total_cmp(b));
    (times[times.len() / 2], value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_matches_paper_axis() {
        let sizes = fig10_sizes();
        assert_eq!(sizes.first(), Some(&256));
        assert_eq!(sizes.last(), Some(&960));
        assert_eq!(sizes.len(), 12);
    }

    #[test]
    fn timing_returns_positive_duration() {
        let g = fig10_instance(64, false, 1);
        let (secs, value) = time_push_relabel(&g, 3);
        assert!(secs > 0.0);
        assert!(value > 0);
    }
}
