//! Shared helpers for the benchmark harness: workload sweeps and wall-clock
//! timing of the CPU baseline. Each paper table/figure has a dedicated
//! binary (see `src/bin/`), indexed in `DESIGN.md`.

#![forbid(unsafe_code)]

use std::time::Instant;

use ohmflow::builder::{
    build, BuildOptions, CapacityMapping, Drive, NegativeResistorImpl, SubstrateCircuit,
};
use ohmflow::SubstrateParams;
use ohmflow_graph::rmat::RmatConfig;
use ohmflow_graph::{dimacs, generators, FlowNetwork};
use ohmflow_maxflow::{push_relabel, PushRelabelVariant};

/// The paper's Fig. 10 vertex sweep: 256 to 960 in steps of 64.
pub fn fig10_sizes() -> Vec<usize> {
    (0..12).map(|i| 256 + 64 * i).collect()
}

/// A reduced sweep for quick runs (`OHMFLOW_FULL=1` enables the full one).
pub fn active_sizes() -> Vec<usize> {
    if std::env::var("OHMFLOW_FULL").is_ok() {
        fig10_sizes()
    } else {
        vec![256, 320, 384, 448]
    }
}

/// Generates the dense or sparse R-MAT instance of Fig. 10.
///
/// Capacities are drawn from `1..=100` (the paper does not state its
/// range; with capacities `<= N = 20` the quantization would be exact and
/// the error series degenerate).
pub fn fig10_instance(vertices: usize, dense: bool, seed: u64) -> FlowNetwork {
    let mut cfg = if dense {
        RmatConfig::dense(vertices, seed)
    } else {
        RmatConfig::sparse(vertices, seed)
    };
    cfg.max_capacity = 100;
    cfg.generate().expect("rmat instance")
}

/// The evaluation-shaped substrate build (ideal negative resistors, exact
/// capacity mapping, step drive, no parasitics) shared by the profile and
/// report bins, so every large-graph scaling number refers to the same
/// circuit configuration.
pub fn bench_substrate(g: &FlowNetwork) -> SubstrateCircuit {
    let mut params = SubstrateParams::with_gbw(10e9);
    params.v_flow = 50.0 * params.v_dd;
    let mut bo = BuildOptions::evaluation(&params);
    bo.capacity_mapping = CapacityMapping::Exact;
    bo.negative_resistor = NegativeResistorImpl::Ideal;
    bo.parasitics = false;
    bo.drive = Drive::Step;
    build(g, &params, &bo).expect("substrate build")
}

/// A DIMACS-roundtripped grid instance: generated, serialized to the
/// DIMACS max-flow text format and parsed back, so the benchmark exercises
/// the external-format ingestion path on a mesh-shaped (good-separator)
/// workload — the structural opposite of the R-MAT expanders.
pub fn dimacs_grid_instance(side: usize, max_cap: i64, seed: u64) -> FlowNetwork {
    let g = generators::grid(side, side, max_cap, seed).expect("grid instance");
    let text = dimacs::write(&g);
    dimacs::parse(&text).expect("dimacs roundtrip")
}

/// The `(anode, cathode)` MNA unknown pairs of every diode in `sc` whose
/// terminals are both non-ground — the real rank-1 Woodbury right-hand
/// sides a clamp flip produces, used by the sparse-vs-dense solve benches.
pub fn diode_unknown_pairs(sc: &SubstrateCircuit) -> Vec<(usize, usize)> {
    sc.circuit()
        .elements()
        .iter()
        .filter_map(|e| match e {
            ohmflow_circuit::Element::Diode { anode, cathode, .. }
                if !anode.is_ground() && !cathode.is_ground() =>
            {
                Some((anode.index() - 1, cathode.index() - 1))
            }
            _ => None,
        })
        .collect()
}

/// Median wall-clock nanoseconds of `f` over `reps` runs, with one warmup
/// run discarded — the shared timing primitive of the profile/report bins.
pub fn median_ns<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let _ = f();
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t0 = Instant::now();
            let _ = f();
            t0.elapsed().as_nanos() as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Times the push-relabel CPU baseline (median of `reps` runs), returning
/// `(seconds, flow value)`.
pub fn time_push_relabel(g: &FlowNetwork, reps: usize) -> (f64, i64) {
    let mut times = Vec::with_capacity(reps);
    let mut value = 0;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let r = push_relabel(g, PushRelabelVariant::HighestLabel);
        times.push(t0.elapsed().as_secs_f64());
        value = r.value;
    }
    times.sort_by(|a, b| a.total_cmp(b));
    (times[times.len() / 2], value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_matches_paper_axis() {
        let sizes = fig10_sizes();
        assert_eq!(sizes.first(), Some(&256));
        assert_eq!(sizes.last(), Some(&960));
        assert_eq!(sizes.len(), 12);
    }

    #[test]
    fn timing_returns_positive_duration() {
        let g = fig10_instance(64, false, 1);
        let (secs, value) = time_push_relabel(&g, 3);
        assert!(secs > 0.0);
        assert!(value > 0);
    }
}
