//! Regenerates Table 1: the design parameters of the substrate.

use ohmflow::SubstrateParams;

fn main() {
    let p = SubstrateParams::table1();
    println!("Table 1: Design parameters for the max-flow computing substrate");
    println!("{:-<64}", "");
    println!(
        "{:<48}{:>14}",
        "Memristor LRS resistance (kΩ)",
        p.memristor.r_lrs / 1e3
    );
    println!(
        "{:<48}{:>14}",
        "Memristor HRS resistance (kΩ)",
        p.memristor.r_hrs / 1e3
    );
    println!(
        "{:<48}{:>14}",
        "Objective function voltage Vflow (V)", p.v_flow
    );
    println!("{:<48}{:>14.0e}", "Open loop gain of op-amp", p.opamp.gain);
    println!(
        "{:<48}{:>14}",
        "Gain-bandwidth product of op-amp (GHz)", "10 to 50"
    );
    println!(
        "{:<48}{:>14}",
        "Number of columns in the crossbar", p.crossbar_dim
    );
    println!(
        "{:<48}{:>14}",
        "Number of rows in the crossbar", p.crossbar_dim
    );
    println!("{:<48}{:>14}", "Number of voltage levels", p.voltage_levels);
    println!(
        "{:<48}{:>14}",
        "Parasitic capacitance per net (fF)",
        p.parasitic_cap * 1e15
    );
}
