//! `ohmflow-audit` — end-to-end structural invariant audit driver.
//!
//! Builds plans for the benchmark substrates (the same instances
//! `bench_report` measures), instantiates and solves each one, then runs
//! every structural audit the workspace defines: the symbolic
//! elimination plan, the supernode plan and the numeric value arrays
//! (`SparseLu::audit`), the plan-cache shards, and the delta-surgery
//! metadata — followed by a delta-session walk (capacity retunes,
//! removals, revivals, novel insertions) auditing after every batch.
//!
//! Exit status is the contract: `0` only if every audit passes. CI runs
//! this in release mode, where the `debug_assertions` auto-audits are
//! compiled out — this binary is the release-mode coverage of the same
//! invariants.
//!
//! Usage: `ohmflow-audit [--substrates all|NAME[,NAME...]] [--skip-delta]`
//! with substrate names `rmat1024`, `rmat2048`, `dimacs_grid40`.

use std::process::ExitCode;

use ohmflow::solver::facade::{MaxFlowSolver, SolveOptions};
use ohmflow::solver::{DeltaBatch, DeltaSession};
use ohmflow_bench::{dimacs_grid_instance, fig10_instance};
use ohmflow_graph::FlowNetwork;

/// The audited substrates, mirroring `bench_report`'s workload table.
fn substrate(name: &str) -> Option<FlowNetwork> {
    match name {
        "rmat1024" => Some(fig10_instance(1024, false, 1)),
        "rmat2048" => Some(fig10_instance(2048, false, 1)),
        "dimacs_grid40" => Some(dimacs_grid_instance(40, 50, 7)),
        _ => None,
    }
}

const ALL: [&str; 3] = ["rmat1024", "rmat2048", "dimacs_grid40"];

/// Plans, instantiates and solves `g`, auditing at every stage.
fn audit_substrate(name: &str, g: &FlowNetwork) -> Result<(), String> {
    let solver = MaxFlowSolver::new(SolveOptions::ideal());
    let plan = solver
        .plan(g)
        .map_err(|e| format!("{name}: plan failed: {e}"))?;
    plan.audit()
        .map_err(|e| format!("{name}: plan audit: {e}"))?;

    let instance = plan
        .instance(g)
        .map_err(|e| format!("{name}: instantiation failed: {e}"))?;
    instance
        .audit()
        .map_err(|e| format!("{name}: instance audit: {e}"))?;

    // Solve and re-audit: the solve path refactors and warm-starts, so a
    // seam that corrupts values or panels shows up in the second pass.
    let solution = instance
        .solve()
        .map_err(|e| format!("{name}: solve failed: {e}"))?;
    instance
        .audit()
        .map_err(|e| format!("{name}: post-solve audit: {e}"))?;
    solver
        .engine()
        .audit_plan_cache()
        .map_err(|e| format!("{name}: plan-cache audit: {e}"))?;

    println!(
        "  {name}: ok ({} vertices, {} edges, flow {:.3})",
        g.vertex_count(),
        g.edge_count(),
        solution.value
    );
    Ok(())
}

/// One audited batch step of the delta walk.
fn step(session: &mut DeltaSession, what: &str, batch: DeltaBatch) -> Result<(), String> {
    session
        .apply_deltas(&batch)
        .map_err(|e| format!("delta walk: {what} failed: {e}"))?;
    session
        .audit()
        .map_err(|e| format!("delta walk: audit after {what}: {e}"))?;
    Ok(())
}

/// A delta-session walk over the dimacs grid: retune, remove, revive,
/// insert novel structure (forcing a re-key), auditing after every batch.
fn audit_delta_walk() -> Result<(), String> {
    let g = dimacs_grid_instance(40, 50, 7);
    let solver = MaxFlowSolver::new(SolveOptions::ideal());
    let mut session = solver
        .delta_session(&g)
        .map_err(|e| format!("delta walk: open failed: {e}"))?;
    session
        .audit()
        .map_err(|e| format!("delta walk: audit at open: {e}"))?;

    let m = session.edge_count();
    step(
        &mut session,
        "capacity retune",
        DeltaBatch::new()
            .set_capacity(0, 13)
            .set_capacity(m / 2, 29),
    )?;
    step(
        &mut session,
        "edge removal",
        DeltaBatch::new().remove_edge(m / 3).remove_edge(m / 5),
    )?;
    // Session edge ids start as the graph's edge order, so the removed
    // edge's endpoints come straight from the source graph; re-inserting
    // them revives the still-stamped widgets in place.
    let revived = &g.edges()[m / 3];
    step(
        &mut session,
        "in-place revival",
        DeltaBatch::new().insert_edge(revived.from, revived.to, 17),
    )?;
    // A brand-new endpoint pair forces a structural re-key against the
    // plan cache — the heaviest seam the walk can cross.
    let (nf, nt) = (1usize, g.vertex_count() - 2);
    step(
        &mut session,
        "novel insertion (re-key)",
        DeltaBatch::new().insert_edge(nf, nt, 21),
    )?;
    step(
        &mut session,
        "post-re-key retune",
        DeltaBatch::new().set_capacity(1, 7),
    )?;

    println!(
        "  delta walk: ok ({} session edges, {} live, flow {:.3})",
        session.edge_count(),
        session.live_edge_count(),
        session.flow_value()
    );
    Ok(())
}

fn main() -> ExitCode {
    let mut names: Vec<String> = ALL.iter().map(|s| (*s).to_owned()).collect();
    let mut run_delta = true;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--substrates" => match args.next().as_deref() {
                Some("all") | None => {}
                Some(list) => names = list.split(',').map(str::to_owned).collect(),
            },
            "--skip-delta" => run_delta = false,
            other => {
                eprintln!("ohmflow-audit: unknown argument `{other}`");
                eprintln!("usage: ohmflow-audit [--substrates all|NAME[,NAME...]] [--skip-delta]");
                return ExitCode::FAILURE;
            }
        }
    }

    println!("ohmflow-audit: auditing {} substrates", names.len());
    let mut failures = 0u32;
    for name in &names {
        let result = match substrate(name) {
            Some(g) => audit_substrate(name, &g),
            None => Err(format!(
                "unknown substrate `{name}` (known: {})",
                ALL.join(", ")
            )),
        };
        if let Err(msg) = result {
            eprintln!("  FAIL {msg}");
            failures += 1;
        }
    }
    if run_delta {
        if let Err(msg) = audit_delta_walk() {
            eprintln!("  FAIL {msg}");
            failures += 1;
        }
    }

    if failures == 0 {
        println!("ohmflow-audit: all audits passed");
        ExitCode::SUCCESS
    } else {
        eprintln!("ohmflow-audit: {failures} audit group(s) failed");
        ExitCode::FAILURE
    }
}
