//! Regenerates Fig. 15: the quasi-static trajectory of the Eq. (8) example
//! as V_flow ramps — the solution moves through the interior of the
//! feasible region, x2 clamps first (point D), then x1 (optimum B(4,1,3)).

use ohmflow::dynamics::trace_quasi_static;
use ohmflow::SubstrateParams;
use ohmflow_graph::generators::fig15a;

fn main() {
    let g = fig15a(10);
    let params = SubstrateParams::table1();
    let traj = trace_quasi_static(&g, &params, 60.0, 120).expect("trajectory");

    println!("# Fig. 15c trajectory: (x1, x2, x3) vs V_flow");
    println!("vflow_V,x1,x2,x3");
    for (i, v) in traj.vflow.iter().enumerate().step_by(6) {
        let f = &traj.flows[i];
        println!("{:.2},{:.4},{:.4},{:.4}", v, f[0], f[1], f[2]);
    }
    println!("# breakpoints (V_flow, edge):");
    for &(v, e) in &traj.breakpoints {
        println!("#   x{} clamps at V_flow = {:.2} V", e + 1, v);
    }
    let f = traj.final_flows();
    println!(
        "# terminal point: ({:.3}, {:.3}, {:.3})  [paper: B(4, 1, 3)]",
        f[0], f[1], f[2]
    );
    println!(
        "# interior-path property: {}",
        traj.all_points_feasible(&g, 0.02)
    );
    println!("# (paper's breakpoints 9 V / 19 V assume the simplified Fig. 15b");
    println!("#  circuit without sink-side widgets; ordering is what transfers)");
}
