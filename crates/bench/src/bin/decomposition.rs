//! §6.4 study: dual decomposition — consensus convergence and the
//! substrate-reuse (reprogramming) cost on community-structured graphs.

use ohmflow::decompose::{DecomposeOptions, DualDecomposition};
use ohmflow::SubstrateParams;
use ohmflow_graph::FlowNetwork;
use ohmflow_maxflow::min_cut;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bridged_communities(half: usize, seed: u64) -> FlowNetwork {
    let n = 2 * half;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = FlowNetwork::new(n, 0, n - 1).expect("network");
    for base in [0usize, half] {
        for i in 0..half {
            for _ in 0..3 {
                let j = rng.gen_range(0..half);
                if i != j {
                    let _ = g.add_edge(base + i, base + j, rng.gen_range(1..=9));
                }
            }
        }
    }
    g.add_edge(half / 4, half + half / 4, 4).expect("bridge");
    g.add_edge(half / 2, half + half / 2, 3).expect("bridge");
    g.add_edge(0, half / 4, 9).expect("anchor");
    g.add_edge(0, half / 2, 9).expect("anchor");
    g.add_edge(half + half / 4, n - 1, 9).expect("anchor");
    g.add_edge(half + half / 2, n - 1, 9).expect("anchor");
    g
}

fn main() {
    println!("# §6.4 dual decomposition on bridged community graphs");
    println!("vertices,overlap,iterations,converged,decomposed_cut,exact_cut,programming_cycles");
    for half in [24usize, 31, 40] {
        let g = bridged_communities(half, half as u64);
        let exact = min_cut(&g).capacity;
        let mut params = SubstrateParams::table1();
        params.crossbar_dim = half + 16;
        let d = DualDecomposition::new(DecomposeOptions::default());
        match d.solve(&g, &params) {
            Ok(r) => println!(
                "{},{},{},{},{},{},{}",
                g.vertex_count(),
                r.overlap_size,
                r.iterations,
                r.converged,
                r.cut_value,
                exact,
                r.programming_cycles
            ),
            Err(e) => println!("{},-,-,-,ERR({e}),{},-", g.vertex_count(), exact),
        }
    }
    println!("# expectation: decomposed cut == exact on clean community structure");
}
