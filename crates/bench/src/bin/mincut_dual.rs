//! §6.3 study: the dual (min-cut) formulation — analog-extracted cut
//! certificates and the behavioural Fig. 14 mesh LP solver, validated
//! against the exact min-cut across workloads.

use ohmflow::mincut::{cut_from_analog, DualMeshArchitecture};
use ohmflow::{MaxFlowSolver, SolveOptions};
use ohmflow_graph::generators;
use ohmflow_graph::rmat::RmatConfig;
use ohmflow_maxflow::min_cut;

fn main() {
    println!("# §6.3 dual formulation: min-cut readouts");
    println!("instance,exact_cut,analog_cut,mesh_lp_objective,mesh_rounded_cut,mesh_cells_used");
    let mesh = DualMeshArchitecture::new(64).expect("mesh");
    let cases: Vec<(String, ohmflow_graph::FlowNetwork)> = vec![
        ("fig5a".into(), generators::fig5a()),
        ("path".into(), generators::path(&[9, 1, 9]).unwrap()),
        ("grid4x4".into(), generators::grid(4, 4, 5, 8).unwrap()),
        (
            "rmat24".into(),
            RmatConfig::sparse(24, 3).generate().unwrap(),
        ),
    ];
    for (name, g) in cases {
        let exact = min_cut(&g).capacity;
        let mut cfg = SolveOptions::ideal();
        cfg.params.v_flow = 600.0;
        let sol = MaxFlowSolver::new(cfg).solve(&g).expect("analog");
        let cut = cut_from_analog(&g, &sol.edge_flows, 0.25);
        let dual = mesh.solve(&g, 3_000).expect("mesh LP");
        println!(
            "{name},{exact},{},{:.3},{},{}",
            cut.capacity,
            dual.objective,
            dual.rounded_capacity,
            mesh.used_cells(&g)
        );
    }
    println!(
        "# expectation: analog_cut == exact_cut; mesh rounded cut == exact on these instances"
    );
}
