//! Ablation studies for the design choices called out in DESIGN.md:
//! quantization-level sweep (§4.1), finite op-amp gain (§4.2), matched vs
//! unmatched variation (§4.3.1), tuning on/off (§4.3.2), and the
//! full-MNA instability demonstration (why the relaxation model exists).

use ohmflow::builder::{build, BuildOptions, CapacityMapping, Drive};
use ohmflow::nonideal::{finite_gain_reff, VariationModel};
use ohmflow::solver::SolveMode;
use ohmflow::tuning::TuningCircuit;
use ohmflow::SubstrateParams;
use ohmflow::{MaxFlowSolver, Problem, SolveOptions};
use ohmflow_graph::generators::fig5a;
use ohmflow_graph::rmat::RmatConfig;
use ohmflow_maxflow::edmonds_karp;

fn main() {
    let g = RmatConfig::sparse(32, 9).generate().expect("instance");
    let exact = edmonds_karp(&g).value as f64;

    println!("# Ablation 1 — quantization levels (§4.1), rmat32, exact |f| = {exact}");
    println!("levels,value,rel_error_pct,worst_case_bound_pct");
    for levels in [4u32, 8, 16, 20, 32, 64, 128] {
        let mut cfg = SolveOptions::ideal();
        cfg.params.v_flow = 800.0;
        cfg.build.capacity_mapping = CapacityMapping::Quantized { levels };
        let sol = MaxFlowSolver::new(cfg).solve(&g).expect("solve");
        let rel = (sol.value - exact).abs() / exact * 100.0;
        let bound = 100.0 / (2.0 * levels as f64) * g.max_capacity() as f64
            / (exact / g.edge_count() as f64).max(1.0);
        println!("{levels},{:.2},{rel:.2},{bound:.1}", sol.value);
    }

    println!("\n# Ablation 2 — finite op-amp gain (§4.2): negative-resistor precision");
    println!("gain,reff_error_pct");
    for gain in [1e2, 1e3, 1e4, 1e5] {
        let r = finite_gain_reff(5e3, 10e3, gain);
        println!("{gain:.0e},{:.4}", ((-r - 5e3) / 5e3 * 100.0).abs());
    }

    println!("\n# Ablation 3 — matched vs unmatched variation (§4.3.1), fig5a, 6 seeds");
    let fig = fig5a();
    let fig_exact = 2.0;
    for (label, model) in [
        (
            "matched (0.1% ratio)",
            VariationModel::matched as fn(u64) -> VariationModel,
        ),
        ("unmatched (3% each)", VariationModel::unmatched),
    ] {
        let mut cfg = SolveOptions::ideal();
        cfg.params.v_flow = 8.0;
        let tau = cfg.params.opamp.time_constant();
        cfg.mode = SolveMode::Transient {
            window: Some(60.0 * tau),
            dt: None,
        };
        let mut bo = BuildOptions::ideal();
        bo.drive = Drive::Step;
        let mut params = SubstrateParams::table1();
        params.v_flow = 8.0;
        // Build the six perturbed realizations, then solve them on all
        // cores through the batch API.
        let scs: Vec<_> = (0..6)
            .map(|seed| {
                let mut sc = build(&fig, &params, &bo).expect("build");
                model(seed).apply(&mut sc);
                sc
            })
            .collect();
        let worst = MaxFlowSolver::new(cfg)
            .solve_many(scs.iter().map(|sc| Problem::Built {
                circuit: sc,
                graph: &fig,
            }))
            .into_iter()
            .map(|r| (r.expect("solve").value - fig_exact).abs() / fig_exact)
            .fold(0.0f64, f64::max);
        println!("{label}: worst rel error {:.2} %", worst * 100.0);
    }

    println!("\n# Ablation 4 — §4.3.2 tuning repairs a skewed negation widget");
    let mut tc = TuningCircuit::new(10.3e3, 10e3, 5.4e3);
    let before = tc.negation_error().expect("measure");
    let after = tc.tune(1e-3, 16).expect("tune").residual;
    println!(
        "negation error before {:.3e} V, after tuning {:.3e} V",
        before, after
    );

    println!("\n# Ablation 5 — full-MNA transient of the literal circuit (instability finding)");
    let mut cfg = SolveOptions::evaluation(10e9);
    cfg.build.capacity_mapping = CapacityMapping::Exact;
    cfg.params.v_flow = 10.0;
    let tau = cfg.params.opamp.time_constant();
    cfg.build.negative_resistor = ohmflow::builder::NegativeResistorImpl::Dynamic;
    cfg.mode = SolveMode::TransientFullMna {
        window: 60.0 * tau,
        dt: tau / 10.0,
    };
    match MaxFlowSolver::new(cfg).solve_fresh(&fig) {
        Ok(sol) => println!(
            "full-MNA value {:.3} (exact 2.0) — spurious clamp-pinned state or blow-up expected",
            sol.value
        ),
        Err(e) => println!("full-MNA run failed as expected: {e}"),
    }
}
