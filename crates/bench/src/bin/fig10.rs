//! Regenerates Fig. 10 (a: dense, b: sparse): convergence time of the
//! substrate at 10 and 50 GHz GBW, push-relabel CPU time, and relative
//! error, versus the number of vertices.
//!
//! Usage: `cargo run --release -p ohmflow-bench --bin fig10 -- [dense|sparse]`
//! Set `OHMFLOW_FULL=1` for the paper's full 256..960 sweep.

use ohmflow::builder::CapacityMapping;
use ohmflow::solver::SolveMode;
use ohmflow::{MaxFlowSolver, Problem, SolveOptions};
use ohmflow_bench::{active_sizes, fig10_instance, time_push_relabel};
use ohmflow_graph::FlowNetwork;
use ohmflow_maxflow::edmonds_karp;

fn main() {
    let dense = std::env::args()
        .nth(1)
        .map(|a| a == "dense")
        .unwrap_or(false);
    let label = if dense {
        "dense (|E| ∝ |V|²)"
    } else {
        "sparse (|E| ∝ |V|)"
    };
    println!(
        "# Fig. 10{}: {label} R-MAT graphs",
        if dense { "a" } else { "b" }
    );
    println!("vertices,edges,conv_10GHz_s,conv_50GHz_s,push_relabel_s,rel_error_pct,speedup_10GHz");

    for n in active_sizes() {
        let g = fig10_instance(n, dense, n as u64);
        let exact = edmonds_karp(&g).value as f64;
        let (cpu_s, _) = time_push_relabel(&g, 3);

        let mut conv = [0.0f64; 2];
        let mut value = 0.0;
        for (i, gbw) in [10e9, 50e9].iter().enumerate() {
            let mut cfg = SolveOptions::evaluation(*gbw);
            cfg.params.v_flow = 50.0; // paper-style fixed drive headroom
            let tau = cfg.params.opamp.time_constant();
            cfg.mode = SolveMode::Transient {
                window: Some(tau * (30.0 + 0.1 * n as f64)),
                dt: None,
            };
            cfg.build.capacity_mapping = CapacityMapping::Quantized { levels: 20 };
            let sol = MaxFlowSolver::new(cfg).solve(&g).expect("analog solve");
            conv[i] = sol.convergence_time.unwrap_or(f64::NAN);
            value = sol.value;
        }
        let rel_err = (value - exact).abs() / exact.max(1.0) * 100.0;
        println!(
            "{},{},{:.4e},{:.4e},{:.4e},{:.2},{:.0}",
            n,
            g.edge_count(),
            conv[0],
            conv[1],
            cpu_s,
            rel_err,
            cpu_s / conv[0]
        );
    }
    println!(
        "# paper shape: substrate 150-1500x faster than CPU at 10 GHz; 50 GHz ~5x faster still;"
    );
    println!("# relative error <= 8% (avg 3.7% dense / 5.4% sparse)");

    // Seed-averaged error statistics (the paper reports per-size averages
    // over instances): independent instances, solved batch-parallel on all
    // cores through solve_many.
    println!("\n# error sweep: quantization error averaged over 4 seeds per size");
    println!("vertices,avg_rel_error_pct,max_rel_error_pct,seeds_ok,seeds_total");
    let solver = MaxFlowSolver::new(SolveOptions::evaluation_quasi_static(10e9));
    for n in active_sizes() {
        let graphs: Vec<FlowNetwork> = (0..4)
            .map(|s| fig10_instance(n, dense, n as u64 ^ (s * 7919)))
            .collect();
        let sols = solver.solve_many(graphs.iter().map(Problem::from));
        // The quasi-static complementarity iteration can fail on the odd
        // random instance (spurious all-clamped states, see
        // `MaxFlowSolver::solve_built`); a sweep reports over the seeds
        // that solve.
        let errs: Vec<f64> = graphs
            .iter()
            .zip(sols)
            .filter_map(|(g, sol)| {
                let exact = edmonds_karp(g).value as f64;
                sol.ok()
                    .map(|s| (s.value - exact).abs() / exact.max(1.0) * 100.0)
            })
            .collect();
        if errs.is_empty() {
            println!("{n},nan,nan,0,{}", graphs.len());
            continue;
        }
        let avg = errs.iter().sum::<f64>() / errs.len() as f64;
        let max = errs.iter().fold(0.0f64, |a, &b| a.max(b));
        println!("{n},{avg:.2},{max:.2},{},{}", errs.len(), graphs.len());
    }
}
