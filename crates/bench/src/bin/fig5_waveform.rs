//! Regenerates Fig. 5c: the waveform of the five edge-node voltages after
//! the rising edge of V_flow on the Fig. 5a example. Output is a CSV
//! (time, V(x1)..V(x5)) suitable for plotting.

use ohmflow::builder::CapacityMapping;
use ohmflow::{MaxFlowSolver, SolveOptions};
use ohmflow_graph::generators::fig5a;

fn main() {
    let g = fig5a();
    let mut cfg = SolveOptions::evaluation(10e9);
    cfg.build.capacity_mapping = CapacityMapping::Exact;
    let sol = MaxFlowSolver::new(cfg).solve(&g).expect("fig5a solve");
    let waves = sol.waveforms.as_ref().expect("waveforms recorded");

    println!("# Fig. 5c: node-voltage waveforms, Fig. 5a example");
    println!(
        "# convergence time: {:.4e} s (paper plots ~1e-8 s scale)",
        sol.convergence_time.unwrap()
    );
    println!("time_s,Vx1,Vx2,Vx3,Vx4,Vx5");
    let mut nodes: Vec<_> = waves.probed_nodes().collect();
    nodes.sort_by_key(|n| n.index());
    let times = waves.times();
    for i in (0..times.len()).step_by((times.len() / 60).max(1)) {
        print!("{:.6e}", times[i]);
        for n in nodes.iter().take(5) {
            // Volts; multiply by C=3 for flow units.
            print!(",{:.5}", waves.voltage(*n).expect("probed").values()[i]);
        }
        println!();
    }
    println!("# final flows (flow units): {:?}", sol.edge_flows);
    println!("# paper narrative check: x1 overshoots toward 3, settles at 2");
}
