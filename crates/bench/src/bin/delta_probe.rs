//! Scratch probe for the PR 9 delta-session timings (not wired into CI).
//!
//! Prints per-phase wall times and per-round state iterations for the
//! mixed delta walk the bench records, so a pathological apply can be
//! localized without waiting out the full `bench_report pr9` run.

use std::time::Instant;

use ohmflow::solver::facade::{MaxFlowSolver, SolveOptions};
use ohmflow::DeltaBatch;
use ohmflow_bench::{bench_substrate, diode_unknown_pairs, fig10_instance};

fn probe_push(n: usize) {
    use ohmflow_circuit::DcSolver;
    use ohmflow_linalg::{LowRankUpdate, RankOneTermRef, SparseSolveWorkspace};

    let g = fig10_instance(n, false, 1);
    let sc = bench_substrate(&g);
    let (m, lu) = DcSolver::new().stamp(sc.circuit()).expect("dc system");
    let dim = m.cols();
    println!(
        "substrate n={dim} nnz={} blocks={}",
        m.nnz(),
        lu.symbolic().block_count()
    );
    let pairs = diode_unknown_pairs(&sc);
    let (a, c) = pairs[pairs.len() / 2];
    let u: Vec<(usize, f64)> = vec![(a, 1e-4), (c, -1e-4)];
    let b1 = vec![1.0; dim];
    let (mut work, mut out) = (Vec::new(), Vec::new());

    let t0 = Instant::now();
    for _ in 0..10 {
        lu.solve_into(&b1, &mut work, &mut out).expect("solve");
    }
    println!("dense solve: {:.3}ms", t0.elapsed().as_secs_f64() * 100.0);

    let mut ws = SparseSolveWorkspace::default();
    let mut z = Vec::new();
    let t0 = Instant::now();
    for _ in 0..10 {
        z.clear();
        lu.solve_sparse_into(&u, &mut ws, &mut z).expect("sparse");
    }
    println!("sparse solve: {:.3}ms", t0.elapsed().as_secs_f64() * 100.0);

    #[allow(clippy::type_complexity)]
    let terms: Vec<(Vec<(usize, f64)>, Vec<(usize, f64)>)> = pairs
        .iter()
        .step_by((pairs.len() / 8).max(1))
        .take(8)
        .map(|&(a, c)| (vec![(a, 1e-4), (c, -1e-4)], vec![(a, 1.0), (c, -1.0)]))
        .collect();
    let refs: Vec<RankOneTermRef<'_>> = terms
        .iter()
        .map(|(u, v)| (u.as_slice(), v.as_slice()))
        .collect();
    let t0 = Instant::now();
    let mut up = LowRankUpdate::new(dim);
    up.push_batch(&lu, &refs).expect("batch");
    println!(
        "push_batch k=8 (rank 0->8): {:.3}ms",
        t0.elapsed().as_secs_f64() * 1000.0
    );
    let t0 = Instant::now();
    up.push_batch(&lu, &refs).expect("batch");
    println!(
        "push_batch k=8 (rank 8->16): {:.3}ms",
        t0.elapsed().as_secs_f64() * 1000.0
    );
    for _ in 0..5 {
        up.push_batch(&lu, &refs).expect("batch");
    }
    let t0 = Instant::now();
    up.push_batch(&lu, &refs).expect("batch");
    println!(
        "push_batch k=8 (rank 56->64): {:.3}ms",
        t0.elapsed().as_secs_f64() * 1000.0
    );
}

fn main() {
    if std::env::var("PROBE_PUSH").is_ok() {
        let n: usize = std::env::args()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(1024);
        probe_push(n);
        return;
    }
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1024);
    let rounds: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let g = fig10_instance(n, false, 1);
    let mut cfg = if std::env::var("PROBE_IDEAL").is_ok() {
        SolveOptions::ideal()
    } else {
        let mut cfg = SolveOptions::evaluation_quasi_static(10e9);
        cfg.params.v_flow = 800.0;
        cfg
    };
    cfg.phase_timing = true;
    let solver = MaxFlowSolver::new(cfg);

    let t0 = Instant::now();
    let flow = solver.solve_fresh(&g).expect("cold solve");
    println!(
        "cold solve: {:.3}s value {}",
        t0.elapsed().as_secs_f64(),
        flow.value
    );

    let t0 = Instant::now();
    let mut session = solver.delta_session(&g).expect("delta session");
    println!("session open: {:.3}s", t0.elapsed().as_secs_f64());

    let t0 = Instant::now();
    let r = session.apply_deltas(&DeltaBatch::new()).expect("opening");
    let rep = session.report();
    println!(
        "empty apply: {:.3}s iters {} value {} [factor nnz {} blocks {} templated {}]",
        t0.elapsed().as_secs_f64(),
        r.state_iterations,
        r.value,
        rep.factor_nnz,
        rep.block_count,
        rep.templated,
    );

    let removable: Vec<(usize, i64)> = g
        .edges()
        .iter()
        .enumerate()
        .filter(|(_, e)| e.to != g.source() && e.from != g.sink())
        .map(|(k, e)| (k, e.capacity))
        .collect();
    let l = removable.len();

    let t0 = Instant::now();
    let r = session
        .apply_deltas(
            &DeltaBatch::new()
                .remove_edge(removable[l - 2].0)
                .remove_edge(removable[l - 1].0),
        )
        .expect("prime removals");
    println!(
        "prime removals: {:.3}s iters {} rank {}",
        t0.elapsed().as_secs_f64(),
        r.state_iterations,
        session.outstanding_rank()
    );

    for round in 0..rounds {
        let (r0, r1) = (removable[(2 * round) % l], removable[(2 * round + 1) % l]);
        let (p0, p1) = (
            removable[(2 * round + l - 2) % l],
            removable[(2 * round + l - 1) % l],
        );
        let mut b = DeltaBatch::new()
            .remove_edge(r0.0)
            .remove_edge(r1.0)
            .insert_edge(g.edges()[p0.0].from, g.edges()[p0.0].to, p0.1)
            .insert_edge(g.edges()[p1.0].from, g.edges()[p1.0].to, p1.1);
        for i in 0..4 {
            let (k, cap) = removable[(4 * round + i + 7) % l];
            b = b.set_capacity(k, 1 + (cap + round as i64) % 99);
        }
        let p0 = session.report().phases.unwrap_or_default();
        let s0 = session.stats();
        let t0 = Instant::now();
        let r = session.apply_deltas(&b).expect("mixed batch");
        let p1 = session.report().phases.unwrap_or_default();
        let s1 = session.stats();
        println!(
            "mixed round {round}: {:.3}s iters {} rank {} consolidated {} replanned {} \
             [stamp {:.0}ms refactor {:.0}ms solve {:.0}ms woodbury {:.0}ms] \
             [solves {} rank1 {} refac {} full {}]",
            t0.elapsed().as_secs_f64(),
            r.state_iterations,
            session.outstanding_rank(),
            r.consolidated,
            r.replanned,
            (p1.stamp_ns - p0.stamp_ns) as f64 / 1e6,
            (p1.refactor_ns - p0.refactor_ns) as f64 / 1e6,
            (p1.solve_ns - p0.solve_ns) as f64 / 1e6,
            (p1.woodbury_ns - p0.woodbury_ns) as f64 / 1e6,
            s1.solves - s0.solves,
            s1.rank1_updates - s0.rank1_updates,
            s1.refactorizations - s0.refactorizations,
            s1.full_factorizations - s0.full_factorizations,
        );
    }

    // Heal the walk: revive the final mixed round's two removals so the
    // capacity rounds never touch a dead id.
    let (d0, d1) = (
        removable[(2 * (rounds - 1)) % l],
        removable[(2 * (rounds - 1) + 1) % l],
    );
    session
        .apply_deltas(
            &DeltaBatch::new()
                .insert_edge(g.edges()[d0.0].from, g.edges()[d0.0].to, d0.1)
                .insert_edge(g.edges()[d1.0].from, g.edges()[d1.0].to, d1.1),
        )
        .expect("heal removals");

    for round in 0..rounds {
        let mut b = DeltaBatch::new();
        for i in 0..8 {
            let (k, cap) = removable[(8 * round + i) % l];
            b = b.set_capacity(k, 1 + (cap + round as i64) % 99);
        }
        let t0 = Instant::now();
        let r = session.apply_deltas(&b).expect("capacity batch");
        println!(
            "cap round {round}: {:.3}s iters {} rank {}",
            t0.elapsed().as_secs_f64(),
            r.state_iterations,
            session.outstanding_rank()
        );
    }
}
