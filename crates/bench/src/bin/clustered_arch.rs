//! §6.2 study: clustered island architectures — 1-D vs 2-D routing and
//! the area advantage over a monolithic crossbar, across graph sparsity.

use ohmflow::clustered::ClusteredArchitecture;
use ohmflow_graph::rmat::RmatConfig;

fn main() {
    println!("# §6.2 clustered architectures vs monolithic crossbar");
    println!("vertices,density,routed_edges,peak_1d,peak_2d,area_advantage_2d");
    for (n, dense) in [(96usize, false), (96, true), (192, false)] {
        let cfg = if dense {
            RmatConfig::dense(n, 3)
        } else {
            RmatConfig::sparse(n, 3)
        };
        let g = cfg.generate().expect("instance");
        let islands = 4;
        let per = n / islands + n / (2 * islands);
        let a1 = ClusteredArchitecture::one_dimensional(islands, per, usize::MAX);
        let a2 = ClusteredArchitecture::two_dimensional(2, 2, per, usize::MAX);
        let m1 = a1.map_graph(&g).expect("1-D map");
        let m2 = a2.map_graph(&g).expect("2-D map");
        println!(
            "{},{},{},{},{},{:.2}",
            n,
            if dense { "dense" } else { "sparse" },
            m2.routed_edges.len(),
            m1.peak_track_usage,
            m2.peak_track_usage,
            a2.area_advantage(&g, &m2)
        );
    }
    println!(
        "# expectation: 2-D peak per-segment load <= 1-D total; area advantage > 1 for sparse"
    );
}
