//! Machine-readable perf snapshot for CI: runs the fast benchmark suite
//! with wall-clock timing and writes `BENCH_PR2.json` (ns/op per scenario,
//! plus derived speedups), so the repo's perf trajectory is tracked by
//! artifact instead of anecdote.
//!
//! Run with: `cargo run --release -p ohmflow-bench --bin bench_report`
//! (`OHMFLOW_BENCH_OUT` overrides the output path.)

use ohmflow::builder::CapacityMapping;
use ohmflow::solver::{AnalogConfig, AnalogMaxFlow, RelaxationEngine};
use ohmflow::SubstrateTemplate;
use ohmflow_bench::{fig10_instance, median_ns};
use ohmflow_circuit::{DcTemplate, FrozenDcSession};
use ohmflow_graph::generators;

fn main() {
    let mut entries: Vec<(String, f64)> = Vec::new();
    let mut push = |name: &str, ns: f64| {
        println!("{name:<44} {:>12.0} ns/op", ns);
        entries.push((name.to_owned(), ns));
    };

    // --- Template reuse on a Fig. 10-style same-topology sweep. ---
    let g = fig10_instance(128, false, 42);
    let mut cfg = AnalogConfig::evaluation_quasi_static(10e9);
    cfg.params.v_flow = 800.0;
    let solver = AnalogMaxFlow::new(cfg.clone());
    solver.solve_templated(&g).expect("prime template");
    let cold = median_ns(5, || solver.solve(&g).expect("solve").value);
    let warm = median_ns(5, || solver.solve_templated(&g).expect("solve").value);
    push("quasi_static_rmat128/cold_build_solve", cold);
    push("quasi_static_rmat128/template_reuse_solve", warm);

    // Template creation + value-only instantiation, in isolation.
    let t_template = median_ns(5, || {
        SubstrateTemplate::new(&g, &cfg.params, &cfg.build).expect("template")
    });
    let tpl = solver.template_for(&g).expect("template");
    let t_inst = median_ns(5, || tpl.instantiate(&g).expect("instantiate"));
    push("quasi_static_rmat128/template_create", t_template);
    push("quasi_static_rmat128/template_instantiate", t_inst);

    // --- Session creation: cold path vs numeric-only from template. ---
    let sc = tpl.instantiate(&g).expect("instantiate");
    let dc = DcTemplate::new(sc.circuit()).expect("dc template");
    let s_cold = median_ns(5, || {
        FrozenDcSession::new(sc.circuit()).expect("session").stats()
    });
    let s_tpl = median_ns(5, || {
        FrozenDcSession::with_template(sc.circuit(), &dc)
            .expect("session")
            .stats()
    });
    push("session_rmat128/cold", s_cold);
    push("session_rmat128/from_template", s_tpl);

    // --- Relaxation-transient engines (PR 1's headline path). ---
    let g15 = generators::fig15a(100);
    for (label, engine) in [
        ("incremental", RelaxationEngine::Incremental),
        ("full_refactor", RelaxationEngine::FullRefactor),
    ] {
        let mut tcfg = AnalogConfig::evaluation(10e9);
        tcfg.build.capacity_mapping = CapacityMapping::Exact;
        tcfg.engine = engine;
        let tsolver = AnalogMaxFlow::new(tcfg);
        let ns = median_ns(5, || tsolver.solve(&g15).expect("solve").value);
        push(&format!("transient_fig15a100/{label}"), ns);
    }

    // --- Batch throughput: same-topology fan-out vs sequential. ---
    let batch: Vec<_> = (1..=6)
        .map(|s| g.scaled_capacities(s).expect("scaled"))
        .collect();
    let seq = median_ns(3, || {
        batch
            .iter()
            .map(|g| solver.solve(g).expect("solve").value)
            .sum::<f64>()
    });
    let par = median_ns(3, || {
        solver
            .solve_batch(&batch)
            .into_iter()
            .map(|r| r.expect("solve").value)
            .sum::<f64>()
    });
    push("batch6_rmat128/sequential_cold", seq);
    push("batch6_rmat128/solve_batch_templated", par);

    // --- Report. ---
    let speedup = |a: &str, b: &str| {
        let get = |n: &str| entries.iter().find(|(k, _)| k == n).map(|(_, v)| *v);
        match (get(a), get(b)) {
            (Some(x), Some(y)) if y > 0.0 => x / y,
            _ => 0.0,
        }
    };
    let template_speedup = speedup(
        "quasi_static_rmat128/cold_build_solve",
        "quasi_static_rmat128/template_reuse_solve",
    );
    let engine_speedup = speedup(
        "transient_fig15a100/full_refactor",
        "transient_fig15a100/incremental",
    );
    let batch_speedup = speedup(
        "batch6_rmat128/sequential_cold",
        "batch6_rmat128/solve_batch_templated",
    );
    println!("template reuse speedup : {template_speedup:.2}x");
    println!("incremental engine speedup : {engine_speedup:.2}x");
    println!("batch speedup : {batch_speedup:.2}x");

    // Hand-rolled JSON (no serde in the offline vendor set).
    let mut json =
        String::from("{\n  \"schema\": \"ohmflow-bench-report/1\",\n  \"ns_per_op\": {\n");
    for (i, (name, ns)) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {ns:.0}{comma}\n"));
    }
    json.push_str("  },\n  \"speedups\": {\n");
    json.push_str(&format!(
        "    \"template_reuse_vs_cold\": {template_speedup:.3},\n"
    ));
    json.push_str(&format!(
        "    \"incremental_vs_full_refactor\": {engine_speedup:.3},\n"
    ));
    json.push_str(&format!(
        "    \"batch_vs_sequential\": {batch_speedup:.3}\n"
    ));
    json.push_str("  }\n}\n");

    let out = std::env::var("OHMFLOW_BENCH_OUT").unwrap_or_else(|_| "BENCH_PR2.json".to_owned());
    std::fs::write(&out, json).expect("write bench report");
    println!("wrote {out}");
}
