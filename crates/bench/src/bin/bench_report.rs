//! Machine-readable perf snapshot for CI: runs the fast benchmark suite
//! with wall-clock timing and writes `BENCH_PR2.json` (the template /
//! incremental-engine scenarios of PR 2, kept as the regression guard),
//! `BENCH_PR3.json` (the PR 3 large-graph scaling story: parallel vs
//! serial numeric refactorization and reach-based sparse vs dense
//! triangular solves on rmat1024 / rmat2048 / a DIMACS-roundtripped grid)
//! `BENCH_PR4.json` (the PR 4 ordering subsystem: fill, factor,
//! refactor and rank-1 solve times under Natural / MinDegree / AMD /
//! AMD+BTF — extended in PR 6 with NestedDissection and the AmdBtfNd
//! hybrid — plus the BTF block structure), `BENCH_PR5.json` (facade
//! overhead), `BENCH_PR6.json` (the KLU-style solve-time off-diagonal
//! restructure: block-aware sparse rank-1 solves vs dense, and the
//! rmat128 multi-block numeric-replay tax) and `BENCH_PR7.json` (the
//! supernodal blocked kernels vs the scalar replay, `f64` vs the
//! `F32Refined` storage precision, the detected supernode structure and
//! the mixed-precision 1e-9 accuracy gate) and `BENCH_PR8.json` (the
//! concurrent sharded plan cache: fingerprint-first hit latency vs the
//! old full-key-rebuild path, warm-hit throughput at 1/2/4 threads and
//! an eviction-pressure sweep with the cache counters) and
//! `BENCH_PR9.json` (the graph-delta fast path: k=8 mixed delta batches
//! through a standing `DeltaSession` vs cold plan+solve, the rank-k
//! batched Woodbury push vs k sequential rank-1 pushes, the k=8
//! multi-RHS blocked triangular solve vs eight singles, and the
//! `small_n` adaptive-path numbers behind `SMALL_INSTANCE_EDGES`) and
//! `BENCH_PR10.json` (the structural-audit overhead gate: release warm
//! repeat-solves on rmat2048 measured against themselves to pin the
//! debug-only auto-audit seams at <= 1.02x, plus the explicit
//! release-mode audit costs `ohmflow-audit` pays), so
//! the repo's perf trajectory is tracked by artifact instead of
//! anecdote. A final pass merges every `BENCH_PR*.json` in the working
//! directory into `BENCH_TRAJECTORY.json` keyed by PR number.
//!
//! Run with: `cargo run --release -p ohmflow-bench --bin bench_report`
//! (`OHMFLOW_BENCH_OUT` / `OHMFLOW_BENCH_OUT_PR3` / ... /
//! `OHMFLOW_BENCH_OUT_PR9` override the output paths; `OHMFLOW_FULL=1`
//! adds the minutes-long natural-order factorization of rmat2048).
//! `bench_report trajectory` skips the benchmarks, rebuilds
//! `BENCH_TRAJECTORY.json` from the report files already on disk, and
//! runs the PR 9 regression gate: if a baseline trajectory (the path in
//! `OHMFLOW_BENCH_BASELINE`, default the trajectory file itself as left
//! by a previous run) records PR 9 guard metrics and any of this run's
//! has regressed by more than 25%, the rebuild exits nonzero.
//! `bench_report pr8` / `pr9` run just that section and re-merge.

use ohmflow::builder::CapacityMapping;
use ohmflow::solver::RelaxationEngine;
use ohmflow::{MaxFlowSolver, SolveOptions, SubstrateTemplate};
use ohmflow_bench::{
    bench_substrate, dimacs_grid_instance, diode_unknown_pairs, fig10_instance, median_ns,
    time_push_relabel,
};
use ohmflow_circuit::DcSolver;
use ohmflow_graph::generators;
use ohmflow_linalg::{
    ColumnOrdering, LuWorkspace, RefactorStrategy, SparseLu, SparseLuOptions, SparseSolveWorkspace,
};

fn main() {
    match std::env::args().nth(1).as_deref() {
        Some("trajectory") => {
            trajectory_report();
            return;
        }
        // The PR 8 section standalone (plan-cache iteration loop).
        Some("pr8") => {
            pr8_report();
            trajectory_report();
            return;
        }
        // The PR 9 section standalone (delta-session iteration loop).
        Some("pr9") => {
            pr9_report();
            trajectory_report();
            return;
        }
        // The PR 10 section standalone (audit-overhead gate).
        Some("pr10") => {
            pr10_report();
            trajectory_report();
            return;
        }
        _ => {}
    }
    let mut entries: Vec<(String, f64)> = Vec::new();
    let mut push = |name: &str, ns: f64| {
        println!("{name:<44} {:>12.0} ns/op", ns);
        entries.push((name.to_owned(), ns));
    };

    // --- Template reuse on a Fig. 10-style same-topology sweep. ---
    let g = fig10_instance(128, false, 42);
    let mut cfg = SolveOptions::evaluation_quasi_static(10e9);
    cfg.params.v_flow = 800.0;
    let solver = MaxFlowSolver::new(cfg.clone());
    solver.solve(&g).expect("prime plan");
    let cold = median_ns(5, || solver.solve_fresh(&g).expect("solve").value);
    let warm = median_ns(5, || solver.solve(&g).expect("solve").value);
    push("quasi_static_rmat128/cold_build_solve", cold);
    push("quasi_static_rmat128/template_reuse_solve", warm);

    // Template creation + value-only instantiation, in isolation.
    let t_template = median_ns(5, || {
        SubstrateTemplate::new(&g, &cfg.params, &cfg.build).expect("template")
    });
    let plan = solver.plan(&g).expect("plan");
    let t_inst = median_ns(5, || plan.instance(&g).expect("instance"));
    push("quasi_static_rmat128/template_create", t_template);
    push("quasi_static_rmat128/template_instantiate", t_inst);

    // --- Session creation: cold path vs numeric-only from template. ---
    let sc = plan.instance(&g).expect("instance").substrate().clone();
    let dcs = DcSolver::new();
    let dc_plan = dcs.plan(sc.circuit()).expect("dc plan");
    let s_cold = median_ns(5, || dcs.session(sc.circuit()).expect("session").stats());
    let s_tpl = median_ns(5, || {
        dc_plan.session(sc.circuit()).expect("session").stats()
    });
    push("session_rmat128/cold", s_cold);
    push("session_rmat128/from_template", s_tpl);

    // --- Relaxation-transient engines (PR 1's headline path). ---
    let g15 = generators::fig15a(100);
    for (label, engine) in [
        ("incremental", RelaxationEngine::Incremental),
        ("full_refactor", RelaxationEngine::FullRefactor),
    ] {
        let mut tcfg = SolveOptions::evaluation(10e9);
        tcfg.build.capacity_mapping = CapacityMapping::Exact;
        tcfg.engine = engine;
        let tsolver = MaxFlowSolver::new(tcfg);
        let ns = median_ns(5, || tsolver.solve_fresh(&g15).expect("solve").value);
        push(&format!("transient_fig15a100/{label}"), ns);
    }

    // --- Batch throughput: same-topology fan-out vs sequential. ---
    let batch: Vec<_> = (1..=6)
        .map(|s| g.scaled_capacities(s).expect("scaled"))
        .collect();
    let seq = median_ns(3, || {
        batch
            .iter()
            .map(|g| solver.solve_fresh(g).expect("solve").value)
            .sum::<f64>()
    });
    let par = median_ns(3, || {
        solver
            .solve_many(batch.iter().map(ohmflow::Problem::from))
            .into_iter()
            .map(|r| r.expect("solve").value)
            .sum::<f64>()
    });
    push("batch6_rmat128/sequential_cold", seq);
    push("batch6_rmat128/solve_batch_templated", par);

    // --- Report. ---
    let speedup = |a: &str, b: &str| {
        let get = |n: &str| entries.iter().find(|(k, _)| k == n).map(|(_, v)| *v);
        match (get(a), get(b)) {
            (Some(x), Some(y)) if y > 0.0 => x / y,
            _ => 0.0,
        }
    };
    let template_speedup = speedup(
        "quasi_static_rmat128/cold_build_solve",
        "quasi_static_rmat128/template_reuse_solve",
    );
    let engine_speedup = speedup(
        "transient_fig15a100/full_refactor",
        "transient_fig15a100/incremental",
    );
    let batch_speedup = speedup(
        "batch6_rmat128/sequential_cold",
        "batch6_rmat128/solve_batch_templated",
    );
    println!("template reuse speedup : {template_speedup:.2}x");
    println!("incremental engine speedup : {engine_speedup:.2}x");
    println!("batch speedup : {batch_speedup:.2}x");

    // Hand-rolled JSON (no serde in the offline vendor set).
    let mut json =
        String::from("{\n  \"schema\": \"ohmflow-bench-report/1\",\n  \"ns_per_op\": {\n");
    for (i, (name, ns)) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {ns:.0}{comma}\n"));
    }
    json.push_str("  },\n  \"speedups\": {\n");
    json.push_str(&format!(
        "    \"template_reuse_vs_cold\": {template_speedup:.3},\n"
    ));
    json.push_str(&format!(
        "    \"incremental_vs_full_refactor\": {engine_speedup:.3},\n"
    ));
    json.push_str(&format!(
        "    \"batch_vs_sequential\": {batch_speedup:.3}\n"
    ));
    json.push_str("  }\n}\n");

    let out = std::env::var("OHMFLOW_BENCH_OUT").unwrap_or_else(|_| "BENCH_PR2.json".to_owned());
    std::fs::write(&out, json).expect("write bench report");
    println!("wrote {out}");

    pr3_report();
    pr4_report();
    pr5_report();
    pr6_report();
    pr7_report();
    pr8_report();
    pr9_report();
    pr10_report();
    trajectory_report();
}

/// The PR 3 large-graph scaling section: numeric refactorization
/// (serial vs level-scheduled parallel) and rank-1 triangular solves
/// (dense vs reach-based sparse halves) on the real substrate MNA
/// matrices of rmat1024, rmat2048 and a DIMACS-roundtripped 40×40 grid,
/// plus an end-to-end frozen-DC session flip loop on the DIMACS instance.
fn pr3_report() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("--- PR3 scaling (cores: {cores}) ---");
    let mut entries: Vec<(String, f64)> = Vec::new();
    let mut push = |name: String, ns: f64| {
        println!("{name:<44} {:>14.0} ns/op", ns);
        entries.push((name, ns));
    };

    // Seed 1: some R-MAT seeds produce substrates whose all-diodes-off
    // stamp is singular (near-disconnected vertices); the bench needs a
    // solvable instance, not a particular one.
    for (name, g) in [
        ("rmat1024", fig10_instance(1024, false, 1)),
        ("rmat2048", fig10_instance(2048, false, 1)),
        ("dimacs_grid40", dimacs_grid_instance(40, 50, 7)),
    ] {
        let sc = bench_substrate(&g);
        let (m, base_lu) = DcSolver::new().stamp(sc.circuit()).expect("dc system");
        let m = &m;
        println!(
            "{name}: {} unknowns, {} nnz, {} elimination levels",
            m.cols(),
            m.nnz(),
            base_lu.symbolic().level_count()
        );

        // Full symbolic + numeric factorization: the phase the
        // index-permutation sort_paired rewrite targets.
        push(
            format!("{name}/symbolic_numeric_factor"),
            median_ns(3, || SparseLu::factor(m).expect("factor")),
        );

        // Numeric-only refactorization, serial vs level-scheduled
        // parallel on every available core.
        let mut ws = LuWorkspace::new();
        let mut lu = base_lu.clone();
        push(
            format!("{name}/refactor_serial"),
            median_ns(5, || {
                lu.refactor_with_strategy(m, &mut ws, RefactorStrategy::Serial)
                    .expect("serial refactor")
            }),
        );
        push(
            format!("{name}/refactor_parallel"),
            median_ns(5, || {
                lu.refactor_with_strategy(m, &mut ws, RefactorStrategy::Parallel { threads: cores })
                    .expect("parallel refactor")
            }),
        );

        // Rank-1 triangular solves over a sample of the substrate's real
        // diode (anode, cathode) unknown pairs. Three variants:
        // `dense` is the old extend path (one full dense `solve_into`);
        // `sparse` is the production reach-based path — on a multi-block
        // factor (the PR 6 default) that is the block-aware
        // `solve_sparse_into` seed-queue solve, on a single-block factor
        // the pure half-solve pair (forward + transposed-backward);
        // `push_path` is what `LowRankUpdate::push` actually ships:
        // `solve_sparse_into` for multi-block, else reach-limited forward
        // half + structurally-dense backward completion.
        let pairs = diode_unknown_pairs(&sc);
        let sample: Vec<(usize, usize)> = pairs
            .iter()
            .step_by((pairs.len() / 64).max(1))
            .copied()
            .collect();
        let lu = &base_lu;
        let multi = lu.symbolic().block_count() > 1;
        let n = m.cols();
        let mut dense_rhs = vec![0.0; n];
        let (mut work, mut out) = (Vec::new(), Vec::new());
        let t_dense = median_ns(3, || {
            for &(a, c) in &sample {
                dense_rhs[a] = 1e3;
                dense_rhs[c] = -1e3;
                lu.solve_into(&dense_rhs, &mut work, &mut out)
                    .expect("solve");
                dense_rhs[a] = 0.0;
                dense_rhs[c] = 0.0;
            }
        });
        let mut sws = SparseSolveWorkspace::new();
        let (mut what, mut ghat) = (Vec::new(), Vec::new());
        let mut xs: Vec<f64> = Vec::new();
        let t_sparse = median_ns(3, || {
            for &(a, c) in &sample {
                if multi {
                    lu.solve_sparse_into(&[(a, 1e3), (c, -1e3)], &mut sws, &mut xs)
                        .expect("sparse solve");
                } else {
                    lu.forward_sparse_into(&[(a, 1e3), (c, -1e3)], &mut sws, &mut what)
                        .expect("forward");
                    lu.transposed_backward_sparse_into(&[(a, 1.0), (c, -1.0)], &mut sws, &mut ghat)
                        .expect("transposed backward");
                }
            }
        });
        let mut back_work = Vec::new();
        let mut z = Vec::new();
        let t_push_path = median_ns(3, || {
            for &(a, c) in &sample {
                if multi {
                    lu.solve_sparse_into(&[(a, 1e3), (c, -1e3)], &mut sws, &mut z)
                        .expect("sparse solve");
                } else {
                    lu.forward_sparse_into(&[(a, 1e3), (c, -1e3)], &mut sws, &mut what)
                        .expect("forward");
                    lu.backward_dense_from_steps(&what, &mut back_work, &mut z)
                        .expect("backward completion");
                }
            }
        });
        let per = sample.len() as f64;
        push(
            format!("{name}/rank1_triangular_solve_dense"),
            t_dense / per,
        );
        push(
            format!("{name}/rank1_triangular_solve_sparse"),
            t_sparse / per,
        );
        push(format!("{name}/rank1_push_path_sparse"), t_push_path / per);
    }

    // End-to-end on the DIMACS instance: frozen-DC session flip loop (the
    // engine's hot path) and the CPU max-flow baseline for context.
    {
        let g = dimacs_grid_instance(40, 50, 7);
        let sc = bench_substrate(&g);
        let ckt = sc.circuit();
        let dc_plan = DcSolver::new()
            .phase_timing(true)
            .plan(ckt)
            .expect("dc plan");
        let n_diodes = ckt.diode_count();
        let mut session = dc_plan.session(ckt).expect("session");
        let mut on = vec![false; n_diodes];
        let steps = 400;
        let t0 = std::time::Instant::now();
        for k in 0..steps {
            on[(k * 7919) % n_diodes] = !on[(k * 7919) % n_diodes];
            session.solve(k as f64 * 1e-9, &on).expect("session solve");
        }
        push(
            "dimacs_grid40/session_flip_step".to_owned(),
            t0.elapsed().as_nanos() as f64 / steps as f64,
        );
        let phases = session.phase_times();
        println!(
            "dimacs_grid40 session phases: stamp {:.1}ms refactor {:.1}ms solve {:.1}ms woodbury {:.1}ms",
            phases.stamp_ns as f64 / 1e6,
            phases.refactor_ns as f64 / 1e6,
            phases.solve_ns as f64 / 1e6,
            phases.woodbury_ns as f64 / 1e6,
        );
        let (cpu_secs, _flow) = time_push_relabel(&g, 3);
        push("dimacs_grid40/cpu_push_relabel".to_owned(), cpu_secs * 1e9);
    }

    let get = |entries: &[(String, f64)], n: &str| {
        entries
            .iter()
            .find(|(k, _)| k == n)
            .map(|(_, v)| *v)
            .unwrap_or(0.0)
    };
    let ratio = |a: f64, b: f64| if b > 0.0 { a / b } else { 0.0 };
    let par_speedup_2048 = ratio(
        get(&entries, "rmat2048/refactor_serial"),
        get(&entries, "rmat2048/refactor_parallel"),
    );
    let sparse_speedup_grid = ratio(
        get(&entries, "dimacs_grid40/rank1_triangular_solve_dense"),
        get(&entries, "dimacs_grid40/rank1_triangular_solve_sparse"),
    );
    let sparse_speedup_2048 = ratio(
        get(&entries, "rmat2048/rank1_triangular_solve_dense"),
        get(&entries, "rmat2048/rank1_triangular_solve_sparse"),
    );
    let push_speedup_grid = ratio(
        get(&entries, "dimacs_grid40/rank1_triangular_solve_dense"),
        get(&entries, "dimacs_grid40/rank1_push_path_sparse"),
    );
    println!("parallel refactor speedup (rmat2048, {cores} cores): {par_speedup_2048:.2}x");
    println!("sparse rank1 solve speedup (dimacs_grid40): {sparse_speedup_grid:.2}x");
    println!("sparse rank1 solve speedup (rmat2048): {sparse_speedup_2048:.2}x");
    println!("shipped push-path speedup (dimacs_grid40): {push_speedup_grid:.2}x");

    let mut json = String::from("{\n  \"schema\": \"ohmflow-bench-report-pr3/1\",\n");
    json.push_str(&format!("  \"cores\": {cores},\n  \"ns_per_op\": {{\n"));
    for (i, (name, ns)) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {ns:.0}{comma}\n"));
    }
    json.push_str("  },\n  \"speedups\": {\n");
    json.push_str(&format!(
        "    \"refactor_parallel_vs_serial_rmat2048\": {par_speedup_2048:.3},\n"
    ));
    json.push_str(&format!(
        "    \"rank1_sparse_vs_dense_solve_dimacs_grid40\": {sparse_speedup_grid:.3},\n"
    ));
    json.push_str(&format!(
        "    \"rank1_sparse_vs_dense_solve_rmat2048\": {sparse_speedup_2048:.3},\n"
    ));
    json.push_str(&format!(
        "    \"rank1_push_path_vs_dense_dimacs_grid40\": {push_speedup_grid:.3}\n"
    ));
    json.push_str("  }\n}\n");

    let out =
        std::env::var("OHMFLOW_BENCH_OUT_PR3").unwrap_or_else(|_| "BENCH_PR3.json".to_owned());
    std::fs::write(&out, json).expect("write pr3 bench report");
    println!("wrote {out}");
}

/// The PR 4 ordering-subsystem section: fill (`nnz(L+U+A_off)`),
/// symbolic+numeric factor time, serial numeric refactor time and the
/// rank-1 sparse solve under Natural / MinDegree / AMD / AMD+BTF — and,
/// since PR 6, NestedDissection and the AmdBtfNd hybrid — on the three
/// reference substrates, plus the BTF block structure — the tracked
/// numbers behind the R-MAT dense-tail fix.
///
/// Natural order on an R-MAT expander is a dense-tail stress test (~10.5M
/// fill, ~24 s per factor on rmat1024 here): it runs single-shot on
/// rmat1024 / dimacs_grid40 as the scale anchor, and on rmat2048 (minutes)
/// only under `OHMFLOW_FULL=1`.
fn pr4_report() {
    use std::time::Instant;
    let full = std::env::var("OHMFLOW_FULL").is_ok();
    println!("--- PR4 ordering subsystem ---");
    let mut entries: Vec<(String, f64)> = Vec::new();
    let mut fills: Vec<(String, usize)> = Vec::new();
    let mut blocks: Vec<(String, usize, usize)> = Vec::new();
    let push = |entries: &mut Vec<(String, f64)>, name: String, ns: f64| {
        println!("{name:<52} {ns:>14.0} ns/op");
        entries.push((name, ns));
    };

    let orderings = [
        ("natural", ColumnOrdering::Natural),
        ("min_degree", ColumnOrdering::MinDegree),
        ("amd", ColumnOrdering::Amd),
        ("amd_btf", ColumnOrdering::AmdBtf),
        ("nd", ColumnOrdering::NestedDissection),
        ("amd_btf_nd", ColumnOrdering::AmdBtfNd),
    ];
    for (name, g) in [
        ("rmat1024", fig10_instance(1024, false, 1)),
        ("rmat2048", fig10_instance(2048, false, 1)),
        ("dimacs_grid40", dimacs_grid_instance(40, 50, 7)),
    ] {
        let sc = bench_substrate(&g);
        // One stamp per instance; the returned default (AmdBtfNd since
        // PR 6) factor is reused as that ordering's measured cell below
        // instead of being factored again.
        let (m, btf_lu) = DcSolver::new()
            .lu_options(SparseLuOptions::default())
            .stamp(sc.circuit())
            .expect("dc system");
        let mut btf_lu = Some(btf_lu);
        let m = &m;
        let pairs = diode_unknown_pairs(&sc);
        let sample: Vec<(usize, usize)> = pairs
            .iter()
            .step_by((pairs.len() / 64).max(1))
            .copied()
            .collect();
        for (label, ordering) in orderings {
            let heavy = ordering == ColumnOrdering::Natural;
            if heavy && name == "rmat2048" && !full {
                println!("{name}/{label}: skipped (dense-tail natural factor takes minutes; OHMFLOW_FULL=1 enables it)");
                continue;
            }
            let opts = SparseLuOptions {
                ordering,
                ..Default::default()
            };
            // Fill + factor time. The natural-order factor is measured
            // single-shot; everything else gets a warmed median. The
            // default-ordering cell reuses the factor the instance stamp
            // produced.
            let (lu, single) = match btf_lu.take_if(|_| ordering == ColumnOrdering::default()) {
                Some(lu) => (lu, f64::NAN), // `heavy` is never the default
                None => {
                    let t0 = Instant::now();
                    let lu = SparseLu::factor_with(m, &opts).expect("factor");
                    (lu, t0.elapsed().as_nanos() as f64)
                }
            };
            let t_factor = if heavy {
                single
            } else {
                median_ns(3, || SparseLu::factor_with(m, &opts).expect("factor"))
            };
            push(
                &mut entries,
                format!("{name}/{label}/symbolic_numeric_factor"),
                t_factor,
            );
            fills.push((format!("{name}/{label}"), lu.factor_nnz()));
            println!("{name}/{label}: nnz(L+U) {}", lu.factor_nnz());
            if lu.symbolic().block_count() > 1 {
                let sym = lu.symbolic();
                println!(
                    "{name}/{label}: {} blocks, largest {} of {}",
                    sym.block_count(),
                    sym.largest_block(),
                    sym.dim()
                );
                blocks.push((
                    format!("{name}/{label}"),
                    sym.block_count(),
                    sym.largest_block(),
                ));
            }

            // Serial numeric refactorization (the rebase hot path).
            let mut ws = LuWorkspace::new();
            let mut rlu = lu.clone();
            let reps = if heavy { 1 } else { 5 };
            push(
                &mut entries,
                format!("{name}/{label}/refactor_serial"),
                median_ns(reps, || {
                    rlu.refactor_with_strategy(m, &mut ws, RefactorStrategy::Serial)
                        .expect("refactor")
                }),
            );

            // Rank-1 sparse solve over real diode RHS pairs (the PR 3
            // primitive the dense tail was capping). Multi-block factors
            // route through the block-aware seed-queue solve — the
            // half-solve identity only holds on single-block factors.
            let mut sws = SparseSolveWorkspace::new();
            let (mut what, mut ghat) = (Vec::new(), Vec::new());
            let mut xs: Vec<f64> = Vec::new();
            let multi = lu.symbolic().block_count() > 1;
            let t_sparse = median_ns(if heavy { 1 } else { 3 }, || {
                for &(a, c) in &sample {
                    if multi {
                        lu.solve_sparse_into(&[(a, 1e3), (c, -1e3)], &mut sws, &mut xs)
                            .expect("sparse solve");
                    } else {
                        lu.forward_sparse_into(&[(a, 1e3), (c, -1e3)], &mut sws, &mut what)
                            .expect("forward");
                        lu.transposed_backward_sparse_into(
                            &[(a, 1.0), (c, -1.0)],
                            &mut sws,
                            &mut ghat,
                        )
                        .expect("transposed backward");
                    }
                }
            });
            push(
                &mut entries,
                format!("{name}/{label}/rank1_halfsolve_pair"),
                t_sparse / sample.len() as f64,
            );
        }
    }

    let get = |key: &str| {
        entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| *v)
            .unwrap_or(0.0)
    };
    let fill_of = |key: &str| {
        fills
            .iter()
            .find(|(k, _)| k == key)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    };
    let ratio = |a: f64, b: f64| if b > 0.0 { a / b } else { 0.0 };
    let factor_speedup_2048 = ratio(
        get("rmat2048/min_degree/symbolic_numeric_factor"),
        get("rmat2048/amd_btf/symbolic_numeric_factor"),
    );
    let fill_ratio_2048 = ratio(
        fill_of("rmat2048/amd_btf") as f64,
        fill_of("rmat2048/min_degree") as f64,
    );
    let solve_speedup_2048 = ratio(
        get("rmat2048/min_degree/rank1_halfsolve_pair"),
        get("rmat2048/amd_btf/rank1_halfsolve_pair"),
    );
    println!("amd_btf vs min_degree factor speedup (rmat2048): {factor_speedup_2048:.2}x");
    println!("amd_btf / min_degree fill ratio (rmat2048): {fill_ratio_2048:.3}");
    println!("amd_btf vs min_degree rank1 half-solve speedup (rmat2048): {solve_speedup_2048:.2}x");

    let mut json = String::from("{\n  \"schema\": \"ohmflow-bench-report-pr4/1\",\n");
    json.push_str("  \"ns_per_op\": {\n");
    for (i, (name, ns)) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {ns:.0}{comma}\n"));
    }
    json.push_str("  },\n  \"fill_nnz\": {\n");
    for (i, (name, nnz)) in fills.iter().enumerate() {
        let comma = if i + 1 < fills.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {nnz}{comma}\n"));
    }
    json.push_str("  },\n  \"btf_blocks\": {\n");
    for (i, (name, count, largest)) in blocks.iter().enumerate() {
        let comma = if i + 1 < blocks.len() { "," } else { "" };
        json.push_str(&format!(
            "    \"{name}\": {{ \"count\": {count}, \"largest\": {largest} }}{comma}\n"
        ));
    }
    json.push_str("  },\n  \"speedups\": {\n");
    json.push_str(&format!(
        "    \"amd_btf_vs_min_degree_factor_rmat2048\": {factor_speedup_2048:.3},\n"
    ));
    json.push_str(&format!(
        "    \"amd_btf_fill_over_min_degree_rmat2048\": {fill_ratio_2048:.3},\n"
    ));
    json.push_str(&format!(
        "    \"amd_btf_vs_min_degree_rank1_halfsolve_rmat2048\": {solve_speedup_2048:.3}\n"
    ));
    json.push_str("  }\n}\n");

    let out =
        std::env::var("OHMFLOW_BENCH_OUT_PR4").unwrap_or_else(|_| "BENCH_PR4.json".to_owned());
    std::fs::write(&out, json).expect("write pr4 bench report");
    println!("wrote {out}");
}

/// The PR 5 staged-facade section: the facade must be free. Repeat solves
/// through `MaxFlowSolver::solve` (plan cache) are measured against a
/// second solver clone sharing the same plan cache (the JSON keys keep
/// their original `direct_templated` names for trajectory continuity —
/// the deprecated direct path those names referred to was deleted in
/// PR 8, and a cache-sharing clone is the same measurement), against the
/// explicit `plan → instance → solve` staging, and against the plan-cache
/// hit cost itself, on the rmat1024/rmat2048 substrates. The recorded
/// `facade_vs_direct_templated_rmat1024` ratio is the acceptance bar
/// (< 1.05): both paths ride the identical internals, so anything above
/// noise means the facade grew a real cost.
fn pr5_report() {
    println!("--- PR5 staged facade ---");
    let mut entries: Vec<(String, f64)> = Vec::new();
    let mut push = |name: String, ns: f64| {
        println!("{name:<48} {ns:>14.0} ns/op");
        entries.push((name, ns));
    };

    for (name, g) in [
        ("rmat1024", fig10_instance(1024, false, 1)),
        ("rmat2048", fig10_instance(2048, false, 1)),
    ] {
        let mut cfg = SolveOptions::evaluation_quasi_static(10e9);
        cfg.params.v_flow = 800.0;
        let solver = MaxFlowSolver::new(cfg);
        // The cloned solver shares the same plan cache, so both handles
        // measure the identical warm state.
        let twin = solver.clone();
        solver.solve(&g).expect("prime plan");

        let direct = median_ns(3, || twin.solve(&g).expect("solve").value);
        let facade = median_ns(3, || solver.solve(&g).expect("solve").value);
        let plan = solver.plan(&g).expect("plan");
        assert!(plan.cache_hit(), "primed plan must come from the cache");
        let staged = median_ns(3, || {
            plan.instance(&g)
                .expect("instance")
                .solve()
                .expect("solve")
                .value
        });
        let plan_hit = median_ns(9, || solver.plan(&g).expect("plan").cache_hit());
        push(format!("{name}/direct_templated_repeat_solve"), direct);
        push(format!("{name}/facade_repeat_solve"), facade);
        push(format!("{name}/facade_staged_repeat_solve"), staged);
        push(format!("{name}/plan_cache_hit"), plan_hit);
    }

    let get = |key: &str| {
        entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| *v)
            .unwrap_or(0.0)
    };
    let ratio = |a: f64, b: f64| if b > 0.0 { a / b } else { 0.0 };
    let overhead_1024 = ratio(
        get("rmat1024/facade_repeat_solve"),
        get("rmat1024/direct_templated_repeat_solve"),
    );
    let overhead_2048 = ratio(
        get("rmat2048/facade_repeat_solve"),
        get("rmat2048/direct_templated_repeat_solve"),
    );
    let staged_overhead_1024 = ratio(
        get("rmat1024/facade_staged_repeat_solve"),
        get("rmat1024/direct_templated_repeat_solve"),
    );
    println!("facade repeat-solve overhead (rmat1024): {overhead_1024:.3}x");
    println!("facade repeat-solve overhead (rmat2048): {overhead_2048:.3}x");
    println!("staged plan->instance->solve overhead (rmat1024): {staged_overhead_1024:.3}x");

    let mut json = String::from("{\n  \"schema\": \"ohmflow-bench-report-pr5/1\",\n");
    json.push_str("  \"ns_per_op\": {\n");
    for (i, (name, ns)) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {ns:.0}{comma}\n"));
    }
    json.push_str("  },\n  \"overheads\": {\n");
    json.push_str(&format!(
        "    \"facade_vs_direct_templated_rmat1024\": {overhead_1024:.3},\n"
    ));
    json.push_str(&format!(
        "    \"facade_vs_direct_templated_rmat2048\": {overhead_2048:.3},\n"
    ));
    json.push_str(&format!(
        "    \"facade_staged_vs_direct_templated_rmat1024\": {staged_overhead_1024:.3}\n"
    ));
    json.push_str("  }\n}\n");

    let out =
        std::env::var("OHMFLOW_BENCH_OUT_PR5").unwrap_or_else(|_| "BENCH_PR5.json".to_owned());
    std::fs::write(&out, json).expect("write pr5 bench report");
    println!("wrote {out}");
}

/// The PR 6 section: the KLU-style restructure. Two tracked stories:
///
/// * rmat2048 rank-1 solves under the production factor (AmdBtfNd,
///   multi-block, off-diagonal entries applied at solve time): the
///   block-aware seed-queue sparse solve vs one full dense `solve_into`.
///   Before PR 6 the cross-block U closure densified the backward reach
///   and the sparse path lost to dense (~0.45x); with U confined to its
///   block the sparse path must win (>= 1.0x is the acceptance bar).
/// * rmat128 numeric replay: serial refactor of the multi-block default
///   vs a single-block AMD factor of the same matrix — the closure tax
///   the raw `A_off` layout removed (also guarded in `ordering_guard`).
fn pr6_report() {
    println!("--- PR6 solve-time off-diagonal blocks ---");
    let mut entries: Vec<(String, f64)> = Vec::new();
    let mut push = |name: String, ns: f64| {
        println!("{name:<52} {ns:>14.0} ns/op");
        entries.push((name, ns));
    };

    // rmat2048 rank-1: dense full solve vs block-aware sparse solve.
    {
        let g = fig10_instance(2048, false, 1);
        let sc = bench_substrate(&g);
        let (m, lu) = DcSolver::new().stamp(sc.circuit()).expect("dc system");
        let sym = lu.symbolic();
        println!(
            "rmat2048: {} unknowns, {} blocks (largest {}), {} off-diagonal nnz",
            sym.dim(),
            sym.block_count(),
            sym.largest_block(),
            sym.off_nnz()
        );
        let pairs = diode_unknown_pairs(&sc);
        let sample: Vec<(usize, usize)> = pairs
            .iter()
            .step_by((pairs.len() / 64).max(1))
            .copied()
            .collect();
        let n = m.cols();
        let mut dense_rhs = vec![0.0; n];
        let (mut work, mut out) = (Vec::new(), Vec::new());
        let t_dense = median_ns(7, || {
            for &(a, c) in &sample {
                dense_rhs[a] = 1e3;
                dense_rhs[c] = -1e3;
                lu.solve_into(&dense_rhs, &mut work, &mut out)
                    .expect("solve");
                dense_rhs[a] = 0.0;
                dense_rhs[c] = 0.0;
            }
        });
        let mut sws = SparseSolveWorkspace::new();
        let mut x = Vec::new();
        let t_sparse = median_ns(7, || {
            for &(a, c) in &sample {
                lu.solve_sparse_into(&[(a, 1e3), (c, -1e3)], &mut sws, &mut x)
                    .expect("sparse solve");
            }
        });
        let per = sample.len() as f64;
        push("rmat2048/rank1_solve_dense".to_owned(), t_dense / per);
        push(
            "rmat2048/rank1_solve_sparse_blockaware".to_owned(),
            t_sparse / per,
        );
    }

    // rmat128 numeric replay: multi-block default vs single-block AMD.
    {
        let g = fig10_instance(128, false, 1);
        let sc = bench_substrate(&g);
        let (m, lu_blk) = DcSolver::new().stamp(sc.circuit()).expect("dc system");
        let opts = SparseLuOptions {
            ordering: ColumnOrdering::Amd,
            ..Default::default()
        };
        let lu_amd = SparseLu::factor_with(&m, &opts).expect("amd factor");
        let mut ws = LuWorkspace::new();
        for (label, mut lu) in [("multiblock", lu_blk), ("amd", lu_amd)] {
            push(
                format!("rmat128/refactor_serial_{label}"),
                median_ns(15, || {
                    lu.refactor_with_strategy(&m, &mut ws, RefactorStrategy::Serial)
                        .expect("refactor")
                }),
            );
        }
    }

    let get = |key: &str| {
        entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| *v)
            .unwrap_or(0.0)
    };
    let ratio = |a: f64, b: f64| if b > 0.0 { a / b } else { 0.0 };
    let sparse_speedup_2048 = ratio(
        get("rmat2048/rank1_solve_dense"),
        get("rmat2048/rank1_solve_sparse_blockaware"),
    );
    let replay_ratio_128 = ratio(
        get("rmat128/refactor_serial_multiblock"),
        get("rmat128/refactor_serial_amd"),
    );
    println!("block-aware sparse vs dense rank1 solve (rmat2048): {sparse_speedup_2048:.2}x");
    println!("multi-block vs AMD replay ratio (rmat128): {replay_ratio_128:.3}");

    let mut json = String::from("{\n  \"schema\": \"ohmflow-bench-report-pr6/1\",\n");
    json.push_str("  \"ns_per_op\": {\n");
    for (i, (name, ns)) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {ns:.0}{comma}\n"));
    }
    json.push_str("  },\n  \"speedups\": {\n");
    json.push_str(&format!(
        "    \"rank1_sparse_vs_dense_solve_rmat2048\": {sparse_speedup_2048:.3},\n"
    ));
    json.push_str(&format!(
        "    \"multiblock_replay_vs_amd_rmat128\": {replay_ratio_128:.3}\n"
    ));
    json.push_str("  }\n}\n");

    let out =
        std::env::var("OHMFLOW_BENCH_OUT_PR6").unwrap_or_else(|_| "BENCH_PR6.json".to_owned());
    std::fs::write(&out, json).expect("write pr6 bench report");
    println!("wrote {out}");
}

/// The PR 7 supernodal / mixed-precision section: numeric refactorization
/// under the scalar per-column replay vs the supernodal blocked kernels
/// (same pivot sequence — a pure kernel comparison), and the `f64` vs
/// `F32Refined` storage precisions, on the three substrate MNA matrices.
/// Every case also reports the detected supernode structure and checks
/// the mixed-precision accuracy gate (refined `f32` solve within 1e-9 of
/// the `f64` solve) so a conditioning regression fails loudly here before
/// it fails in CI.
fn pr7_report() {
    use ohmflow_linalg::{vecops, Precision};

    println!("--- PR7 supernodal kernels + mixed precision ---");
    let mut entries: Vec<(String, f64)> = Vec::new();
    let mut speedups: Vec<(String, f64)> = Vec::new();
    let mut gates: Vec<(String, f64)> = Vec::new();
    let mut structure: Vec<String> = Vec::new();

    let substrates: Vec<(&str, ohmflow_graph::FlowNetwork)> = vec![
        ("rmat1024", fig10_instance(1024, false, 1)),
        ("rmat2048", fig10_instance(2048, false, 1)),
        ("dimacs_grid40", dimacs_grid_instance(40, 64, 7)),
    ];
    for (name, g) in &substrates {
        let sc = bench_substrate(g);
        let (m, lu) = DcSolver::new().stamp(sc.circuit()).expect("dc system");
        let stats = lu
            .symbolic()
            .supernode_stats()
            .expect("default options detect supernodes");
        println!(
            "{name}: {} unknowns, {} supernodes ({} multi-column, mean width {:.1}, max {})",
            lu.symbolic().dim(),
            stats.supernodes,
            stats.multi,
            stats.mean_width,
            stats.max_width
        );
        structure.push(format!(
            "    \"{name}\": {{ \"unknowns\": {}, \"supernodes\": {}, \"multi\": {}, \
             \"covered_steps\": {}, \"mean_width\": {:.2}, \"max_width\": {} }}",
            lu.symbolic().dim(),
            stats.supernodes,
            stats.multi,
            stats.covered_steps,
            stats.mean_width,
            stats.max_width
        ));

        let mut push = |key: String, ns: f64| {
            println!("{key:<52} {ns:>14.0} ns/op");
            entries.push((key, ns));
        };
        let mut ws = LuWorkspace::new();

        // Factorization (pivoting cold path — always f64 pivot search).
        push(
            format!("{name}/factor_f64"),
            median_ns(3, || SparseLu::factor(&m).expect("factor")),
        );

        // Numeric replay: scalar oracle vs blocked kernels, then the
        // blocked kernels on the narrow factor. All serial, same pivots.
        let scalar_opts = SparseLuOptions {
            supernodal: false,
            ..SparseLuOptions::default()
        };
        let mut lu_scalar = SparseLu::factor_with(&m, &scalar_opts).expect("scalar factor");
        let t_scalar = median_ns(7, || {
            lu_scalar
                .refactor_with_strategy(&m, &mut ws, RefactorStrategy::Serial)
                .expect("scalar refactor")
        });
        push(format!("{name}/refactor_scalar_f64"), t_scalar);

        let mut lu_sn = lu.clone();
        let t_sn = median_ns(7, || {
            lu_sn
                .refactor_with_strategy(&m, &mut ws, RefactorStrategy::Serial)
                .expect("supernodal refactor")
        });
        push(format!("{name}/refactor_supernodal_f64"), t_sn);

        let f32_opts = SparseLuOptions {
            precision: Precision::F32Refined,
            ..SparseLuOptions::default()
        };
        let mut lu_f32 = SparseLu::factor_with(&m, &f32_opts).expect("f32 factor");
        let t_sn32 = median_ns(7, || {
            lu_f32
                .refactor_with_strategy(&m, &mut ws, RefactorStrategy::Serial)
                .expect("f32 refactor")
        });
        push(format!("{name}/refactor_supernodal_f32"), t_sn32);

        // Triangular solves: bare f64, then the refined solves both
        // precisions ship in production (the DC layer always polishes
        // with at least one residual-correction step; the narrow factor
        // loops until it has bought its digits back).
        let b = vec![1.0; m.cols()];
        let (mut work, mut x64) = (Vec::new(), Vec::new());
        let t_solve64 = median_ns(7, || {
            lu_sn.solve_into(&b, &mut work, &mut x64).expect("solve")
        });
        push(format!("{name}/solve_f64"), t_solve64);
        let mut x64r = Vec::new();
        let t_solve64r = median_ns(7, || {
            lu_sn
                .solve_refined_with(&m, &b, &mut ws, &mut x64r)
                .expect("refined f64 solve")
        });
        push(format!("{name}/solve_refined_f64"), t_solve64r);
        let mut x32 = Vec::new();
        let t_solve32 = median_ns(7, || {
            lu_f32
                .solve_refined_with(&m, &b, &mut ws, &mut x32)
                .expect("refined f32 solve")
        });
        push(format!("{name}/solve_refined_f32"), t_solve32);

        // The 1e-9 accuracy gate the mixed-precision path must hold
        // against the f64 pipeline's answer. (The *bare* f64 solve is the
        // wrong baseline: on these stamps its own error is ~1e-8 — the
        // refined f32 solve carries a smaller residual than it does.)
        let err = x32
            .iter()
            .zip(&x64r)
            .map(|(a, b)| vecops::rel_diff(*a, *b))
            .fold(0.0f64, f64::max);
        println!("{name}: refined f32 vs refined f64 solve rel diff {err:.3e}");
        assert!(
            err < 1e-9,
            "{name}: mixed-precision accuracy gate failed: {err:.3e}"
        );
        gates.push((format!("{name}/f32_vs_f64_refined_solve_rel_diff"), err));

        // Headline ratios: blocked vs scalar kernels at equal precision,
        // and the full mixed pipeline (refactor + solve) against the
        // scalar f64 pipeline (the pre-PR default) and against the
        // supernodal f64 pipeline (precision in isolation).
        speedups.push((
            format!("supernodal_vs_scalar_refactor_{name}"),
            t_scalar / t_sn,
        ));
        speedups.push((
            format!("f32_pipeline_vs_f64_scalar_pipeline_{name}"),
            (t_scalar + t_solve64r) / (t_sn32 + t_solve32),
        ));
        speedups.push((
            format!("f32_pipeline_vs_f64_supernodal_pipeline_{name}"),
            (t_sn + t_solve64r) / (t_sn32 + t_solve32),
        ));
    }
    for (k, v) in &speedups {
        println!("{k}: {v:.2}x");
    }

    let mut json = String::from("{\n  \"schema\": \"ohmflow-bench-report-pr7/1\",\n");
    json.push_str("  \"ns_per_op\": {\n");
    for (i, (name, ns)) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {ns:.0}{comma}\n"));
    }
    json.push_str("  },\n  \"supernodes\": {\n");
    json.push_str(&structure.join(",\n"));
    json.push_str("\n  },\n  \"accuracy\": {\n");
    for (i, (name, err)) in gates.iter().enumerate() {
        let comma = if i + 1 < gates.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {err:.3e}{comma}\n"));
    }
    json.push_str("  },\n  \"speedups\": {\n");
    for (i, (name, v)) in speedups.iter().enumerate() {
        let comma = if i + 1 < speedups.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {v:.3}{comma}\n"));
    }
    json.push_str("  }\n}\n");

    let out =
        std::env::var("OHMFLOW_BENCH_OUT_PR7").unwrap_or_else(|_| "BENCH_PR7.json".to_owned());
    std::fs::write(&out, json).expect("write pr7 bench report");
    println!("wrote {out}");
}

/// The PR 8 section: the concurrent sharded plan cache. Three tracked
/// stories on the quasi-static rmat substrates:
///
/// * Hit-path latency, old vs new. The pre-PR-8 hit path rebuilt the full
///   `TemplateKey` (edge `Vec` + per-edge `Hash` dispatch into SipHash)
///   on every lookup; that per-edge rehash is reconstructed here as the
///   baseline and set against today's key rebuild (cold path only), the
///   streaming-fingerprint probe and the end-to-end `MaxFlowSolver::plan`
///   warm hit. The acceptance bar is the rmat2048 hit landing >= 5x under
///   the 107744 ns recorded in `BENCH_PR5.json`.
/// * Warm-hit throughput under concurrency: 1/2/4 threads hammering one
///   shared cache through solver clones. On the multi-core bench runner
///   aggregate throughput should hold (lock-striped shards); the
///   recorded ratios are aggregate ns/op relative to one thread.
/// * Eviction pressure: the same lookup mix under a roomy, a tight and a
///   floor-sized `plan_cache_bytes` budget, with the hit/miss/eviction
///   counters from `PlanCacheStats` recorded alongside the latency.
fn pr8_report() {
    use std::hint::black_box;

    use ohmflow::TemplateKey;
    use ohmflow_circuit::Precision;

    println!("--- PR8 concurrent plan cache ---");
    let mut entries: Vec<(String, f64)> = Vec::new();
    let mut push = |name: String, ns: f64| {
        println!("{name:<48} {ns:>14.0} ns/op");
        entries.push((name, ns));
    };

    // Hit latency recorded by the PR 5 report on this container, before
    // the fingerprint-first rewrite (BENCH_PR5.json, `plan_cache_hit`).
    const PR5_RECORDED_HIT_NS: [(&str, f64); 2] = [("rmat1024", 56502.0), ("rmat2048", 107744.0)];

    let (ordering, precision) = (ColumnOrdering::default(), Precision::default());
    let mut speedups: Vec<(String, f64)> = Vec::new();
    for (name, g) in [
        ("rmat1024", fig10_instance(1024, false, 1)),
        ("rmat2048", fig10_instance(2048, false, 1)),
    ] {
        let mut cfg = SolveOptions::evaluation_quasi_static(10e9);
        cfg.params.v_flow = 800.0;
        let solver = MaxFlowSolver::new(cfg);
        solver.solve(&g).expect("prime plan");

        // The pre-PR-8 lookup cost, reconstructed: per-edge `Hash`-trait
        // dispatch into SipHash (the derived-`Hash` `HashMap` key probe
        // every hit used to pay) — versus today's key rebuild (cold path
        // only), the streaming fingerprint, and the end-to-end warm hit.
        let rehash = median_ns(9, || {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            g.vertex_count().hash(&mut h);
            g.source().hash(&mut h);
            g.sink().hash(&mut h);
            for e in black_box(&g).edges() {
                (e.from, e.to).hash(&mut h);
            }
            black_box(h.finish())
        });
        let key_rebuild = median_ns(9, || {
            black_box(TemplateKey::with_lu(black_box(&g), ordering, precision))
        });
        let fingerprint = median_ns(9, || {
            black_box(TemplateKey::fingerprint(black_box(&g), ordering, precision))
        });
        let hit = median_ns(9, || solver.plan(&g).expect("plan").cache_hit());
        push(format!("{name}/siphash_rehash_baseline"), rehash);
        push(format!("{name}/key_rebuild"), key_rebuild);
        push(format!("{name}/topology_fingerprint"), fingerprint);
        push(format!("{name}/plan_cache_hit"), hit);
        speedups.push((format!("hit_vs_siphash_rehash_{name}"), rehash / hit));
        let recorded = PR5_RECORDED_HIT_NS
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| *v)
            .expect("recorded baseline");
        speedups.push((format!("hit_vs_pr5_recorded_{name}"), recorded / hit));
    }

    // Warm-hit throughput: clones share the one sharded cache.
    let g = fig10_instance(1024, false, 1);
    let mut cfg = SolveOptions::evaluation_quasi_static(10e9);
    cfg.params.v_flow = 800.0;
    let solver = MaxFlowSolver::new(cfg);
    solver.solve(&g).expect("prime plan");
    const OPS_PER_THREAD: usize = 512;
    let mut agg = Vec::new();
    for threads in [1usize, 2, 4] {
        let start = std::time::Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let worker = solver.clone();
                let g = &g;
                scope.spawn(move || {
                    for _ in 0..OPS_PER_THREAD {
                        assert!(worker.plan(g).expect("plan").cache_hit());
                    }
                });
            }
        });
        let ns = start.elapsed().as_nanos() as f64 / (threads * OPS_PER_THREAD) as f64;
        push(format!("concurrent_hit_threads{threads}/agg_ns_per_op"), ns);
        agg.push(ns);
    }
    speedups.push(("concurrent_agg_threads2_vs_1".into(), agg[0] / agg[1]));
    speedups.push(("concurrent_agg_threads4_vs_1".into(), agg[0] / agg[2]));

    // Eviction pressure: cycle eight rmat128 topologies through budgets
    // from roomy (everything resident) down to the one-plan-per-shard
    // floor, and record the cache counters the sweep leaves behind.
    let mix: Vec<_> = (0..8).map(|s| fig10_instance(128, false, s)).collect();
    let mut counters: Vec<(String, u64)> = Vec::new();
    for (label, budget) in [
        ("roomy_64mb", 64usize << 20),
        ("tight_512kb", 512 << 10),
        ("floor_1b", 1),
    ] {
        let mut cfg = SolveOptions::evaluation_quasi_static(10e9).with_plan_cache_bytes(budget);
        cfg.params.v_flow = 800.0;
        let solver = MaxFlowSolver::new(cfg);
        for g in &mix {
            solver.plan(g).expect("prime");
        }
        let ns = median_ns(3, || {
            for g in &mix {
                solver.plan(g).expect("plan");
            }
        });
        push(format!("eviction_{label}/lookup_cycle8"), ns);
        let stats = solver.plan(&mix[0]).expect("plan").report().cache;
        for (k, v) in [
            ("hits", stats.hits),
            ("misses", stats.misses),
            ("evictions", stats.evictions),
            ("resident_plans", stats.resident_plans as u64),
        ] {
            counters.push((format!("eviction_{label}/{k}"), v));
        }
    }

    for (k, v) in &speedups {
        println!("{k}: {v:.2}x");
    }

    let mut json = String::from("{\n  \"schema\": \"ohmflow-bench-report-pr8/1\",\n");
    json.push_str("  \"ns_per_op\": {\n");
    for (i, (name, ns)) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {ns:.0}{comma}\n"));
    }
    json.push_str("  },\n  \"cache_counters\": {\n");
    for (i, (name, v)) in counters.iter().enumerate() {
        let comma = if i + 1 < counters.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {v}{comma}\n"));
    }
    json.push_str("  },\n  \"speedups\": {\n");
    for (i, (name, v)) in speedups.iter().enumerate() {
        let comma = if i + 1 < speedups.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {v:.3}{comma}\n"));
    }
    json.push_str("  }\n}\n");

    let out =
        std::env::var("OHMFLOW_BENCH_OUT_PR8").unwrap_or_else(|_| "BENCH_PR8.json".to_owned());
    std::fs::write(&out, json).expect("write pr8 bench report");
    println!("wrote {out}");
}

/// The PR 9 section: the graph-delta fast path. Four tracked stories:
///
/// * The headline delta-solve amortization on rmat2048: a k=8 mixed
///   delta batch (4 capacity restamps + 2 exact removals + 2 in-place
///   revivals) absorbed by a standing [`ohmflow::DeltaSession`] versus
///   the cold plan+build+solve the same change would cost without one.
///   The acceptance bar (also enforced by `delta_guard`) is >= 10x.
/// * Capacity-only k=8 batches — the cheapest delta class (pure
///   level-source restamps against the standing factor).
/// * The rank-k batched Woodbury push (`LowRankUpdate::push_batch`, one
///   capacitance refresh + multi-lane z-solves) versus k sequential
///   rank-1 `push`es, on a single-block AMD factor of rmat1024 where the
///   multi-RHS lanes engage, and on the multi-block production factor of
///   rmat2048 where the batch falls back to reach-limited per-column
///   solves (recorded so the fallback's parity is tracked too).
/// * The k=8 multi-RHS blocked triangular solve vs eight single-RHS
///   solves on the same factor, and the `small_n` adaptive-path numbers
///   behind `SMALL_INSTANCE_EDGES` (cold direct build+solve vs cold
///   plan+instantiate+solve on a sub-threshold grid).
fn pr9_report() {
    use std::time::Instant;

    use ohmflow::DeltaBatch;

    println!("--- PR9 graph-delta fast path ---");
    let mut entries: Vec<(String, f64)> = Vec::new();
    let mut push = |name: String, ns: f64| {
        println!("{name:<52} {ns:>14.0} ns/op");
        entries.push((name, ns));
    };
    let mut speedups: Vec<(String, f64)> = Vec::new();

    // --- Delta-session amortization on rmat2048. ---
    {
        let g = fig10_instance(2048, false, 1);
        // The ideal build: its conservation stars are plain resistors, so
        // edge removal/insertion rides the value-only surgery + rank-k
        // Woodbury fast path. Op-amp builds (the §5.1 evaluation
        // configs) realize star magnitudes inside subcircuits the session
        // cannot retune by value and fall back to structural re-keys —
        // the slow path by design, not what this section measures.
        let solver = MaxFlowSolver::new(SolveOptions::ideal());

        // What the same stream costs without a session: every batch pays
        // a cold plan+build+solve of the mutated graph.
        let cold = median_ns(3, || solver.solve_fresh(&g).expect("cold solve").value);
        push("rmat2048/cold_plan_build_solve".to_owned(), cold);

        let mut session = solver.delta_session(&g).expect("delta session");
        session.apply_deltas(&DeltaBatch::new()).expect("opening");

        // Interior (non-circulation) edges are the removable pool; the
        // walk removes two per round and revives the previous round's
        // two, so the live set is periodic and every batch is k=8 mixed.
        let removable: Vec<(usize, i64)> = g
            .edges()
            .iter()
            .enumerate()
            .filter(|(_, e)| e.to != g.source() && e.from != g.sink())
            .map(|(k, e)| (k, e.capacity))
            .collect();
        let mixed_batch = |round: usize| {
            let l = removable.len();
            let (r0, r1) = (removable[(2 * round) % l], removable[(2 * round + 1) % l]);
            let (p0, p1) = (
                removable[(2 * round + l - 2) % l],
                removable[(2 * round + l - 1) % l],
            );
            let mut b = DeltaBatch::new()
                .remove_edge(r0.0)
                .remove_edge(r1.0)
                .insert_edge(g.edges()[p0.0].from, g.edges()[p0.0].to, p0.1)
                .insert_edge(g.edges()[p1.0].from, g.edges()[p1.0].to, p1.1);
            for i in 0..4 {
                let (k, cap) = removable[(4 * round + i + 7) % l];
                b = b.set_capacity(k, 1 + (cap + round as i64) % 99);
            }
            b
        };
        // Prime round 0's revivals (outside timing).
        session
            .apply_deltas(
                &DeltaBatch::new()
                    .remove_edge(removable[removable.len() - 2].0)
                    .remove_edge(removable[removable.len() - 1].0),
            )
            .expect("prime removals");
        let rounds = 12;
        let t0 = Instant::now();
        for r in 0..rounds {
            let report = session.apply_deltas(&mixed_batch(r)).expect("mixed batch");
            assert!(!report.replanned, "periodic mixed walk must not re-key");
        }
        let mixed = t0.elapsed().as_nanos() as f64 / rounds as f64;
        push("rmat2048/delta_mixed_k8_apply".to_owned(), mixed);
        println!(
            "rmat2048 session after mixed walk: rank {}, consolidations {}, replans {}",
            session.outstanding_rank(),
            session.consolidations(),
            session.replans()
        );

        // Heal the walk: revive the final mixed round's two removals so
        // the capacity rounds below never touch a dead id.
        let (d0, d1) = (
            removable[(2 * (rounds - 1)) % removable.len()],
            removable[(2 * (rounds - 1) + 1) % removable.len()],
        );
        session
            .apply_deltas(
                &DeltaBatch::new()
                    .insert_edge(g.edges()[d0.0].from, g.edges()[d0.0].to, d0.1)
                    .insert_edge(g.edges()[d1.0].from, g.edges()[d1.0].to, d1.1),
            )
            .expect("heal removals");

        // Capacity-only batches: the cheapest class (no surgery).
        let cap_batch = |round: usize| {
            let l = removable.len();
            let mut b = DeltaBatch::new();
            for i in 0..8 {
                let (k, cap) = removable[(8 * round + i) % l];
                b = b.set_capacity(k, 1 + (cap + round as i64) % 99);
            }
            b
        };
        let t0 = Instant::now();
        for r in 0..rounds {
            session.apply_deltas(&cap_batch(r)).expect("capacity batch");
        }
        let caps = t0.elapsed().as_nanos() as f64 / rounds as f64;
        push("rmat2048/delta_capacity_k8_apply".to_owned(), caps);
        speedups.push(("delta_mixed_k8_vs_cold_rmat2048".to_owned(), cold / mixed));
        speedups.push(("delta_capacity_k8_vs_cold_rmat2048".to_owned(), cold / caps));
    }

    // --- Rank-k batched push vs k sequential rank-1 pushes. ---
    // Terms are real diode-pair conductance perturbations
    // `g·(e_a - e_c)(e_a - e_c)^T` on the substrate MNA matrix. The
    // sequential path refreshes the dense capacitance factor k times and
    // solves k single-RHS systems; the batch refreshes once and carries
    // its z-columns through multi-lane traversals (single-block factors)
    // or reach-limited per-column solves (multi-block fallback).
    for (name, g, single_block) in [
        ("rmat1024_amd", fig10_instance(1024, false, 1), true),
        ("rmat2048", fig10_instance(2048, false, 1), false),
    ] {
        use ohmflow_linalg::{LowRankUpdate, RankOneTermRef};

        let sc = bench_substrate(&g);
        let (m, lu_default) = DcSolver::new().stamp(sc.circuit()).expect("dc system");
        let lu = if single_block {
            let opts = SparseLuOptions {
                ordering: ColumnOrdering::Amd,
                ..Default::default()
            };
            SparseLu::factor_with(&m, &opts).expect("amd factor")
        } else {
            lu_default
        };
        println!("{name}: {} blocks", lu.symbolic().block_count());
        let pairs = diode_unknown_pairs(&sc);
        let k = 8;
        #[allow(clippy::type_complexity)]
        let terms: Vec<(Vec<(usize, f64)>, Vec<(usize, f64)>)> = pairs
            .iter()
            .step_by((pairs.len() / k).max(1))
            .take(k)
            .map(|&(a, c)| (vec![(a, 1e-4), (c, -1e-4)], vec![(a, 1.0), (c, -1.0)]))
            .collect();
        let term_refs: Vec<RankOneTermRef<'_>> = terms
            .iter()
            .map(|(u, v)| (u.as_slice(), v.as_slice()))
            .collect();
        let n = m.cols();
        let t_seq = median_ns(5, || {
            let mut up = LowRankUpdate::new(n);
            for (u, v) in &term_refs {
                up.push(&lu, u, v).expect("rank-1 push");
            }
        });
        let t_bat = median_ns(5, || {
            let mut up = LowRankUpdate::new(n);
            up.push_batch(&lu, &term_refs).expect("rank-8 batch push");
        });
        push(format!("{name}/rank1_push_x8_sequential"), t_seq);
        push(format!("{name}/rank8_push_batch"), t_bat);
        speedups.push((format!("push_batch_k8_vs_sequential_{name}"), t_seq / t_bat));

        // Multi-RHS blocked triangular solve vs k single-RHS solves on
        // the same factor (the primitive push_batch rides).
        let b1 = vec![1.0; n];
        let bk = vec![1.0; n * k];
        let (mut work, mut out) = (Vec::new(), Vec::new());
        let t_single = median_ns(5, || {
            for _ in 0..k {
                lu.solve_into(&b1, &mut work, &mut out).expect("solve");
            }
        });
        let t_multi = median_ns(5, || {
            lu.solve_multi_into(&bk, k, &mut work, &mut out)
                .expect("multi solve")
        });
        push(format!("{name}/triangular_solve_x8_single"), t_single);
        push(format!("{name}/triangular_solve_multi_k8"), t_multi);
        speedups.push((
            format!("solve_multi_k8_vs_x8_single_{name}"),
            t_single / t_multi,
        ));
    }

    // --- small_n: the adaptive-path numbers behind SMALL_INSTANCE_EDGES.
    // A sub-threshold grid (3x3: 30 edges < 48): cold direct build+solve
    // vs the cold plan+instantiate+solve a one-shot `solve` used to pay.
    {
        let g = dimacs_grid_instance(3, 50, 7);
        assert!(g.edge_count() < ohmflow::solver::SMALL_INSTANCE_EDGES);
        let mut cfg = SolveOptions::evaluation_quasi_static(10e9);
        cfg.params.v_flow = 800.0;
        let solver = MaxFlowSolver::new(cfg.clone());
        let direct = median_ns(9, || solver.solve_fresh(&g).expect("solve").value);
        let templated = median_ns(9, || {
            // A fresh solver per round keeps the plan cache cold: this is
            // the build-plan-then-instantiate path the threshold retired.
            let s = MaxFlowSolver::new(cfg.clone());
            let plan = s.plan(&g).expect("plan");
            plan.instance(&g)
                .expect("instance")
                .solve()
                .expect("solve")
                .value
        });
        push("small_n_grid3/cold_direct_build_solve".to_owned(), direct);
        push(
            "small_n_grid3/cold_plan_instantiate_solve".to_owned(),
            templated,
        );
        speedups.push((
            "small_n_direct_vs_cold_planned_grid3".to_owned(),
            templated / direct,
        ));
    }

    for (k, v) in &speedups {
        println!("{k}: {v:.2}x");
    }

    let mut json = String::from("{\n  \"schema\": \"ohmflow-bench-report-pr9/1\",\n");
    json.push_str("  \"ns_per_op\": {\n");
    for (i, (name, ns)) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {ns:.0}{comma}\n"));
    }
    json.push_str("  },\n  \"speedups\": {\n");
    for (i, (name, v)) in speedups.iter().enumerate() {
        let comma = if i + 1 < speedups.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {v:.3}{comma}\n"));
    }
    json.push_str("  }\n}\n");

    let out =
        std::env::var("OHMFLOW_BENCH_OUT_PR9").unwrap_or_else(|_| "BENCH_PR9.json".to_owned());
    std::fs::write(&out, json).expect("write pr9 bench report");
    println!("wrote {out}");
}

/// PR 10 section: the structural-auditor overhead gate. The auto-audits
/// run under `cfg!(debug_assertions)` only, so a release warm solve must
/// cost exactly what it did before the seams landed. Two interleaved
/// groups of identical warm repeat-solves on rmat2048 measure the
/// seam-bearing path against itself; min-of-runs cancels scheduler noise
/// and the ratio is gated at 1.02x. The explicit release-mode audit
/// costs (what `ohmflow-audit` pays per structure) are reported
/// alongside for visibility — they are *not* part of the solve path.
fn pr10_report() {
    println!("--- PR10 structural-audit overhead ---");
    let mut entries: Vec<(String, f64)> = Vec::new();
    let mut push = |name: String, ns: f64| {
        println!("{name:<52} {ns:>14.0} ns/op");
        entries.push((name, ns));
    };

    let g = fig10_instance(2048, false, 1);
    let solver = MaxFlowSolver::new(SolveOptions::ideal());
    solver.solve(&g).expect("prime plan");

    // Interleaved A/B groups of the same warm repeat-solve: ABBA-order
    // sampling puts both groups under the same thermal/scheduler
    // conditions (and cancels monotone drift), and min-of-group is the
    // stable estimator for a gate.
    for _ in 0..3 {
        solver.solve(&g).expect("warmup solve");
    }
    let rounds = 12;
    let mut best = [f64::INFINITY; 2];
    for r in 0..2 * rounds {
        let t0 = std::time::Instant::now();
        solver.solve(&g).expect("warm solve");
        let ns = t0.elapsed().as_nanos() as f64;
        let group = (r + r / 2) % 2; // A B B A A B B A ...
        if ns < best[group] {
            best[group] = ns;
        }
    }
    let ratio = best[1] / best[0];
    push("rmat2048/warm_repeat_solve_group_a".to_owned(), best[0]);
    push("rmat2048/warm_repeat_solve_group_b".to_owned(), best[1]);
    println!("rmat2048 repeat-solve overhead ratio: {ratio:.4}x (gate: <= 1.02x)");
    assert!(
        ratio <= 1.02,
        "debug-audit seams must add no release cost: repeat-solve ratio {ratio:.4} > 1.02"
    );

    // Explicit release-mode audit costs (the `ohmflow-audit` bill).
    let plan = solver.plan(&g).expect("plan");
    let instance = plan.instance(&g).expect("instance");
    let t_plan = median_ns(5, || plan.audit().expect("plan audit"));
    let t_inst = median_ns(5, || instance.audit().expect("instance audit"));
    push("rmat2048/explicit_plan_audit".to_owned(), t_plan);
    push("rmat2048/explicit_instance_audit".to_owned(), t_inst);

    let mut json = String::from("{\n  \"schema\": \"ohmflow-bench-report-pr10/1\",\n");
    json.push_str("  \"ns_per_op\": {\n");
    for (i, (name, ns)) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {ns:.0}{comma}\n"));
    }
    json.push_str("  },\n  \"ratios\": {\n");
    json.push_str(&format!(
        "    \"audit_seam_repeat_solve_rmat2048\": {ratio:.4}\n"
    ));
    json.push_str("  }\n}\n");

    let out =
        std::env::var("OHMFLOW_BENCH_OUT_PR10").unwrap_or_else(|_| "BENCH_PR10.json".to_owned());
    std::fs::write(&out, json).expect("write pr10 bench report");
    println!("wrote {out}");
}

/// Merge every `BENCH_PR<N>.json` in the working directory into one
/// `BENCH_TRAJECTORY.json` keyed by PR ("PR2", "PR3", ...), so a single
/// CI artifact carries the whole perf trajectory. Each per-PR report is
/// already a JSON object; it is embedded verbatim (re-indented), so the
/// merge needs no JSON parser.
fn trajectory_report() {
    // Snapshot the baseline before this run's merge overwrites it: in CI
    // the previous run's `BENCH_TRAJECTORY.json` is restored to the path
    // named by `OHMFLOW_BENCH_BASELINE` and the regression gate below
    // compares this run's PR 9 guard metrics against it.
    let baseline_path = std::env::var("OHMFLOW_BENCH_BASELINE")
        .unwrap_or_else(|_| "BENCH_TRAJECTORY.json".to_owned());
    let baseline = std::fs::read_to_string(&baseline_path).ok();

    let mut reports: Vec<(u32, String)> = Vec::new();
    let dir = std::env::current_dir().expect("cwd");
    for entry in std::fs::read_dir(&dir).expect("read cwd") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let Some(num) = name
            .strip_prefix("BENCH_PR")
            .and_then(|rest| rest.strip_suffix(".json"))
            .and_then(|n| n.parse::<u32>().ok())
        else {
            continue;
        };
        let body = std::fs::read_to_string(entry.path()).expect("read bench report");
        reports.push((num, body));
    }
    if reports.is_empty() {
        println!("no BENCH_PR*.json found; skipping BENCH_TRAJECTORY.json");
        return;
    }
    reports.sort_by_key(|&(num, _)| num);

    let mut json = String::from("{\n  \"schema\": \"ohmflow-bench-trajectory/1\",\n");
    json.push_str("  \"reports\": {\n");
    for (i, (num, body)) in reports.iter().enumerate() {
        let comma = if i + 1 < reports.len() { "," } else { "" };
        json.push_str(&format!("    \"PR{num}\": "));
        let mut lines = body.trim_end().lines();
        if let Some(first) = lines.next() {
            json.push_str(first);
            json.push('\n');
        }
        for line in lines {
            json.push_str("    ");
            json.push_str(line);
            json.push('\n');
        }
        // The embedded object's closing brace is already indented; attach
        // the separator on its own to keep the output valid JSON.
        json.truncate(json.trim_end().len());
        json.push_str(comma);
        json.push('\n');
    }
    json.push_str("  }\n}\n");

    let out = std::env::var("OHMFLOW_BENCH_OUT_TRAJECTORY")
        .unwrap_or_else(|_| "BENCH_TRAJECTORY.json".to_owned());
    std::fs::write(&out, json).expect("write trajectory report");
    println!(
        "wrote {out} ({} reports: {})",
        reports.len(),
        reports
            .iter()
            .map(|(n, _)| format!("PR{n}"))
            .collect::<Vec<_>>()
            .join(", ")
    );

    // The PR 9 regression gate: every tier-1 guard metric (the
    // `speedups` of BENCH_PR9.json) must hold within 25% of the PR 9
    // section recorded in the baseline trajectory, or the trajectory
    // rebuild exits nonzero (after writing the new artifact, so CI still
    // uploads it for diagnosis). Runs only when both sides exist —
    // first runs and PR-9-less checkouts pass trivially.
    let current = reports
        .iter()
        .find(|&&(num, _)| num == 9)
        .map(|(_, body)| speedup_metrics(body, None));
    let recorded = baseline
        .as_deref()
        .map(|text| speedup_metrics(text, Some("\"PR9\"")));
    if let (Some(current), Some(recorded)) = (current, recorded) {
        let mut regressed = Vec::new();
        for (name, now) in &current {
            let Some((_, before)) = recorded.iter().find(|(k, _)| k == name) else {
                continue;
            };
            // Gate only metrics whose baseline records a real speedup.
            // Parity entries (the small_n ~1.0x comparison documents
            // "no slower", not a win) ride sub-millisecond timings whose
            // noise would flap a 25% band.
            if *before > 1.0 && *now < 0.75 * before {
                regressed.push(format!(
                    "{name}: {now:.3}x vs recorded {before:.3}x ({:.0}% regression)",
                    100.0 * (1.0 - now / before)
                ));
            }
        }
        if recorded.is_empty() {
            println!("baseline {baseline_path} carries no PR9 metrics; regression gate skipped");
        } else if regressed.is_empty() {
            println!(
                "PR9 regression gate: {} guard metrics within 25% of {baseline_path}",
                current.len()
            );
        } else {
            eprintln!("PR9 regression gate FAILED vs {baseline_path}:");
            for line in &regressed {
                eprintln!("  {line}");
            }
            std::process::exit(1);
        }
    } else {
        println!("no BENCH_PR9.json or no baseline trajectory; regression gate skipped");
    }
}

/// Extracts the `"name": value` pairs of the first `"speedups"` object
/// after `anchor` (or from the start of `text`) — enough of a JSON
/// reader for the regression gate, since every report is written by the
/// fixed-format emitters above (one `"key": number` pair per line).
fn speedup_metrics(text: &str, anchor: Option<&str>) -> Vec<(String, f64)> {
    let start = match anchor {
        Some(a) => match text.find(a) {
            Some(i) => i,
            None => return Vec::new(),
        },
        None => 0,
    };
    let Some(s) = text[start..].find("\"speedups\"") else {
        return Vec::new();
    };
    let tail = &text[start + s..];
    let Some(open) = tail.find('{') else {
        return Vec::new();
    };
    let Some(close) = tail[open..].find('}') else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for line in tail[open + 1..open + close].lines() {
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        let value = value.trim().trim_end_matches(',');
        if let Ok(v) = value.parse::<f64>() {
            out.push((key.to_owned(), v));
        }
    }
    out
}
