//! Microprofile of the incremental frozen-DC engine: where a relaxation
//! time step spends its nanoseconds, and the session's effort counters.
//!
//! Run with: `cargo run --release -p ohmflow-bench --bin engine_profile`

use std::time::Instant;

use ohmflow::builder::{build, BuildOptions, CapacityMapping, Drive, NegativeResistorImpl};
use ohmflow::solver::RelaxationEngine;
use ohmflow::{MaxFlowSolver, SolveOptions};
use ohmflow::{SubstrateParams, SubstrateTemplate};
use ohmflow_bench::median_ns;
use ohmflow_circuit::DcSolver;
use ohmflow_graph::generators;

fn main() {
    let g = generators::fig15a(100);
    let mut params = SubstrateParams::with_gbw(10e9);
    params.v_flow = 50.0 * params.v_dd;
    let mut bo = BuildOptions::evaluation(&params);
    bo.capacity_mapping = CapacityMapping::Exact;
    bo.negative_resistor = NegativeResistorImpl::Ideal;
    bo.parasitics = false;
    bo.drive = Drive::Step;
    let sc = build(&g, &params, &bo).expect("build");
    let ckt = sc.circuit();
    println!(
        "fig15a(100): {} nodes, {} elements, {} diodes, {} unknowns-ish",
        ckt.node_count(),
        ckt.element_count(),
        ckt.diode_count(),
        ckt.node_count() - 1
    );

    // Cold-path phase breakdown. The cold session runs
    // structure + stamp + ordering + symbolic + numeric; the template
    // session reruns only stamp + numeric (shared symbolic plan), so the
    // difference is the amortizable ordering/symbolic share.
    let t_build = median_ns(9, || build(&g, &params, &bo).expect("build"));
    let dcs = DcSolver::new();
    let dc_plan = dcs.plan(ckt).expect("dc plan");
    let t_cold = median_ns(9, || dcs.session(ckt).expect("session"));
    let t_numeric = median_ns(9, || dc_plan.session(ckt).expect("session"));
    let t_tpl = median_ns(5, || {
        SubstrateTemplate::new(&g, &params, &bo).expect("template")
    });
    let sub_tpl = SubstrateTemplate::new(&g, &params, &bo).expect("template");
    let t_inst = median_ns(9, || sub_tpl.instantiate(&g).expect("instantiate"));
    println!("--- cold-path phases ---");
    println!("substrate build                 : {t_build:>10.0} ns");
    println!("session cold (sym+numeric)      : {t_cold:>10.0} ns");
    println!("session from template (numeric) : {t_numeric:>10.0} ns");
    println!(
        "  => ordering+symbolic share      : {:>10.0} ns",
        (t_cold - t_numeric).max(0.0)
    );
    println!("substrate template create       : {t_tpl:>10.0} ns");
    println!("template instantiate (values)   : {t_inst:>10.0} ns");

    // Raw session throughput: quiescent steps (skip path) and flip steps.
    let n_diodes = ckt.diode_count();
    let mut session = DcSolver::new()
        .phase_timing(true)
        .session(ckt)
        .expect("session");
    let off = vec![false; n_diodes];
    let steps = 20_000;
    let t0 = Instant::now();
    for k in 0..steps {
        session.solve(k as f64 * 1e-9, &off).expect("solve");
    }
    let quiescent_ns = t0.elapsed().as_nanos() as f64 / steps as f64;

    let phases_quiescent = session.phase_times();
    let mut on = vec![false; n_diodes];
    let t0 = Instant::now();
    for k in 0..steps {
        on[k % n_diodes] = !on[k % n_diodes];
        session.solve(k as f64 * 1e-9, &on).expect("solve");
    }
    let flip_ns = t0.elapsed().as_nanos() as f64 / steps as f64;
    println!("session quiescent step : {quiescent_ns:>8.0} ns");
    println!("session flip step      : {flip_ns:>8.0} ns");
    println!("session stats          : {:?}", session.stats());

    // Per-phase attribution of the flip loop (quiescent share subtracted),
    // so a transient regression names its culprit: stamping, the numeric
    // refactorization, the triangular solves or the Woodbury bookkeeping.
    let all = session.phase_times();
    let flips = [
        ("stamp", all.stamp_ns - phases_quiescent.stamp_ns),
        ("refactor", all.refactor_ns - phases_quiescent.refactor_ns),
        ("triangular-solve", all.solve_ns - phases_quiescent.solve_ns),
        (
            "woodbury-apply",
            all.woodbury_ns - phases_quiescent.woodbury_ns,
        ),
    ];
    let accounted: u64 = flips.iter().map(|(_, ns)| ns).sum();
    println!("--- flip-loop phase breakdown ({steps} steps) ---");
    for (label, ns) in flips {
        println!(
            "{label:<17}: {:>9.1} ns/step ({:>4.1}%)",
            ns as f64 / steps as f64,
            100.0 * ns as f64 / accounted.max(1) as f64
        );
    }
    println!(
        "accounted          : {:>9.1} of {flip_ns:.1} ns/step",
        accounted as f64 / steps as f64
    );

    // Factorization structure under the production (AMD+BTF) ordering: the
    // fill the flip loop replays every rebase, and the block decomposition
    // that bounds it (the largest block is the irreducible core).
    let sym = dc_plan.template().symbolic();
    println!(
        "factor structure   : nnz(L+U) {}  blocks {}  largest block {} of {}",
        sym.pattern_nnz(),
        sym.block_count(),
        sym.largest_block(),
        sym.dim(),
    );

    // End-to-end engine comparison.
    for (label, engine) in [
        ("incremental", RelaxationEngine::Incremental),
        ("full_refactor", RelaxationEngine::FullRefactor),
    ] {
        let mut cfg = SolveOptions::evaluation(10e9);
        cfg.build.capacity_mapping = CapacityMapping::Exact;
        cfg.engine = engine;
        let solver = MaxFlowSolver::new(cfg);
        let reps = 50;
        let t0 = Instant::now();
        let mut value = 0.0;
        for _ in 0..reps {
            value = solver.solve_fresh(&g).expect("solve").value;
        }
        let per = t0.elapsed().as_micros() as f64 / reps as f64;
        println!("{label:<14} : {per:>8.1} µs/solve  (value {value:.3})");
    }
}
