//! Regenerates Fig. 8: voltage-level quantization on the Fig. 5a example
//! with N = 20 and Vdd = 1 V. The paper reports quantized levels 1 V /
//! 0.65 V / 0.35 V, circuit solution 0.7 V, |f| = 2.1 (5 % deviation).

use ohmflow::builder::CapacityMapping;
use ohmflow::quantize::Quantizer;
use ohmflow::{MaxFlowSolver, SolveOptions};
use ohmflow_graph::generators::fig5a;
use ohmflow_maxflow::edmonds_karp;

fn main() {
    let g = fig5a();
    let q = Quantizer::new(20, 1.0, g.max_capacity() as f64);
    println!("Fig. 8: quantization example (N = 20, Vdd = 1 V)");
    println!("edge  capacity  quantized level (V)   [paper]");
    let paper = [1.0, 0.65, 0.35, 0.35, 0.65];
    for (k, e) in g.edges().iter().enumerate() {
        println!(
            "  x{}        {}              {:.2}      [{}]",
            k + 1,
            e.capacity,
            q.quantize(e.capacity as f64),
            paper[k]
        );
    }

    let exact = edmonds_karp(&g).value;
    let mut cfg = SolveOptions::ideal();
    cfg.build.capacity_mapping = CapacityMapping::Quantized { levels: 20 };
    let sol = MaxFlowSolver::new(cfg).solve(&g).expect("quantized solve");
    let volts = sol.value / g.max_capacity() as f64;
    println!("exact solution        : |f| = {exact}        [paper: 2]");
    println!("circuit solution      : {volts:.3} V    [paper: 0.7 V]");
    println!(
        "approximate solution  : |f| = {:.2}   [paper: 2.1]",
        sol.value
    );
    println!(
        "deviation             : {:.1} %      [paper: 5 %]",
        (sol.value - exact as f64).abs() / exact as f64 * 100.0
    );
}
