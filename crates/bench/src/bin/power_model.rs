//! Regenerates the §5.2 power/energy analysis: edges supported per power
//! budget and the energy-efficiency comparison against the CPU baseline.

use ohmflow::power::{EnergyComparison, PowerModel};
use ohmflow_bench::{fig10_instance, time_push_relabel};

fn main() {
    let m = PowerModel::paper();
    println!("§5.2 analytical power model (P_amp = {} µW)", m.p_amp * 1e6);
    println!("power budget (W)   max active edges   [paper]");
    println!("       5.0          {:>10}        [~1e4]", m.max_edges(5.0));
    println!(
        "     150.0          {:>10}        [3e5]",
        m.max_edges(150.0)
    );

    println!("\nenergy per solve (substrate @ measured conv time vs CPU @ 100 W):");
    println!("vertices,edges,substrate_mW,substrate_nJ,cpu_mJ,efficiency_factor");
    for n in [256usize, 512] {
        let g = fig10_instance(n, false, n as u64);
        let (cpu_s, _) = time_push_relabel(&g, 3);
        // Representative convergence time from the Fig. 10 experiment scale.
        let conv_s = 2e-6;
        let cmp = EnergyComparison::new(&m, &g, conv_s, cpu_s, 100.0);
        println!(
            "{},{},{:.2},{:.2},{:.4},{:.0}",
            n,
            g.edge_count(),
            m.power_for(&g) * 1e3,
            cmp.substrate_joules * 1e9,
            cmp.cpu_joules * 1e3,
            cmp.efficiency_factor
        );
    }
}
