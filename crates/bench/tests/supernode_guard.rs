//! Supernodal-kernel regression guard: the blocked numeric replay on the
//! rmat1024 substrate fixture must never run slower than the scalar
//! per-column replay it accelerates, and the rmat2048 fixture must keep
//! detecting a non-trivial supernode structure.
//!
//! This is the cheap CI tripwire for the PR 7 blocked kernels: a change
//! that silently breaks supernode detection (the plan degenerates to
//! singletons and the dispatch falls back to scalar) or regresses the
//! panel kernels (the blocked path stops paying for its bookkeeping)
//! shows up here long before anyone reads `BENCH_PR7.json`. The bound is
//! deliberately generous — parity plus 15% jitter margin, not the
//! measured ~2× win — so timer noise on loaded CI machines cannot flake
//! it, while a real regression (blocked slower than scalar) still trips.
//! The timing half only runs under `--release`: the register-blocked
//! kernels need the optimizer (lane loops stay scalar calls in debug
//! builds, where blocked loses by design); the structure tripwire below
//! runs in every profile.

use std::sync::Mutex;

use ohmflow_bench::{bench_substrate, dimacs_grid_instance, fig10_instance, median_ns};
use ohmflow_circuit::DcSolver;
use ohmflow_linalg::{LuWorkspace, RefactorStrategy, SparseLu, SparseLuOptions};

/// The harness runs both tests as concurrent threads; on a small machine
/// the structure test's factorizations would pollute the timing loop, so
/// the tests serialize through this lock.
static SERIAL: Mutex<()> = Mutex::new(());

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "timing guard: the blocked kernels only beat the scalar replay \
              in optimized builds — run with --release"
)]
fn supernodal_refactor_never_loses_to_scalar_on_rmat1024() {
    let _guard = SERIAL.lock().unwrap();
    let g = fig10_instance(1024, false, 1);
    let sc = bench_substrate(&g);
    // Default options are the production supernodal path.
    let (m, lu) = DcSolver::new().stamp(sc.circuit()).expect("dc system");
    let stats = lu
        .symbolic()
        .supernode_stats()
        .expect("default options detect supernodes");
    assert!(
        stats.multi >= 1,
        "rmat1024 lost its multi-column supernodes: {stats:?}"
    );

    let mut ws = LuWorkspace::new();
    let mut lu_sn = lu.clone();
    let t_sn = median_ns(7, || {
        lu_sn
            .refactor_with_strategy(&m, &mut ws, RefactorStrategy::Serial)
            .expect("supernodal refactor")
    });
    let scalar_opts = SparseLuOptions {
        supernodal: false,
        ..SparseLuOptions::default()
    };
    let mut lu_scalar = SparseLu::factor_with(&m, &scalar_opts).expect("scalar factor");
    let t_scalar = median_ns(7, || {
        lu_scalar
            .refactor_with_strategy(&m, &mut ws, RefactorStrategy::Serial)
            .expect("scalar refactor")
    });
    assert!(
        t_sn <= 1.15 * t_scalar,
        "supernodal replay ({t_sn:.0} ns) slower than the scalar replay ({t_scalar:.0} ns) \
         it is supposed to accelerate"
    );
}

/// Structure tripwire, no timers: the substrates whose dense elimination
/// tails motivated the blocked kernels must keep producing multi-column
/// supernodes under the default detection (recorded: 23 on rmat2048, 89
/// on the 40×40 DIMACS grid). A detector change that stops amalgamating
/// turns the entire supernodal subsystem into dead code without failing
/// any correctness test — this is the test that fails.
#[test]
fn substrates_keep_their_multi_column_supernodes() {
    let _guard = SERIAL.lock().unwrap();
    for (name, g, floor) in [
        ("rmat2048", fig10_instance(2048, false, 1), 2),
        ("dimacs_grid40", dimacs_grid_instance(40, 64, 7), 2),
    ] {
        let sc = bench_substrate(&g);
        let (_, lu) = DcSolver::new().stamp(sc.circuit()).expect("dc system");
        let stats = lu
            .symbolic()
            .supernode_stats()
            .expect("default options detect supernodes");
        assert!(
            stats.multi > floor,
            "{name}: expected more than {floor} multi-column supernodes, got {stats:?}"
        );
        assert!(
            stats.max_width >= 2,
            "{name}: no supernode wider than one column: {stats:?}"
        );
    }
}
