//! Ordering-quality regression guard: AMD fill on the rmat1024 substrate
//! fixture must stay below a recorded ceiling, and must never fall behind
//! the plain min-degree oracle it replaced.
//!
//! This is the cheap CI tripwire for the PR4 ordering subsystem: a change
//! that silently degrades the quotient-graph degree approximation, the
//! supervariable merging or the BTF block decomposition shows up here as a
//! fill jump long before anyone reads `BENCH_PR4.json`.

use ohmflow_bench::{bench_substrate, fig10_instance};
use ohmflow_circuit::DcSolver;
use ohmflow_linalg::{ColumnOrdering, SparseLu, SparseLuOptions};

/// Recorded AMD fill on this fixture: 267,318 (plain AMD) / 259,774
/// (AMD+BTF); min-degree produces 272,920 and natural order 10,549,475.
/// The ceiling leaves ~20 % headroom over the recorded AMD value — enough
/// for tie-break drift, far below a real quality regression.
const AMD_FILL_CEILING: usize = 320_000;

#[test]
fn amd_fill_on_rmat1024_stays_below_recorded_ceiling() {
    let g = fig10_instance(1024, false, 1);
    let sc = bench_substrate(&g);
    // Default options are the production AMD+BTF path.
    let (m, lu_btf) = DcSolver::new().stamp(sc.circuit()).expect("dc system");
    let factor = |ordering| {
        let opts = SparseLuOptions {
            ordering,
            ..Default::default()
        };
        SparseLu::factor_with(&m, &opts).expect("factor")
    };
    let amd = factor(ColumnOrdering::Amd);
    let min_degree = factor(ColumnOrdering::MinDegree);

    // The old min-degree is the fill oracle: AMD (and the block-composed
    // AMD) must not lose to it on the expander fixture it was built for.
    assert!(
        amd.factor_nnz() <= min_degree.factor_nnz(),
        "AMD fill {} exceeds min-degree fill {}",
        amd.factor_nnz(),
        min_degree.factor_nnz()
    );
    assert!(
        lu_btf.factor_nnz() <= min_degree.factor_nnz(),
        "AMD+BTF fill {} exceeds min-degree fill {}",
        lu_btf.factor_nnz(),
        min_degree.factor_nnz()
    );

    assert!(
        amd.factor_nnz() < AMD_FILL_CEILING,
        "AMD fill {} blew the recorded ceiling {AMD_FILL_CEILING}",
        amd.factor_nnz()
    );
    assert!(
        lu_btf.factor_nnz() < AMD_FILL_CEILING,
        "AMD+BTF fill {} blew the recorded ceiling {AMD_FILL_CEILING}",
        lu_btf.factor_nnz()
    );

    // The R-MAT substrate decomposes: the BTF stage must actually find
    // blocks (203 recorded), not degenerate to one.
    assert!(
        lu_btf.symbolic().block_count() > 1,
        "BTF found no decomposition: {} block(s)",
        lu_btf.symbolic().block_count()
    );
    assert!(lu_btf.symbolic().largest_block() < lu_btf.symbolic().dim());
}
