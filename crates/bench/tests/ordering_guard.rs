//! Ordering-quality regression guard: AMD fill on the rmat1024 substrate
//! fixture must stay below a recorded ceiling, and must never fall behind
//! the plain min-degree oracle it replaced.
//!
//! This is the cheap CI tripwire for the PR4 ordering subsystem: a change
//! that silently degrades the quotient-graph degree approximation, the
//! supervariable merging or the BTF block decomposition shows up here as a
//! fill jump long before anyone reads `BENCH_PR4.json`.
//!
//! PR 6 adds two more tripwires: a nested-dissection ceiling on the
//! rmat2048 irreducible core (the top-level bisection must produce no
//! subtree anywhere near the full problem, and the hybrid `AmdBtfNd`
//! default must not cost fill over plain `AmdBtf`), and an rmat128
//! numeric-replay check that the KLU-style solve-time `A_off` layout
//! really removed the ~15–20 % off-diagonal-U closure tax multi-block
//! refactorization used to pay relative to a single-block AMD factor.

use ohmflow_bench::{bench_substrate, fig10_instance, median_ns};
use ohmflow_circuit::DcSolver;
use ohmflow_linalg::{
    nested_dissection_split, ColumnOrdering, LuWorkspace, RefactorStrategy, SparseLu,
    SparseLuOptions,
};

/// Recorded AMD fill on this fixture: 267,318 (plain AMD) / 212,458
/// (AMD+BTF, off-diagonal block entries held raw since PR 6 instead of
/// factored into U); min-degree produces 272,920 and natural order
/// 10,549,475. The ceiling leaves ~20 % headroom over the recorded AMD
/// value — enough for tie-break drift, far below a real quality
/// regression.
const AMD_FILL_CEILING: usize = 320_000;

#[test]
fn amd_fill_on_rmat1024_stays_below_recorded_ceiling() {
    let g = fig10_instance(1024, false, 1);
    let sc = bench_substrate(&g);
    // Default options are the production AMD+BTF path.
    let (m, lu_btf) = DcSolver::new().stamp(sc.circuit()).expect("dc system");
    let factor = |ordering| {
        let opts = SparseLuOptions {
            ordering,
            ..Default::default()
        };
        SparseLu::factor_with(&m, &opts).expect("factor")
    };
    let amd = factor(ColumnOrdering::Amd);
    let min_degree = factor(ColumnOrdering::MinDegree);

    // The old min-degree is the fill oracle: AMD (and the block-composed
    // AMD) must not lose to it on the expander fixture it was built for.
    assert!(
        amd.factor_nnz() <= min_degree.factor_nnz(),
        "AMD fill {} exceeds min-degree fill {}",
        amd.factor_nnz(),
        min_degree.factor_nnz()
    );
    assert!(
        lu_btf.factor_nnz() <= min_degree.factor_nnz(),
        "AMD+BTF fill {} exceeds min-degree fill {}",
        lu_btf.factor_nnz(),
        min_degree.factor_nnz()
    );

    assert!(
        amd.factor_nnz() < AMD_FILL_CEILING,
        "AMD fill {} blew the recorded ceiling {AMD_FILL_CEILING}",
        amd.factor_nnz()
    );
    assert!(
        lu_btf.factor_nnz() < AMD_FILL_CEILING,
        "AMD+BTF fill {} blew the recorded ceiling {AMD_FILL_CEILING}",
        lu_btf.factor_nnz()
    );

    // The R-MAT substrate decomposes: the BTF stage must actually find
    // blocks (203 recorded), not degenerate to one.
    assert!(
        lu_btf.symbolic().block_count() > 1,
        "BTF found no decomposition: {} block(s)",
        lu_btf.symbolic().block_count()
    );
    assert!(lu_btf.symbolic().largest_block() < lu_btf.symbolic().dim());
}

/// PR 6 nested-dissection ceilings on the rmat2048 irreducible core.
///
/// The raw top-level bisection (no quality gate — `nested_dissection_split`
/// reports exactly what the recursion would commit to) must break the
/// problem: region growing to `n/2` plus the `n/5` balance floor bound the
/// largest side structurally, so no subtree of the top-level separator
/// tree may approach the full 26.4k-unknown problem. And the hybrid
/// `AmdBtfNd` default must do no harm: its fill stays within 5 % of the
/// plain `AmdBtf` fill it falls back to when the separator gate trips
/// (recorded: identical, the R-MAT core has no `4√n` cuts).
#[test]
fn nd_ceilings_hold_on_rmat2048() {
    let g = fig10_instance(2048, false, 1);
    let sc = bench_substrate(&g);
    let (m, lu_hybrid) = DcSolver::new().stamp(sc.circuit()).expect("dc system");

    let split = nested_dissection_split(&m);
    let n = m.cols();
    assert_eq!(
        split.part_a.len() + split.part_b.len() + split.separator.len(),
        n,
        "top-level split must partition all {n} unknowns"
    );
    let largest = split
        .part_a
        .len()
        .max(split.part_b.len())
        .max(split.separator.len());
    assert!(
        largest < 26_400,
        "largest top-level ND subtree {largest} of {n} unknowns is not a real split"
    );

    // Default stamp is AmdBtfNd since PR 6; factor the AmdBtf baseline
    // explicitly for the do-no-harm fill comparison.
    let opts = SparseLuOptions {
        ordering: ColumnOrdering::AmdBtf,
        ..Default::default()
    };
    let lu_btf = SparseLu::factor_with(&m, &opts).expect("amd+btf factor");
    assert!(
        lu_hybrid.factor_nnz() * 100 <= lu_btf.factor_nnz() * 105,
        "AmdBtfNd fill {} exceeds 1.05x AmdBtf fill {}",
        lu_hybrid.factor_nnz(),
        lu_btf.factor_nnz()
    );
}

/// PR 6 numeric-replay check: multi-block refactorization must no longer
/// pay the off-diagonal-U closure tax.
///
/// Before PR 6, factoring a column of a later BTF block dragged the
/// `L⁻¹·A_off` closure of every cross-block entry into U, so numeric
/// replay on the multi-block default ran ~15–20 % slower than a
/// single-block AMD factor of the same matrix. With off-diagonal entries
/// stored raw and applied at solve time, the multi-block replay does
/// strictly fewer floating-point operations than the single-block one
/// (same within-block work, no closure, smaller fill); it must therefore
/// land within noise of — not persistently above — the AMD replay. The
/// 1.15 band is pure timing-noise headroom: reintroducing the closure
/// puts the ratio back above it.
#[test]
fn multiblock_replay_on_rmat128_has_no_closure_tax() {
    let g = fig10_instance(128, false, 1);
    let sc = bench_substrate(&g);
    let (m, lu_hybrid) = DcSolver::new().stamp(sc.circuit()).expect("dc system");
    assert!(
        lu_hybrid.symbolic().block_count() > 1,
        "fixture must decompose for the replay comparison to mean anything"
    );
    assert!(
        lu_hybrid.symbolic().off_nnz() > 0,
        "fixture must have cross-block entries"
    );

    let opts = SparseLuOptions {
        ordering: ColumnOrdering::Amd,
        ..Default::default()
    };
    let lu_amd = SparseLu::factor_with(&m, &opts).expect("amd factor");
    assert_eq!(lu_amd.symbolic().block_count(), 1);

    // Both replays agree with each other on a real RHS before any timing:
    // the raw-off path must be a performance change, not a numerics one.
    let nrhs = m.cols();
    let b: Vec<f64> = (0..nrhs).map(|i| (i % 13) as f64 - 6.0).collect();
    let (mut work, mut x_blk, mut x_amd) = (Vec::new(), Vec::new(), Vec::new());
    lu_hybrid
        .solve_into(&b, &mut work, &mut x_blk)
        .expect("multi-block solve");
    lu_amd
        .solve_into(&b, &mut work, &mut x_amd)
        .expect("single-block solve");
    for (i, (a, c)) in x_blk.iter().zip(&x_amd).enumerate() {
        assert!(
            (a - c).abs() <= 1e-9 * (1.0 + a.abs().max(c.abs())),
            "solution mismatch at {i}: {a} vs {c}"
        );
    }

    let mut ws = LuWorkspace::new();
    let mut lu_hybrid = lu_hybrid;
    let mut lu_amd = lu_amd;
    let mut replay = |lu: &mut SparseLu| {
        median_ns(15, || {
            lu.refactor_with_strategy(&m, &mut ws, RefactorStrategy::Serial)
                .expect("refactor")
        })
    };
    replay(&mut lu_hybrid); // warm caches + workspace before either timing
    replay(&mut lu_amd);
    let t_blk = replay(&mut lu_hybrid);
    let t_amd = replay(&mut lu_amd);
    assert!(
        t_blk <= t_amd * 1.15,
        "multi-block replay {t_blk:.0} ns vs single-block AMD {t_amd:.0} ns: \
         the off-diagonal closure tax is back"
    );
}
