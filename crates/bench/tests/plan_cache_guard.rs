//! Plan-cache regression guard: the fingerprint-first hit path on the
//! rmat1024 substrate fixture must stay decisively cheaper than the
//! full-rehash lookup it replaced, and hammering one shared cache from
//! eight threads must not collapse its aggregate throughput.
//!
//! This is the cheap CI tripwire for the PR 8 concurrent sharded plan
//! cache: a change that quietly reintroduces per-lookup key
//! reconstruction (or per-edge `Hash` dispatch) on the hit path, or that
//! funnels every shard through one lock, shows up here long before
//! anyone reads `BENCH_PR8.json`. The bounds are deliberately generous —
//! the measured hit is ~5× under the rehash baseline and the striped
//! shards hold aggregate throughput flat, so a 2× floor and a 1.5×
//! contention ceiling leave room for timer noise on loaded CI machines
//! while a real regression still trips. Timing only runs under
//! `--release` (the mixer loop stays unoptimized scalar code in debug
//! builds); the multi-core CI bench runner is the runner of record for
//! the contention half.

use std::hash::{Hash, Hasher};
use std::sync::Mutex;

use ohmflow::solver::facade::{MaxFlowSolver, SolveOptions};
use ohmflow_bench::{fig10_instance, median_ns};

/// The harness runs both tests as concurrent threads; the contention
/// test's eight workers would pollute the latency loop on a small
/// machine, so the tests serialize through this lock.
static SERIAL: Mutex<()> = Mutex::new(());

fn warm_solver(g: &ohmflow_graph::FlowNetwork) -> MaxFlowSolver {
    let mut cfg = SolveOptions::evaluation_quasi_static(10e9);
    cfg.params.v_flow = 800.0;
    let solver = MaxFlowSolver::new(cfg);
    solver.solve(g).expect("prime plan");
    solver
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "timing guard: the streaming-fingerprint hit path only beats the \
              rehash baseline in optimized builds — run with --release"
)]
fn fingerprint_hit_stays_cheaper_than_full_rehash_on_rmat1024() {
    let _guard = SERIAL.lock().unwrap();
    let g = fig10_instance(1024, false, 1);
    let solver = warm_solver(&g);

    // The pre-PR-8 lookup cost, reconstructed: every hit rebuilt the
    // lookup key by dispatching each edge through the `Hash` trait into
    // SipHash. The replacement must stay at least 2× under it.
    let rehash = median_ns(9, || {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        g.vertex_count().hash(&mut h);
        g.source().hash(&mut h);
        g.sink().hash(&mut h);
        for e in std::hint::black_box(&g).edges() {
            (e.from, e.to).hash(&mut h);
        }
        std::hint::black_box(h.finish())
    });
    let hit = median_ns(9, || {
        assert!(solver.plan(&g).expect("plan").cache_hit());
    });
    assert!(
        2.0 * hit <= rehash,
        "fingerprint-probed plan hit ({hit:.0} ns) is not >= 2x cheaper than the \
         full-rehash baseline ({rehash:.0} ns) it replaced"
    );
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "timing guard: shard-contention bounds only hold in optimized \
              builds — run with --release"
)]
fn eight_thread_hits_stay_within_contention_budget() {
    let _guard = SERIAL.lock().unwrap();
    let g = fig10_instance(1024, false, 1);
    let solver = warm_solver(&g);

    // Aggregate warm-hit cost (total ns across all lookups / lookups):
    // on the lock-striped shards this is workload, not contention, so
    // eight threads must land within 1.5x of the uncontended loop even
    // on a single hardware core (the lookups serialize either way; only
    // lock convoys or a single hot shard mutex could break the bound).
    const OPS: usize = 256;
    let agg_ns_per_op = |threads: usize| {
        median_ns(3, || {
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    let worker = solver.clone();
                    let g = &g;
                    scope.spawn(move || {
                        for _ in 0..OPS {
                            assert!(worker.plan(g).expect("plan").cache_hit());
                        }
                    });
                }
            });
        }) / (threads * OPS) as f64
    };
    let uncontended = agg_ns_per_op(1);
    let contended = agg_ns_per_op(8);
    assert!(
        contended <= 1.5 * uncontended,
        "8-thread aggregate hit cost ({contended:.0} ns/op) exceeds 1.5x the \
         uncontended cost ({uncontended:.0} ns/op) — shard striping regressed"
    );
}
