//! Delta-session regression guard: on the rmat2048 substrate fixture a
//! k=8 mixed delta batch (capacity restamps + exact removals + in-place
//! revivals) absorbed by a standing `DeltaSession` must stay at least
//! 10x under the cold plan+build+solve the same change would cost
//! without one, and the rank-k batched Woodbury push must beat k
//! sequential rank-1 pushes on a single-block factor.
//!
//! This is the cheap CI tripwire for the PR 9 graph-delta fast path: a
//! change that quietly reroutes delta batches through a rebuild (or
//! degrades the batched push back to per-term capacitance refreshes)
//! shows up here long before anyone reads `BENCH_PR9.json`. The 10x bar
//! is the acceptance number, deliberately far under the measured
//! amortization, so timer noise on loaded CI machines cannot trip it
//! while a real fast-path loss still does. Timing only runs under
//! `--release`; the correctness tripwire at the bottom runs everywhere.

use std::sync::Mutex;
use std::time::Instant;

use ohmflow::solver::facade::{MaxFlowSolver, SolveOptions};
use ohmflow::DeltaBatch;
use ohmflow_bench::{bench_substrate, diode_unknown_pairs, fig10_instance, median_ns};
use ohmflow_circuit::DcSolver;
use ohmflow_graph::FlowNetwork;
use ohmflow_linalg::{ColumnOrdering, LowRankUpdate, RankOneTermRef, SparseLu, SparseLuOptions};

/// The timing tests share one core on small CI machines; serialize them
/// so neither pollutes the other's clock.
static SERIAL: Mutex<()> = Mutex::new(());

/// The ideal build: plain-resistor conservation stars, so topology deltas
/// ride the value-only surgery + rank-k Woodbury fast path this guard
/// protects. Op-amp builds fall back to structural re-keys by design.
fn session_solver() -> MaxFlowSolver {
    MaxFlowSolver::new(SolveOptions::ideal())
}

/// A k=8 mixed batch over the interior-edge pool: two removals, the two
/// revivals undoing the previous round's removals, four capacity
/// restamps — the periodic walk the PR 9 bench records.
fn mixed_batch(g: &FlowNetwork, pool: &[(usize, i64)], round: usize) -> DeltaBatch {
    let l = pool.len();
    let (r0, r1) = (pool[(2 * round) % l], pool[(2 * round + 1) % l]);
    let (p0, p1) = (pool[(2 * round + l - 2) % l], pool[(2 * round + l - 1) % l]);
    let mut b = DeltaBatch::new()
        .remove_edge(r0.0)
        .remove_edge(r1.0)
        .insert_edge(g.edges()[p0.0].from, g.edges()[p0.0].to, p0.1)
        .insert_edge(g.edges()[p1.0].from, g.edges()[p1.0].to, p1.1);
    for i in 0..4 {
        let (k, cap) = pool[(4 * round + i + 7) % l];
        b = b.set_capacity(k, 1 + (cap + round as i64) % 99);
    }
    b
}

/// Non-circulation edges (the removable pool) with their capacities.
fn interior_edges(g: &FlowNetwork) -> Vec<(usize, i64)> {
    g.edges()
        .iter()
        .enumerate()
        .filter(|(_, e)| e.to != g.source() && e.from != g.sink())
        .map(|(k, e)| (k, e.capacity))
        .collect()
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "timing guard: the 10x delta-vs-cold amortization bar only holds in \
              optimized builds — run with --release"
)]
fn mixed_delta_batch_amortizes_10x_over_cold_solve_on_rmat2048() {
    let _guard = SERIAL.lock().unwrap();
    let g = fig10_instance(2048, false, 1);
    let solver = session_solver();

    // Cold baseline, single shot: without a session every batch pays a
    // full plan+build+solve of the mutated graph (a single sample keeps
    // the guard cheap; the 10x margin absorbs the noise).
    let t0 = Instant::now();
    solver.solve_fresh(&g).expect("cold solve");
    let cold_ns = t0.elapsed().as_nanos() as f64;

    let mut session = solver.delta_session(&g).expect("delta session");
    session.apply_deltas(&DeltaBatch::new()).expect("opening");
    let pool = interior_edges(&g);
    session
        .apply_deltas(
            &DeltaBatch::new()
                .remove_edge(pool[pool.len() - 2].0)
                .remove_edge(pool[pool.len() - 1].0),
        )
        .expect("prime removals");

    let rounds = 4;
    let t0 = Instant::now();
    for r in 0..rounds {
        let report = session
            .apply_deltas(&mixed_batch(&g, &pool, r))
            .expect("mixed batch");
        assert!(!report.replanned, "periodic mixed walk must not re-key");
    }
    let delta_ns = t0.elapsed().as_nanos() as f64 / rounds as f64;

    assert!(
        10.0 * delta_ns <= cold_ns,
        "k=8 mixed delta batch ({delta_ns:.0} ns) is not >= 10x cheaper than the \
         cold plan+build+solve ({cold_ns:.0} ns) it replaces"
    );
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "timing guard: the batched-push advantage only shows in optimized \
              builds — run with --release"
)]
fn batched_rank8_push_beats_sequential_rank1_pushes() {
    let _guard = SERIAL.lock().unwrap();
    let g = fig10_instance(1024, false, 1);
    let sc = bench_substrate(&g);
    let (m, _) = DcSolver::new().stamp(sc.circuit()).expect("dc system");
    // A single-block AMD factor so the multi-lane batch path engages
    // (the multi-block production factor falls back to per-column reach
    // solves, where batch and sequential are on par by design).
    let opts = SparseLuOptions {
        ordering: ColumnOrdering::Amd,
        ..Default::default()
    };
    let lu = SparseLu::factor_with(&m, &opts).expect("amd factor");
    assert_eq!(
        lu.symbolic().block_count(),
        1,
        "guard needs the single-block multi-lane path"
    );

    let pairs = diode_unknown_pairs(&sc);
    let k = 8;
    #[allow(clippy::type_complexity)]
    let terms: Vec<(Vec<(usize, f64)>, Vec<(usize, f64)>)> = pairs
        .iter()
        .step_by((pairs.len() / k).max(1))
        .take(k)
        .map(|&(a, c)| (vec![(a, 1e-4), (c, -1e-4)], vec![(a, 1.0), (c, -1.0)]))
        .collect();
    let term_refs: Vec<RankOneTermRef<'_>> = terms
        .iter()
        .map(|(u, v)| (u.as_slice(), v.as_slice()))
        .collect();

    let n = m.cols();
    let seq = median_ns(5, || {
        let mut up = LowRankUpdate::new(n);
        for (u, v) in &term_refs {
            up.push(&lu, u, v).expect("rank-1 push");
        }
    });
    let bat = median_ns(5, || {
        let mut up = LowRankUpdate::new(n);
        up.push_batch(&lu, &term_refs).expect("rank-8 batch push");
    });
    assert!(
        bat <= 0.9 * seq,
        "rank-8 batched push ({bat:.0} ns) is not measurably faster than 8 \
         sequential rank-1 pushes ({seq:.0} ns)"
    );
}

/// Correctness tripwire (runs in debug too): a mixed batch through the
/// public delta-session API must track a cold fresh solve of the live
/// graph at 1e-9 — the cheap end of the agreement suite, here so a perf
/// refactor cannot trade exactness away without failing the guard file
/// it is editing.
#[test]
fn mixed_delta_batch_stays_exact_on_grid() {
    let g = {
        let text = ohmflow_graph::dimacs::write(
            &ohmflow_graph::generators::grid(6, 6, 50, 7).expect("grid"),
        );
        ohmflow_graph::dimacs::parse(&text).expect("roundtrip")
    };
    let solver = MaxFlowSolver::new(SolveOptions::ideal());
    let mut session = solver.delta_session(&g).expect("delta session");
    session.apply_deltas(&DeltaBatch::new()).expect("opening");
    let pool = interior_edges(&g);
    session
        .apply_deltas(
            &DeltaBatch::new()
                .remove_edge(pool[pool.len() - 2].0)
                .remove_edge(pool[pool.len() - 1].0),
        )
        .expect("prime removals");
    for r in 0..3 {
        session
            .apply_deltas(&mixed_batch(&g, &pool, r))
            .expect("mixed batch");
        let live = session.live_graph().expect("live graph");
        let fresh = solver.solve_fresh(&live).expect("fresh solve");
        let v = session.flow_value();
        assert!(
            (v - fresh.value).abs() < 1e-9 * fresh.value.abs().max(1.0),
            "round {r}: session {v} vs fresh {}",
            fresh.value
        );
    }
}
