use std::error::Error;
use std::fmt;

/// Errors produced by graph construction and I/O.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A vertex index is out of range.
    VertexOutOfRange {
        /// Offending vertex.
        vertex: usize,
        /// Number of vertices in the graph.
        n: usize,
    },
    /// An edge capacity is not a positive integer.
    InvalidCapacity {
        /// Offending capacity.
        capacity: i64,
    },
    /// Self-loops are not meaningful in a flow network.
    SelfLoop {
        /// The vertex looping onto itself.
        vertex: usize,
    },
    /// The graph must have at least two vertices and distinct source/sink.
    InvalidEndpoints {
        /// Source vertex.
        source: usize,
        /// Sink vertex.
        sink: usize,
    },
    /// A DIMACS file could not be parsed.
    ParseDimacs {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// A binary graph payload (`binfmt`) could not be parsed.
    ParseBinary {
        /// Byte offset of the failure.
        offset: usize,
        /// Explanation.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(
                    f,
                    "vertex {vertex} out of range for graph with {n} vertices"
                )
            }
            GraphError::InvalidCapacity { capacity } => {
                write!(
                    f,
                    "edge capacity must be a positive integer, got {capacity}"
                )
            }
            GraphError::SelfLoop { vertex } => write!(f, "self-loop at vertex {vertex}"),
            GraphError::InvalidEndpoints { source, sink } => {
                write!(f, "invalid source/sink pair ({source}, {sink})")
            }
            GraphError::ParseDimacs { line, message } => {
                write!(f, "DIMACS parse error at line {line}: {message}")
            }
            GraphError::ParseBinary { offset, message } => {
                write!(f, "binary graph parse error at byte {offset}: {message}")
            }
        }
    }
}

impl Error for GraphError {}
