use std::fmt;

use crate::GraphError;

/// Identifier of an edge within a [`FlowNetwork`], assigned in insertion
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub usize);

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A directed capacitated edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Tail vertex (`from → to`).
    pub from: usize,
    /// Head vertex.
    pub to: usize,
    /// Positive integral capacity, per the paper's problem statement.
    pub capacity: i64,
}

/// A directed graph with distinguished source and sink and positive
/// integral edge capacities — the max-flow instance of §2.
///
/// Vertices are `0..n`. Parallel edges are allowed (they are distinct
/// circuit widgets on the substrate); self-loops are rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowNetwork {
    n: usize,
    source: usize,
    sink: usize,
    edges: Vec<Edge>,
    out_adj: Vec<Vec<usize>>, // vertex -> edge indices
    in_adj: Vec<Vec<usize>>,
}

impl FlowNetwork {
    /// Creates an empty network with `n` vertices.
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidEndpoints`] if `source == sink` or either is out
    /// of range, or `n < 2`.
    pub fn new(n: usize, source: usize, sink: usize) -> Result<Self, GraphError> {
        if n < 2 || source == sink || source >= n || sink >= n {
            return Err(GraphError::InvalidEndpoints { source, sink });
        }
        Ok(FlowNetwork {
            n,
            source,
            sink,
            edges: Vec::new(),
            out_adj: vec![Vec::new(); n],
            in_adj: vec![Vec::new(); n],
        })
    }

    /// Adds a directed edge `from → to` with the given capacity and returns
    /// its id.
    ///
    /// # Errors
    ///
    /// [`GraphError::VertexOutOfRange`], [`GraphError::SelfLoop`] or
    /// [`GraphError::InvalidCapacity`] (capacities must be positive
    /// integers, per the paper's problem statement).
    pub fn add_edge(
        &mut self,
        from: usize,
        to: usize,
        capacity: i64,
    ) -> Result<EdgeId, GraphError> {
        if from >= self.n {
            return Err(GraphError::VertexOutOfRange {
                vertex: from,
                n: self.n,
            });
        }
        if to >= self.n {
            return Err(GraphError::VertexOutOfRange {
                vertex: to,
                n: self.n,
            });
        }
        if from == to {
            return Err(GraphError::SelfLoop { vertex: from });
        }
        if capacity <= 0 {
            return Err(GraphError::InvalidCapacity { capacity });
        }
        let id = EdgeId(self.edges.len());
        self.edges.push(Edge { from, to, capacity });
        self.out_adj[from].push(id.0);
        self.in_adj[to].push(id.0);
        Ok(id)
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The source vertex `s`.
    pub fn source(&self) -> usize {
        self.source
    }

    /// The sink vertex `t`.
    pub fn sink(&self) -> usize {
        self.sink
    }

    /// Edge data by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn edge(&self, id: EdgeId) -> Edge {
        self.edges[id.0]
    }

    /// All edges, id order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Ids of edges leaving `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn out_edges(&self, v: usize) -> impl Iterator<Item = EdgeId> + '_ {
        self.out_adj[v].iter().copied().map(EdgeId)
    }

    /// Ids of edges entering `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn in_edges(&self, v: usize) -> impl Iterator<Item = EdgeId> + '_ {
        self.in_adj[v].iter().copied().map(EdgeId)
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: usize) -> usize {
        self.out_adj[v].len()
    }

    /// In-degree of `v`.
    pub fn in_degree(&self, v: usize) -> usize {
        self.in_adj[v].len()
    }

    /// Largest edge capacity `C` (0 for an edge-less network) — the
    /// quantization reference of §4.1.
    pub fn max_capacity(&self) -> i64 {
        self.edges.iter().map(|e| e.capacity).max().unwrap_or(0)
    }

    /// Sum of capacities of edges leaving the source — a trivial upper
    /// bound on the max-flow value.
    pub fn source_capacity(&self) -> i64 {
        self.out_adj[self.source]
            .iter()
            .map(|&e| self.edges[e].capacity)
            .sum()
    }

    /// `true` if the sink is reachable from the source along directed edges.
    pub fn sink_reachable(&self) -> bool {
        let mut seen = vec![false; self.n];
        let mut stack = vec![self.source];
        seen[self.source] = true;
        while let Some(v) = stack.pop() {
            if v == self.sink {
                return true;
            }
            for &e in &self.out_adj[v] {
                let to = self.edges[e].to;
                if !seen[to] {
                    seen[to] = true;
                    stack.push(to);
                }
            }
        }
        false
    }

    /// Checks whether `flows` (edge-id indexed) is a feasible `s–t` flow:
    /// capacity constraints on every edge and conservation at every interior
    /// vertex, within tolerance `tol` (useful for the analog solver whose
    /// flows are real-valued). Returns the flow value if feasible.
    pub fn validate_flow(&self, flows: &[f64], tol: f64) -> Option<f64> {
        if flows.len() != self.edges.len() {
            return None;
        }
        for (e, &f) in self.edges.iter().zip(flows) {
            if f < -tol || f > e.capacity as f64 + tol {
                return None;
            }
        }
        let mut net = vec![0.0f64; self.n];
        for (e, &f) in self.edges.iter().zip(flows) {
            net[e.from] -= f;
            net[e.to] += f;
        }
        for (v, nv) in net.iter().enumerate() {
            if v != self.source && v != self.sink && nv.abs() > tol * (1.0 + nv.abs()) {
                return None;
            }
        }
        Some(-net[self.source])
    }

    /// Converts to an equivalent network with `scale`-multiplied capacities
    /// (used by quantization round-trip tests).
    pub fn scaled_capacities(&self, scale: i64) -> Result<FlowNetwork, GraphError> {
        let mut g = FlowNetwork::new(self.n, self.source, self.sink)?;
        for e in &self.edges {
            g.add_edge(e.from, e.to, e.capacity * scale)?;
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig5a() -> FlowNetwork {
        let mut g = FlowNetwork::new(5, 0, 4).unwrap();
        g.add_edge(0, 1, 3).unwrap(); // x1: s  → n1
        g.add_edge(1, 2, 2).unwrap(); // x2: n1 → n2
        g.add_edge(1, 3, 1).unwrap(); // x3: n1 → n3
        g.add_edge(2, 4, 1).unwrap(); // x4: n2 → t
        g.add_edge(3, 4, 2).unwrap(); // x5: n3 → t
        g
    }

    #[test]
    fn construction_and_accessors() {
        let g = fig5a();
        assert_eq!(g.vertex_count(), 5);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.source(), 0);
        assert_eq!(g.sink(), 4);
        assert_eq!(g.max_capacity(), 3);
        assert_eq!(g.source_capacity(), 3);
        assert_eq!(g.out_degree(1), 2);
        assert_eq!(g.in_degree(4), 2);
        assert!(g.sink_reachable());
    }

    #[test]
    fn rejects_bad_edges() {
        let mut g = FlowNetwork::new(3, 0, 2).unwrap();
        assert!(matches!(
            g.add_edge(0, 5, 1),
            Err(GraphError::VertexOutOfRange { vertex: 5, .. })
        ));
        assert!(matches!(
            g.add_edge(1, 1, 1),
            Err(GraphError::SelfLoop { vertex: 1 })
        ));
        assert!(matches!(
            g.add_edge(0, 1, 0),
            Err(GraphError::InvalidCapacity { capacity: 0 })
        ));
        assert!(matches!(
            g.add_edge(0, 1, -3),
            Err(GraphError::InvalidCapacity { capacity: -3 })
        ));
    }

    #[test]
    fn rejects_bad_endpoints() {
        assert!(FlowNetwork::new(1, 0, 0).is_err());
        assert!(FlowNetwork::new(5, 2, 2).is_err());
        assert!(FlowNetwork::new(5, 7, 1).is_err());
    }

    #[test]
    fn parallel_edges_allowed() {
        let mut g = FlowNetwork::new(2, 0, 1).unwrap();
        let e1 = g.add_edge(0, 1, 1).unwrap();
        let e2 = g.add_edge(0, 1, 2).unwrap();
        assert_ne!(e1, e2);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn validate_flow_accepts_optimum() {
        let g = fig5a();
        // The paper's optimum: x1 = 2, x2 = x3 = x4 = x5 = 1 → |f| = 2.
        let flows = [2.0, 1.0, 1.0, 1.0, 1.0];
        let v = g.validate_flow(&flows, 1e-9).expect("feasible");
        assert!((v - 2.0).abs() < 1e-9);
    }

    #[test]
    fn validate_flow_rejects_violations() {
        let g = fig5a();
        // Over capacity on edge x4 (cap 1).
        assert!(g.validate_flow(&[3.0, 2.0, 1.0, 2.0, 1.0], 1e-9).is_none());
        // Conservation violated at n1.
        assert!(g.validate_flow(&[2.0, 0.5, 0.5, 0.5, 0.5], 1e-9).is_none());
        // Wrong length.
        assert!(g.validate_flow(&[1.0], 1e-9).is_none());
        // Negative flow.
        assert!(g.validate_flow(&[-1.0, 0.0, 0.0, 0.0, 0.0], 1e-9).is_none());
    }

    #[test]
    fn sink_unreachable_detected() {
        let mut g = FlowNetwork::new(4, 0, 3).unwrap();
        g.add_edge(0, 1, 1).unwrap();
        g.add_edge(2, 3, 1).unwrap();
        assert!(!g.sink_reachable());
    }

    #[test]
    fn scaled_capacities() {
        let g = fig5a().scaled_capacities(10).unwrap();
        assert_eq!(g.max_capacity(), 30);
    }
}
