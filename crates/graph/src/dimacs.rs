//! DIMACS maximum-flow format I/O.
//!
//! The DIMACS format is the lingua franca of max-flow benchmarks:
//!
//! ```text
//! c comment
//! p max <n> <m>
//! n <id> s
//! n <id> t
//! a <from> <to> <capacity>
//! ```
//!
//! Vertex ids are 1-based in the file and 0-based in [`FlowNetwork`].

use crate::{FlowNetwork, GraphError};

/// Parses a DIMACS max-flow description.
///
/// # Errors
///
/// [`GraphError::ParseDimacs`] with a line number for malformed input, and
/// the usual construction errors for semantically invalid graphs.
///
/// # Example
///
/// ```
/// let text = "c tiny\np max 2 1\nn 1 s\nn 2 t\na 1 2 5\n";
/// let g = ohmflow_graph::dimacs::parse(text)?;
/// assert_eq!(g.edge_count(), 1);
/// # Ok::<(), ohmflow_graph::GraphError>(())
/// ```
pub fn parse(text: &str) -> Result<FlowNetwork, GraphError> {
    let mut n: Option<usize> = None;
    let mut declared_m: Option<usize> = None;
    let mut source: Option<usize> = None;
    let mut sink: Option<usize> = None;
    let mut arcs: Vec<(usize, usize, i64)> = Vec::new();

    let err = |line: usize, message: &str| GraphError::ParseDimacs {
        line,
        message: message.to_owned(),
    };

    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("p") => {
                if parts.next() != Some("max") {
                    return Err(err(lineno, "expected 'p max <n> <m>'"));
                }
                n = Some(
                    parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| err(lineno, "bad vertex count"))?,
                );
                declared_m = Some(
                    parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| err(lineno, "bad edge count"))?,
                );
            }
            Some("n") => {
                let id: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(lineno, "bad node id"))?;
                match parts.next() {
                    Some("s") => {
                        source = Some(
                            id.checked_sub(1)
                                .ok_or_else(|| err(lineno, "1-based ids"))?,
                        )
                    }
                    Some("t") => {
                        sink = Some(
                            id.checked_sub(1)
                                .ok_or_else(|| err(lineno, "1-based ids"))?,
                        )
                    }
                    _ => return Err(err(lineno, "node designator must be s or t")),
                }
            }
            Some("a") => {
                let from: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(lineno, "bad arc tail"))?;
                let to: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(lineno, "bad arc head"))?;
                let cap: i64 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(lineno, "bad arc capacity"))?;
                if from == 0 || to == 0 {
                    return Err(err(lineno, "arc endpoints are 1-based"));
                }
                arcs.push((from - 1, to - 1, cap));
            }
            _ => return Err(err(lineno, "unknown record")),
        }
    }

    let n = n.ok_or_else(|| err(0, "missing problem line"))?;
    let source = source.ok_or_else(|| err(0, "missing source designator"))?;
    let sink = sink.ok_or_else(|| err(0, "missing sink designator"))?;
    let mut g = FlowNetwork::new(n, source, sink)?;
    for (from, to, cap) in arcs {
        g.add_edge(from, to, cap)?;
    }
    if let Some(m) = declared_m {
        if m != g.edge_count() {
            return Err(GraphError::ParseDimacs {
                line: 0,
                message: format!("declared {m} arcs, found {}", g.edge_count()),
            });
        }
    }
    Ok(g)
}

/// Serializes a network to the DIMACS max-flow format.
///
/// ```
/// let g = ohmflow_graph::generators::fig5a();
/// let text = ohmflow_graph::dimacs::write(&g);
/// let round = ohmflow_graph::dimacs::parse(&text)?;
/// assert_eq!(g, round);
/// # Ok::<(), ohmflow_graph::GraphError>(())
/// ```
pub fn write(g: &FlowNetwork) -> String {
    let mut out = String::new();
    out.push_str(&format!("p max {} {}\n", g.vertex_count(), g.edge_count()));
    out.push_str(&format!("n {} s\n", g.source() + 1));
    out.push_str(&format!("n {} t\n", g.sink() + 1));
    for e in g.edges() {
        out.push_str(&format!("a {} {} {}\n", e.from + 1, e.to + 1, e.capacity));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn roundtrip_fig5a() {
        let g = generators::fig5a();
        let text = write(&g);
        assert_eq!(parse(&text).unwrap(), g);
    }

    #[test]
    fn parse_with_comments_and_blanks() {
        let text = "c header\n\np max 3 2\nc mid\nn 1 s\nn 3 t\na 1 2 4\na 2 3 7\n";
        let g = parse(text).unwrap();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.source(), 0);
        assert_eq!(g.sink(), 2);
    }

    #[test]
    fn error_line_numbers() {
        let text = "p max 2 1\nn 1 s\nn 2 t\na 1 two 5\n";
        match parse(text) {
            Err(GraphError::ParseDimacs { line, .. }) => assert_eq!(line, 4),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn missing_problem_line() {
        assert!(matches!(
            parse("n 1 s\n"),
            Err(GraphError::ParseDimacs { .. })
        ));
    }

    #[test]
    fn arc_count_mismatch_detected() {
        let text = "p max 2 2\nn 1 s\nn 2 t\na 1 2 5\n";
        assert!(parse(text).is_err());
    }

    #[test]
    fn bad_designator_rejected() {
        let text = "p max 2 1\nn 1 q\nn 2 t\na 1 2 5\n";
        assert!(parse(text).is_err());
    }
}
