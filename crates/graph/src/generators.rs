//! Deterministic graph generators: the paper's worked examples and the
//! standard topologies used across the test and benchmark suites.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{FlowNetwork, GraphError};

/// The worked example of Fig. 5a: five vertices `s, n1, n2, n3, t` and five
/// edges `x1..x5`. Two parallel branches with *mismatched* capacities leave
/// `n1`: `n1→n2 (2)` continuing as `n2→t (1)`, and `n1→n3 (1)` continuing as
/// `n3→t (2)`. The exact max-flow value is 2 (each branch bottlenecks at 1),
/// matching the §2.4 walk-through — `V(x1)` first rises toward 3 V, the
/// capacity-1 clamps on `x3`/`x4` engage at 1 V, and `x1` settles at 2 V —
/// and Fig. 8's quantized solution `0.35 + 0.35 = 0.7 V → |f| ≈ 2.1`.
///
/// Edge ids follow the paper's numbering (the Fig. 5b widget list
/// `e_s1, e_13, e_12, e_3t, e_2t`): `x1 = s→n1 (3)`, `x2 = n1→n2 (2)`,
/// `x3 = n1→n3 (1)`, `x4 = n2→t (1)`, `x5 = n3→t (2)`.
///
/// ```
/// let g = ohmflow_graph::generators::fig5a();
/// assert_eq!(g.edge_count(), 5);
/// assert_eq!(g.max_capacity(), 3);
/// ```
pub fn fig5a() -> FlowNetwork {
    let mut g =
        FlowNetwork::new(5, 0, 4).expect("invariant: the static example graph is well-formed");
    g.add_edge(0, 1, 3)
        .expect("invariant: the static example graph is well-formed"); // s  → n1
    g.add_edge(1, 2, 2)
        .expect("invariant: the static example graph is well-formed"); // n1 → n2
    g.add_edge(1, 3, 1)
        .expect("invariant: the static example graph is well-formed"); // n1 → n3
    g.add_edge(2, 4, 1)
        .expect("invariant: the static example graph is well-formed"); // n2 → t
    g.add_edge(3, 4, 2)
        .expect("invariant: the static example graph is well-formed"); // n3 → t
    g
}

/// The §6.5 dynamic-behaviour example (Fig. 15a, Eq. 8): `s → n1` with
/// capacity 4, then `n1 → n2` (capacity 1) and `n1 → n3` (capacity 4), both
/// re-merging at `t` through effectively unconstrained edges (the paper uses
/// `+∞`; we use a large finite capacity `big`). Max flow is 4... bounded by
/// `x1`'s capacity 4 and achieved as `x2 = 1, x3 = 3` at the optimum `B` of
/// Fig. 15c when the sink-side merge is capacity-limited appropriately.
///
/// To match Eq. (8) exactly (`max x1` s.t. `x1 = x2 + x3`, `x1 ≤ 4`,
/// `x2 ≤ 1`, `x3 ≤ 4`) the two sink edges are given capacity `big`.
pub fn fig15a(big: i64) -> FlowNetwork {
    let mut g =
        FlowNetwork::new(5, 0, 4).expect("invariant: the static example graph is well-formed");
    g.add_edge(0, 1, 4)
        .expect("invariant: the static example graph is well-formed"); // s  → n1, capacity 4
    g.add_edge(1, 2, 1)
        .expect("invariant: the static example graph is well-formed"); // n1 → n2, capacity 1
    g.add_edge(1, 3, 4)
        .expect("invariant: the static example graph is well-formed"); // n1 → n3, capacity 4
    g.add_edge(2, 4, big)
        .expect("invariant: the static example graph is well-formed");
    g.add_edge(3, 4, big)
        .expect("invariant: the static example graph is well-formed");
    g
}

/// A simple path `s → v1 → … → t` where edge `i` has capacity `caps[i]`.
/// Max flow equals `min(caps)`.
///
/// # Errors
///
/// [`GraphError`] if `caps` is empty or contains non-positive entries.
pub fn path(caps: &[i64]) -> Result<FlowNetwork, GraphError> {
    if caps.is_empty() {
        return Err(GraphError::InvalidEndpoints { source: 0, sink: 0 });
    }
    let n = caps.len() + 1;
    let mut g = FlowNetwork::new(n, 0, n - 1)?;
    for (i, &c) in caps.iter().enumerate() {
        g.add_edge(i, i + 1, c)?;
    }
    Ok(g)
}

/// `width` parallel disjoint `s → v_i → t` paths, each of capacity `cap`.
/// Max flow is `width * cap`. Exercises wide conservation fan-outs.
///
/// # Errors
///
/// [`GraphError`] for `width == 0` or non-positive capacity.
pub fn parallel_paths(width: usize, cap: i64) -> Result<FlowNetwork, GraphError> {
    if width == 0 {
        return Err(GraphError::InvalidEndpoints { source: 0, sink: 0 });
    }
    let n = width + 2;
    let mut g = FlowNetwork::new(n, 0, n - 1)?;
    for i in 0..width {
        g.add_edge(0, 1 + i, cap)?;
        g.add_edge(1 + i, n - 1, cap)?;
    }
    Ok(g)
}

/// A layered DAG: `layers` layers of `width` vertices, complete bipartite
/// connections between consecutive layers, random capacities in
/// `1..=max_cap`. Vision-style max-flow instances (grid cuts) have this
/// shape.
///
/// # Errors
///
/// [`GraphError`] for degenerate shapes.
pub fn layered(
    layers: usize,
    width: usize,
    max_cap: i64,
    seed: u64,
) -> Result<FlowNetwork, GraphError> {
    if layers == 0 || width == 0 || max_cap <= 0 {
        return Err(GraphError::InvalidEndpoints { source: 0, sink: 0 });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let n = layers * width + 2;
    let sink = n - 1;
    let mut g = FlowNetwork::new(n, 0, sink)?;
    let vid = |layer: usize, i: usize| 1 + layer * width + i;
    for i in 0..width {
        g.add_edge(0, vid(0, i), rng.gen_range(1..=max_cap))?;
    }
    for l in 0..layers - 1 {
        for i in 0..width {
            for j in 0..width {
                g.add_edge(vid(l, i), vid(l + 1, j), rng.gen_range(1..=max_cap))?;
            }
        }
    }
    for i in 0..width {
        g.add_edge(vid(layers - 1, i), sink, rng.gen_range(1..=max_cap))?;
    }
    Ok(g)
}

/// A 4-connected `rows × cols` grid with a super-source attached to the
/// left column and a super-sink to the right column — the image-segmentation
/// workload shape the paper's intro motivates (computer vision, Boykov &
/// Kolmogorov). Horizontal/vertical neighbour edges are bidirectional (two
/// opposite directed edges) with random capacities.
///
/// # Errors
///
/// [`GraphError`] for degenerate shapes.
pub fn grid(rows: usize, cols: usize, max_cap: i64, seed: u64) -> Result<FlowNetwork, GraphError> {
    if rows == 0 || cols == 0 || max_cap <= 0 {
        return Err(GraphError::InvalidEndpoints { source: 0, sink: 0 });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rows * cols + 2;
    let (s, t) = (rows * cols, rows * cols + 1);
    let mut g = FlowNetwork::new(n, s, t)?;
    let vid = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                let cap1 = rng.gen_range(1..=max_cap);
                let cap2 = rng.gen_range(1..=max_cap);
                g.add_edge(vid(r, c), vid(r, c + 1), cap1)?;
                g.add_edge(vid(r, c + 1), vid(r, c), cap2)?;
            }
            if r + 1 < rows {
                let cap1 = rng.gen_range(1..=max_cap);
                let cap2 = rng.gen_range(1..=max_cap);
                g.add_edge(vid(r, c), vid(r + 1, c), cap1)?;
                g.add_edge(vid(r + 1, c), vid(r, c), cap2)?;
            }
        }
        g.add_edge(s, vid(r, 0), max_cap)?;
        g.add_edge(vid(r, cols - 1), t, max_cap)?;
    }
    Ok(g)
}

/// Bipartite matching instance: `left` and `right` vertex sets, each left
/// vertex connected to `degree` random right vertices with unit capacity,
/// plus unit edges from the source and to the sink. Max flow equals the
/// maximum bipartite matching size.
///
/// # Errors
///
/// [`GraphError`] for degenerate shapes.
pub fn bipartite(
    left: usize,
    right: usize,
    degree: usize,
    seed: u64,
) -> Result<FlowNetwork, GraphError> {
    if left == 0 || right == 0 || degree == 0 {
        return Err(GraphError::InvalidEndpoints { source: 0, sink: 0 });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let n = left + right + 2;
    let (s, t) = (n - 2, n - 1);
    let mut g = FlowNetwork::new(n, s, t)?;
    for l in 0..left {
        g.add_edge(s, l, 1)?;
        for _ in 0..degree {
            let r = left + rng.gen_range(0..right);
            g.add_edge(l, r, 1)?;
        }
    }
    for r in 0..right {
        g.add_edge(left + r, t, 1)?;
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5a_shape() {
        let g = fig5a();
        assert_eq!(g.vertex_count(), 5);
        assert_eq!(g.edge_count(), 5);
        assert!(g.sink_reachable());
        // Known optimum: x1 = 2, each branch carries 1.
        assert_eq!(g.validate_flow(&[2.0, 1.0, 1.0, 1.0, 1.0], 1e-9), Some(2.0));
    }

    #[test]
    fn fig15a_shape() {
        let g = fig15a(1000);
        assert_eq!(g.edge_count(), 5);
        // Optimum of Eq. (8): x1 = 4 = x2 + x3 with x2 = 1, x3 = 3.
        assert_eq!(g.validate_flow(&[4.0, 1.0, 3.0, 1.0, 3.0], 1e-9), Some(4.0));
    }

    #[test]
    fn path_bottleneck() {
        let g = path(&[5, 2, 9]).unwrap();
        assert_eq!(g.vertex_count(), 4);
        assert!(g.validate_flow(&[2.0, 2.0, 2.0], 1e-9).is_some());
        // Exceeds the capacity-2 bottleneck: infeasible.
        assert!(g.validate_flow(&[3.0, 3.0, 3.0], 1e-9).is_none());
        assert!(path(&[]).is_err());
    }

    #[test]
    fn parallel_paths_shape() {
        let g = parallel_paths(4, 3).unwrap();
        assert_eq!(g.edge_count(), 8);
        assert_eq!(g.source_capacity(), 12);
        assert!(parallel_paths(0, 3).is_err());
    }

    #[test]
    fn layered_connects_source_to_sink() {
        let g = layered(3, 4, 7, 1).unwrap();
        assert!(g.sink_reachable());
        assert_eq!(g.vertex_count(), 14);
        // 4 + 2*16 + 4 = 40 edges.
        assert_eq!(g.edge_count(), 40);
    }

    #[test]
    fn grid_is_reachable_and_deterministic() {
        let g1 = grid(4, 5, 9, 3).unwrap();
        let g2 = grid(4, 5, 9, 3).unwrap();
        assert_eq!(g1, g2);
        assert!(g1.sink_reachable());
    }

    #[test]
    fn bipartite_capacities_are_unit() {
        let g = bipartite(5, 5, 2, 9).unwrap();
        assert_eq!(g.max_capacity(), 1);
        assert!(g.sink_reachable());
    }
}
