//! Compact binary flow-network encoding (`OFG1`) — the serving tier's
//! zero-parse ingest path, an order of magnitude denser than DIMACS text
//! for large instances.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   4 bytes   b"OFG1"
//! n       u64       vertex count
//! source  u64       source vertex
//! sink    u64       sink vertex
//! m       u64       edge count
//! edges   m × { from: u32, to: u32, capacity: i64 }
//! ```
//!
//! `u32` endpoints cap the format at 2³² vertices — far beyond anything
//! the analog substrate model addresses — while keeping the per-edge
//! record at 16 bytes. Validation (range checks, self-loops, positive
//! capacities, endpoint sanity) is delegated to [`FlowNetwork`]'s own
//! constructors, so a decoded graph satisfies exactly the invariants a
//! programmatically built one does.

use crate::{FlowNetwork, GraphError};

/// Magic prefix of the binary encoding (version 1).
pub const MAGIC: [u8; 4] = *b"OFG1";

/// Bytes per encoded edge record.
const EDGE_BYTES: usize = 16;

/// Header bytes: magic + n + source + sink + m.
const HEADER_BYTES: usize = 4 + 8 * 4;

fn parse_err(offset: usize, message: impl Into<String>) -> GraphError {
    GraphError::ParseBinary {
        offset,
        message: message.into(),
    }
}

fn read_u64(buf: &[u8], offset: usize) -> Result<u64, GraphError> {
    let bytes: [u8; 8] = buf
        .get(offset..offset + 8)
        .ok_or_else(|| parse_err(offset, "truncated u64"))?
        .try_into()
        .expect("invariant: fixed-width header fields are 8 bytes");
    Ok(u64::from_le_bytes(bytes))
}

fn read_u32(buf: &[u8], offset: usize) -> Result<u32, GraphError> {
    let bytes: [u8; 4] = buf
        .get(offset..offset + 4)
        .ok_or_else(|| parse_err(offset, "truncated u32"))?
        .try_into()
        .expect("invariant: fixed-width header fields are 4 bytes");
    Ok(u32::from_le_bytes(bytes))
}

/// Encodes `g` in the `OFG1` binary layout.
pub fn write_binary(g: &FlowNetwork) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_BYTES + g.edge_count() * EDGE_BYTES);
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&(g.vertex_count() as u64).to_le_bytes());
    buf.extend_from_slice(&(g.source() as u64).to_le_bytes());
    buf.extend_from_slice(&(g.sink() as u64).to_le_bytes());
    buf.extend_from_slice(&(g.edge_count() as u64).to_le_bytes());
    for e in g.edges() {
        buf.extend_from_slice(&(e.from as u32).to_le_bytes());
        buf.extend_from_slice(&(e.to as u32).to_le_bytes());
        buf.extend_from_slice(&e.capacity.to_le_bytes());
    }
    buf
}

/// Decodes an `OFG1` payload into a [`FlowNetwork`].
///
/// # Errors
///
/// [`GraphError::ParseBinary`] on a bad magic, truncation or trailing
/// garbage; the usual construction errors ([`GraphError::VertexOutOfRange`],
/// [`GraphError::InvalidCapacity`], [`GraphError::SelfLoop`],
/// [`GraphError::InvalidEndpoints`]) when the payload decodes but does not
/// describe a valid flow network.
pub fn parse_binary(buf: &[u8]) -> Result<FlowNetwork, GraphError> {
    if buf.len() < 4 || buf[..4] != MAGIC {
        return Err(parse_err(0, "missing OFG1 magic"));
    }
    let n = read_u64(buf, 4)?;
    let source = read_u64(buf, 12)?;
    let sink = read_u64(buf, 20)?;
    let m = read_u64(buf, 28)?;
    let n = usize::try_from(n).map_err(|_| parse_err(4, "vertex count overflows usize"))?;
    let source = usize::try_from(source).map_err(|_| parse_err(12, "source overflows usize"))?;
    let sink = usize::try_from(sink).map_err(|_| parse_err(20, "sink overflows usize"))?;
    let m = usize::try_from(m).map_err(|_| parse_err(28, "edge count overflows usize"))?;

    let expected = HEADER_BYTES
        + m.checked_mul(EDGE_BYTES)
            .ok_or_else(|| parse_err(28, "edge section overflows usize"))?;
    if buf.len() != expected {
        return Err(parse_err(
            buf.len().min(expected),
            format!("payload is {} bytes, header implies {expected}", buf.len()),
        ));
    }

    let mut g = FlowNetwork::new(n, source, sink)?;
    for i in 0..m {
        let offset = HEADER_BYTES + i * EDGE_BYTES;
        let from = read_u32(buf, offset)? as usize;
        let to = read_u32(buf, offset + 4)? as usize;
        let capacity = read_u64(buf, offset + 8)? as i64;
        g.add_edge(from, to, capacity)?;
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn round_trips_real_instances() {
        for g in [
            generators::fig5a(),
            generators::fig15a(12),
            generators::path(&[3, 1, 4]).unwrap(),
        ] {
            let buf = write_binary(&g);
            let back = parse_binary(&buf).expect("round trip");
            assert_eq!(back.vertex_count(), g.vertex_count());
            assert_eq!(back.source(), g.source());
            assert_eq!(back.sink(), g.sink());
            assert_eq!(back.edges(), g.edges());
        }
    }

    #[test]
    fn rejects_malformed_payloads() {
        let g = generators::fig5a();
        let buf = write_binary(&g);

        // Bad magic.
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(matches!(
            parse_binary(&bad),
            Err(GraphError::ParseBinary { offset: 0, .. })
        ));

        // Truncated edge section and trailing garbage.
        assert!(matches!(
            parse_binary(&buf[..buf.len() - 1]),
            Err(GraphError::ParseBinary { .. })
        ));
        let mut long = buf.clone();
        long.push(0);
        assert!(matches!(
            parse_binary(&long),
            Err(GraphError::ParseBinary { .. })
        ));

        // Decodes but is not a valid network: capacity 0 on edge 0.
        let mut zero_cap = buf;
        let cap_off = 36 + 8;
        zero_cap[cap_off..cap_off + 8].copy_from_slice(&0i64.to_le_bytes());
        assert!(matches!(
            parse_binary(&zero_cap),
            Err(GraphError::InvalidCapacity { .. })
        ));
    }
}
