//! Directed flow networks and graph workloads for the `ohmflow` workspace.
//!
//! Provides:
//!
//! * [`FlowNetwork`] — a directed graph with distinguished source/sink and
//!   integral edge capacities (the max-flow problem statement of §2 of the
//!   paper),
//! * [`rmat`] — the R-MAT recursive generator (Chakrabarti et al., ICDM'04)
//!   used by the paper's §5.1 evaluation, with the dense (`|E| ∝ |V|²`) and
//!   sparse (`|E| ∝ |V|`) presets,
//! * [`generators`] — deterministic test topologies (paths, grids, layered
//!   DAGs, bipartite matchings) and the paper's worked examples,
//! * [`dimacs`] — DIMACS max-flow format I/O,
//! * [`binfmt`] — the compact `OFG1` binary encoding used by the
//!   `ohmflow-serve` wire protocol,
//! * [`partition`] — vertex partitioning (BFS growing + Kernighan–Lin style
//!   refinement) used by the clustered-architecture and dual-decomposition
//!   studies of §6.
//!
//! # Example
//!
//! ```
//! use ohmflow_graph::FlowNetwork;
//!
//! # fn main() -> Result<(), ohmflow_graph::GraphError> {
//! // The example of Fig. 5a: s→n1 (3), n1→n2 (2), n1→n3 (1), n2→t (1), n3→t (2).
//! let mut g = FlowNetwork::new(5, 0, 4)?;
//! g.add_edge(0, 1, 3)?;
//! g.add_edge(1, 2, 2)?;
//! g.add_edge(1, 3, 1)?;
//! g.add_edge(2, 4, 1)?;
//! g.add_edge(3, 4, 2)?;
//! assert_eq!(g.edge_count(), 5);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod binfmt;
pub mod dimacs;
mod error;
pub mod generators;
mod network;
pub mod partition;
pub mod rmat;

pub use error::GraphError;
pub use network::{Edge, EdgeId, FlowNetwork};
