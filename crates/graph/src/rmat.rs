//! R-MAT recursive synthetic graph generator (Chakrabarti, Zhan &
//! Faloutsos, ICDM 2004) — the workload generator of the paper's §5.1.
//!
//! The paper generates *dense* (`|E| ∝ |V|²`) and *sparse* (`|E| ∝ |V|`)
//! graphs with 200–1000 vertices and 500–8000 edges; [`RmatConfig::dense`]
//! and [`RmatConfig::sparse`] reproduce those regimes. The paper does not
//! state its `(a, b, c, d)` partition probabilities; we use the standard
//! `(0.45, 0.15, 0.15, 0.25)` (documented deviation in `DESIGN.md`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{FlowNetwork, GraphError};

/// Configuration for the R-MAT generator.
#[derive(Debug, Clone, PartialEq)]
pub struct RmatConfig {
    /// Number of vertices (rounded up to a power of two internally for the
    /// recursive subdivision, then mapped back down).
    pub vertices: usize,
    /// Number of edges to generate.
    pub edges: usize,
    /// Quadrant probabilities `(a, b, c, d)`; must sum to 1.
    pub probabilities: (f64, f64, f64, f64),
    /// Capacities are drawn uniformly from `1..=max_capacity`.
    pub max_capacity: i64,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl RmatConfig {
    /// Standard R-MAT probabilities `(0.45, 0.15, 0.15, 0.25)`.
    pub const STANDARD_PROBS: (f64, f64, f64, f64) = (0.45, 0.15, 0.15, 0.25);

    /// Dense regime of Fig. 10a: `|E| = |V|² / 128` (so 256 vertices ≈ 512
    /// edges up to 960 vertices ≈ 7200 edges, matching the paper's "500 to
    /// 8000 edges" envelope).
    pub fn dense(vertices: usize, seed: u64) -> Self {
        RmatConfig {
            vertices,
            edges: (vertices * vertices) / 128,
            probabilities: Self::STANDARD_PROBS,
            max_capacity: 20,
            seed,
        }
    }

    /// Sparse regime of Fig. 10b: `|E| = 4 |V|`.
    pub fn sparse(vertices: usize, seed: u64) -> Self {
        RmatConfig {
            vertices,
            edges: 4 * vertices,
            probabilities: Self::STANDARD_PROBS,
            max_capacity: 20,
            seed,
        }
    }

    /// Generates a max-flow instance.
    ///
    /// The source is the vertex of largest out-degree and the sink the
    /// vertex of largest in-degree among the remaining ones; if the sink is
    /// not reachable from the source, a small number of capacity-1 repair
    /// edges along a random path is added so every instance is solvable.
    ///
    /// # Errors
    ///
    /// [`GraphError`] if the configuration is degenerate (fewer than 2
    /// vertices).
    pub fn generate(&self) -> Result<FlowNetwork, GraphError> {
        let n = self.vertices;
        if n < 2 {
            return Err(GraphError::InvalidEndpoints { source: 0, sink: 0 });
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let scale = (n as f64).log2().ceil() as u32;
        let side = 1usize << scale;
        let (a, b, c, _d) = self.probabilities;

        let mut raw_edges: Vec<(usize, usize)> = Vec::with_capacity(self.edges);
        let mut attempts = 0usize;
        while raw_edges.len() < self.edges && attempts < 50 * self.edges + 1000 {
            attempts += 1;
            let (mut r0, mut c0) = (0usize, 0usize);
            let mut span = side;
            while span > 1 {
                span /= 2;
                let p: f64 = rng.gen();
                if p < a {
                    // top-left
                } else if p < a + b {
                    c0 += span;
                } else if p < a + b + c {
                    r0 += span;
                } else {
                    r0 += span;
                    c0 += span;
                }
            }
            // Map down to n vertices and reject self-loops.
            let (u, v) = (r0 % n, c0 % n);
            if u != v {
                raw_edges.push((u, v));
            }
        }

        // Pick source/sink by degree.
        let mut outd = vec![0usize; n];
        let mut ind = vec![0usize; n];
        for &(u, v) in &raw_edges {
            outd[u] += 1;
            ind[v] += 1;
        }
        let source = (0..n).max_by_key(|&v| outd[v]).unwrap_or(0);
        let sink = (0..n)
            .filter(|&v| v != source)
            .max_by_key(|&v| ind[v])
            .unwrap_or(if source == 0 { 1 } else { 0 });

        let mut g = FlowNetwork::new(n, source, sink)?;
        for &(u, v) in &raw_edges {
            let cap = rng.gen_range(1..=self.max_capacity.max(1));
            g.add_edge(u, v, cap)?;
        }

        // Repair reachability if needed: thread a random path s → … → t.
        if !g.sink_reachable() {
            let hops = 3.min(n - 2).max(1);
            let mut prev = source;
            for _ in 0..hops {
                let mut next = rng.gen_range(0..n);
                while next == prev || next == source {
                    next = rng.gen_range(0..n);
                }
                g.add_edge(prev, next, 1)?;
                prev = next;
            }
            if prev != sink {
                g.add_edge(prev, sink, 1)?;
            }
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_config_matches_paper_envelope() {
        let c = RmatConfig::dense(256, 1);
        assert_eq!(c.edges, 512);
        let c = RmatConfig::dense(960, 1);
        assert_eq!(c.edges, 7200);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let g1 = RmatConfig::sparse(100, 7).generate().unwrap();
        let g2 = RmatConfig::sparse(100, 7).generate().unwrap();
        assert_eq!(g1, g2);
        let g3 = RmatConfig::sparse(100, 8).generate().unwrap();
        assert_ne!(g1, g3);
    }

    #[test]
    fn generated_instances_are_solvable() {
        for seed in 0..10 {
            let g = RmatConfig::sparse(64, seed).generate().unwrap();
            assert!(g.sink_reachable(), "seed {seed}");
            assert!(g.edge_count() >= 64, "seed {seed}: {}", g.edge_count());
            assert!(g.max_capacity() <= 20);
        }
    }

    #[test]
    fn dense_has_quadratic_edges() {
        let g = RmatConfig::dense(128, 3).generate().unwrap();
        // 128^2/128 = 128 requested; allow shortfall from self-loop rejection.
        assert!(g.edge_count() >= 100);
    }

    #[test]
    fn degenerate_config_rejected() {
        let cfg = RmatConfig {
            vertices: 1,
            edges: 0,
            probabilities: RmatConfig::STANDARD_PROBS,
            max_capacity: 1,
            seed: 0,
        };
        assert!(cfg.generate().is_err());
    }

    #[test]
    fn skew_concentrates_degree() {
        // With strongly skewed probabilities most edges land near vertex 0.
        let cfg = RmatConfig {
            vertices: 256,
            edges: 2000,
            probabilities: (0.9, 0.04, 0.04, 0.02),
            max_capacity: 5,
            seed: 11,
        };
        let g = cfg.generate().unwrap();
        let hub_degree = g.out_degree(g.source()) + g.in_degree(g.source());
        assert!(hub_degree > 2000 / 64, "hub degree {hub_degree}");
    }
}
