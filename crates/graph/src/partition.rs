//! Vertex partitioning for the clustered-architecture (§6.2) and dual-
//! decomposition (§6.4) studies.
//!
//! Two entry points:
//!
//! * [`partition_bfs`] — grows `k` balanced parts by multi-source BFS and
//!   refines them with a Kernighan–Lin-style boundary pass that reduces the
//!   number of cut edges,
//! * [`overlap_partition`] — splits a network into two *overlapping*
//!   subproblems sharing a vertex separator, the structure required by the
//!   paper's dual-decomposition formulation.

use crate::FlowNetwork;

/// A `k`-way vertex partition: `assignment[v]` is the part of vertex `v`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Part index per vertex.
    pub assignment: Vec<usize>,
    /// Number of parts.
    pub parts: usize,
}

impl Partition {
    /// Number of edges whose endpoints lie in different parts.
    pub fn cut_edges(&self, g: &FlowNetwork) -> usize {
        g.edges()
            .iter()
            .filter(|e| self.assignment[e.from] != self.assignment[e.to])
            .count()
    }

    /// Sizes of each part.
    pub fn part_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.parts];
        for &p in &self.assignment {
            sizes[p] += 1;
        }
        sizes
    }

    /// Vertices belonging to part `p`.
    pub fn members(&self, p: usize) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter_map(|(v, &q)| (q == p).then_some(v))
            .collect()
    }
}

/// Partitions the vertices of `g` into `k` roughly balanced parts.
///
/// Seeds are spread with a farthest-point heuristic, parts grow by
/// synchronous BFS, and a bounded number of boundary-refinement passes
/// moves vertices whose move strictly reduces the cut while keeping parts
/// within a 20 % imbalance budget.
///
/// # Panics
///
/// Panics if `k == 0` or `k > g.vertex_count()`.
pub fn partition_bfs(g: &FlowNetwork, k: usize) -> Partition {
    let n = g.vertex_count();
    assert!(k >= 1 && k <= n, "k must be in 1..=|V|");
    if k == 1 {
        return Partition {
            assignment: vec![0; n],
            parts: 1,
        };
    }

    // Undirected adjacency.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in g.edges() {
        adj[e.from].push(e.to);
        adj[e.to].push(e.from);
    }

    // Farthest-point seeding from the source.
    let bfs_dist = |start: usize, adj: &[Vec<usize>]| {
        let mut dist = vec![usize::MAX; n];
        let mut q = std::collections::VecDeque::new();
        dist[start] = 0;
        q.push_back(start);
        while let Some(v) = q.pop_front() {
            for &u in &adj[v] {
                if dist[u] == usize::MAX {
                    dist[u] = dist[v] + 1;
                    q.push_back(u);
                }
            }
        }
        dist
    };
    let mut seeds = vec![g.source()];
    while seeds.len() < k {
        // Farthest vertex from all current seeds (unreachable → distance 0
        // tie-broken by index, still yields a valid seed).
        let mut best = 0usize;
        let mut best_d = 0usize;
        let dists: Vec<Vec<usize>> = seeds.iter().map(|&s| bfs_dist(s, &adj)).collect();
        for v in 0..n {
            if seeds.contains(&v) {
                continue;
            }
            let d = dists
                .iter()
                .map(|dv| if dv[v] == usize::MAX { n } else { dv[v] })
                .min()
                .unwrap_or(0);
            if d >= best_d {
                best_d = d;
                best = v;
            }
        }
        seeds.push(best);
    }

    // Synchronous multi-source BFS growth with a hard per-part size cap so
    // a well-connected region cannot swallow the whole graph.
    let max_size = (n / k) + (n / (5 * k)).max(1); // ~20% imbalance budget
    let mut assignment = vec![usize::MAX; n];
    let mut sizes_grow = vec![0usize; k];
    let mut queue = std::collections::VecDeque::new();
    for (p, &s) in seeds.iter().enumerate() {
        assignment[s] = p;
        sizes_grow[p] += 1;
        queue.push_back(s);
    }
    while let Some(v) = queue.pop_front() {
        let part = assignment[v];
        for &u in &adj[v] {
            if assignment[u] == usize::MAX && sizes_grow[part] < max_size {
                assignment[u] = part;
                sizes_grow[part] += 1;
                queue.push_back(u);
            }
        }
    }
    // Unassigned vertices (unreachable, or blocked by full parts): place in
    // the currently smallest part.
    for slot in assignment.iter_mut() {
        if *slot == usize::MAX {
            let p = (0..k)
                .min_by_key(|&p| sizes_grow[p])
                .expect("invariant: partitioning is called with k >= 1");
            *slot = p;
            sizes_grow[p] += 1;
        }
    }

    // KL-style refinement: move boundary vertices that reduce the cut.
    let mut sizes = vec![0usize; k];
    for &a in &assignment {
        sizes[a] += 1;
    }
    for _pass in 0..4 {
        let mut moved = 0usize;
        for v in 0..n {
            let cur = assignment[v];
            if sizes[cur] <= 1 {
                continue;
            }
            // Gain of moving v to each neighbouring part.
            let mut counts = std::collections::HashMap::new();
            for &u in &adj[v] {
                *counts.entry(assignment[u]).or_insert(0usize) += 1;
            }
            let here = counts.get(&cur).copied().unwrap_or(0);
            if let Some((&best_p, &cnt)) = counts
                .iter()
                .filter(|&(&p, _)| p != cur && sizes[p] < max_size)
                .max_by_key(|&(_, &c)| c)
            {
                if cnt > here {
                    assignment[v] = best_p;
                    sizes[cur] -= 1;
                    sizes[best_p] += 1;
                    moved += 1;
                }
            }
        }
        if moved == 0 {
            break;
        }
    }

    Partition {
        assignment,
        parts: k,
    }
}

/// An overlapping two-way split for dual decomposition (§6.4): parts `M`
/// and `N` share the separator vertices, and every edge belongs to at least
/// one side.
#[derive(Debug, Clone)]
pub struct OverlapSplit {
    /// Vertices of subproblem `M` (includes the overlap).
    pub m_vertices: Vec<usize>,
    /// Vertices of subproblem `N` (includes the overlap).
    pub n_vertices: Vec<usize>,
    /// The shared vertices `M ∩ N`.
    pub overlap: Vec<usize>,
}

/// Splits `g` into two overlapping halves around a 2-way
/// [`partition_bfs`]: each half keeps its own vertices plus every vertex on
/// the other side that is adjacent to a cut edge (the separator), so the
/// two subproblems agree on the duplicated boundary variables.
pub fn overlap_partition(g: &FlowNetwork) -> OverlapSplit {
    let part = partition_bfs(g, 2);
    let n = g.vertex_count();
    let mut in_m = vec![false; n];
    let mut in_n = vec![false; n];
    for v in 0..n {
        if part.assignment[v] == 0 {
            in_m[v] = true;
        } else {
            in_n[v] = true;
        }
    }
    for e in g.edges() {
        let (pa, pb) = (part.assignment[e.from], part.assignment[e.to]);
        if pa != pb {
            // Both endpoints become shared.
            in_m[e.from] = true;
            in_m[e.to] = true;
            in_n[e.from] = true;
            in_n[e.to] = true;
        }
    }
    let m_vertices: Vec<usize> = (0..n).filter(|&v| in_m[v]).collect();
    let n_vertices: Vec<usize> = (0..n).filter(|&v| in_n[v]).collect();
    let overlap: Vec<usize> = (0..n).filter(|&v| in_m[v] && in_n[v]).collect();
    OverlapSplit {
        m_vertices,
        n_vertices,
        overlap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::rmat::RmatConfig;

    #[test]
    fn single_part_is_trivial() {
        let g = generators::fig5a();
        let p = partition_bfs(&g, 1);
        assert_eq!(p.cut_edges(&g), 0);
        assert_eq!(p.part_sizes(), vec![5]);
    }

    #[test]
    fn partition_covers_all_vertices() {
        let g = RmatConfig::sparse(120, 3).generate().unwrap();
        let p = partition_bfs(&g, 4);
        assert_eq!(p.assignment.len(), 120);
        assert!(p.assignment.iter().all(|&a| a < 4));
        let sizes = p.part_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 120);
        assert!(sizes.iter().all(|&s| s > 0), "sizes {sizes:?}");
    }

    #[test]
    fn refinement_does_not_explode_cut() {
        // On two cliques joined by one edge, a 2-way partition should cut
        // very few edges.
        let mut g = FlowNetwork::new(12, 0, 11).unwrap();
        for i in 0..6 {
            for j in 0..6 {
                if i != j {
                    g.add_edge(i, j, 1).unwrap();
                }
            }
        }
        for i in 6..12 {
            for j in 6..12 {
                if i != j {
                    g.add_edge(i, j, 1).unwrap();
                }
            }
        }
        g.add_edge(2, 8, 1).unwrap();
        let p = partition_bfs(&g, 2);
        assert!(p.cut_edges(&g) <= 6, "cut {} too big", p.cut_edges(&g));
    }

    #[test]
    fn members_partition_the_vertex_set() {
        let g = RmatConfig::sparse(60, 5).generate().unwrap();
        let p = partition_bfs(&g, 3);
        let total: usize = (0..3).map(|q| p.members(q).len()).sum();
        assert_eq!(total, 60);
    }

    #[test]
    fn overlap_split_covers_vertices() {
        let g = RmatConfig::sparse(80, 9).generate().unwrap();
        let split = overlap_partition(&g);
        // Every vertex appears in at least one side.
        let mut covered = [false; 80];
        for &v in split.m_vertices.iter().chain(&split.n_vertices) {
            covered[v] = true;
        }
        assert!(covered.iter().all(|&c| c));
        // Overlap is exactly the intersection.
        for &v in &split.overlap {
            assert!(split.m_vertices.contains(&v) && split.n_vertices.contains(&v));
        }
    }

    #[test]
    fn overlap_split_nonempty_on_bridged_cliques() {
        // Two cliques joined by a single bridge edge: the bridge must be cut
        // by any balanced 2-way partition, so its endpoints are shared.
        let mut g = FlowNetwork::new(12, 0, 11).unwrap();
        for base in [0usize, 6] {
            for i in base..base + 6 {
                for j in base..base + 6 {
                    if i != j {
                        g.add_edge(i, j, 1).unwrap();
                    }
                }
            }
        }
        g.add_edge(2, 8, 1).unwrap();
        let split = overlap_partition(&g);
        assert!(!split.overlap.is_empty());
        assert!(split.overlap.contains(&2) || split.overlap.contains(&8));
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn zero_parts_panics() {
        let g = generators::fig5a();
        let _ = partition_bfs(&g, 0);
    }
}
