//! Property-based tests for graph construction, generation and I/O.

use proptest::prelude::*;

use ohmflow_graph::partition::{overlap_partition, partition_bfs};
use ohmflow_graph::rmat::RmatConfig;
use ohmflow_graph::{dimacs, FlowNetwork};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn rmat_instances_are_always_solvable(
        n in 8usize..96,
        seed in any::<u64>(),
        dense in any::<bool>(),
    ) {
        let cfg = if dense { RmatConfig::dense(n.max(12), seed) } else { RmatConfig::sparse(n, seed) };
        let g = cfg.generate().unwrap();
        prop_assert!(g.sink_reachable());
        prop_assert!(g.edge_count() > 0);
        prop_assert!(g.max_capacity() >= 1);
        prop_assert_ne!(g.source(), g.sink());
    }

    #[test]
    fn rmat_is_deterministic(n in 8usize..64, seed in any::<u64>()) {
        let a = RmatConfig::sparse(n, seed).generate().unwrap();
        let b = RmatConfig::sparse(n, seed).generate().unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn partition_is_balanced_within_budget(
        n in 12usize..80,
        k in 2usize..6,
        seed in any::<u64>(),
    ) {
        let g = RmatConfig::sparse(n, seed).generate().unwrap();
        let k = k.min(n);
        let p = partition_bfs(&g, k);
        let sizes = p.part_sizes();
        prop_assert_eq!(sizes.iter().sum::<usize>(), n);
        // The growth cap guarantees no part exceeds the imbalance budget.
        let max_size = (n / k) + (n / (5 * k)).max(1);
        for &s in &sizes {
            prop_assert!(s <= max_size, "part size {s} > budget {max_size}");
        }
    }

    #[test]
    fn overlap_split_covers_every_vertex(n in 10usize..60, seed in any::<u64>()) {
        let g = RmatConfig::sparse(n, seed).generate().unwrap();
        let split = overlap_partition(&g);
        let mut covered = vec![false; n];
        for &v in split.m_vertices.iter().chain(&split.n_vertices) {
            covered[v] = true;
        }
        prop_assert!(covered.iter().all(|&c| c));
        // Every edge is interior to at least one side.
        for e in g.edges() {
            let in_m = split.m_vertices.binary_search(&e.from).is_ok()
                && split.m_vertices.binary_search(&e.to).is_ok();
            let in_n = split.n_vertices.binary_search(&e.from).is_ok()
                && split.n_vertices.binary_search(&e.to).is_ok();
            prop_assert!(in_m || in_n);
        }
    }

    #[test]
    fn dimacs_roundtrips_rmat(n in 8usize..40, seed in any::<u64>()) {
        let g = RmatConfig::sparse(n, seed).generate().unwrap();
        let text = dimacs::write(&g);
        prop_assert_eq!(dimacs::parse(&text).unwrap(), g);
    }

    #[test]
    fn validate_flow_accepts_zero_flow(n in 4usize..30, seed in any::<u64>()) {
        let g = RmatConfig::sparse(n, seed).generate().unwrap();
        let zeros = vec![0.0; g.edge_count()];
        prop_assert_eq!(g.validate_flow(&zeros, 1e-12), Some(0.0));
    }

    #[test]
    fn scaled_capacities_scale_max_capacity(
        n in 4usize..24,
        seed in any::<u64>(),
        scale in 1i64..50,
    ) {
        let g = RmatConfig::sparse(n, seed).generate().unwrap();
        let s = g.scaled_capacities(scale).unwrap();
        prop_assert_eq!(s.max_capacity(), g.max_capacity() * scale);
        prop_assert_eq!(s.edge_count(), g.edge_count());
    }

    #[test]
    fn self_loops_always_rejected(n in 2usize..20, v in 0usize..20) {
        let mut g = FlowNetwork::new(n.max(v + 1), 0, n.max(v + 1) - 1).unwrap();
        prop_assert!(g.add_edge(v, v, 1).is_err());
    }
}
