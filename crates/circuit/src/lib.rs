//! An analog circuit simulator purpose-built for the `ohmflow` reproduction
//! of *"A Reconfigurable Analog Substrate for Highly Efficient Maximum Flow
//! Computation"* (Liu & Zhang, DAC 2015).
//!
//! The paper evaluates its substrate in SPICE; this crate is the SPICE
//! substitute. It provides:
//!
//! * a [`Circuit`] netlist builder with the device set the substrate needs —
//!   resistors (positive **and negative**), capacitors, independent sources,
//!   VCVS, piecewise-linear diodes, single-pole op-amp macromodels, and
//!   behavioural memristors ([`MemristorModel`]) with threshold programming,
//! * modified nodal analysis assembly ([`mna`]),
//! * staged DC solving through the [`DcSolver`] facade — plan the cold
//!   path once per circuit structure ([`DcPlan`]), then operating-point
//!   solves with diode/op-amp state (complementarity) iteration and
//!   incremental frozen-state sessions ([`FrozenDcSession`]) that pay only
//!   numeric work,
//! * transient analysis with backward-Euler and trapezoidal integration and
//!   factorization reuse across time steps ([`TransientAnalysis`]) — the
//!   integrator is hand-written because no suitable ODE crate is available,
//! * waveform recording and settle-time detection ([`Waveform`],
//!   [`WaveformSet`]).
//!
//! # Example: an RC step response
//!
//! ```
//! use ohmflow_circuit::{Circuit, SourceValue, TransientAnalysis, TransientOptions};
//!
//! # fn main() -> Result<(), ohmflow_circuit::CircuitError> {
//! let mut ckt = Circuit::new();
//! let vin = ckt.node("in");
//! let vout = ckt.node("out");
//! ckt.voltage_source(vin, Circuit::GROUND, SourceValue::step(0.0, 1.0, 0.0));
//! ckt.resistor(vin, vout, 1e3);
//! ckt.capacitor(vout, Circuit::GROUND, 1e-9);
//! let opts = TransientOptions::to_time(5e-6).with_step(1e-8);
//! let waves = TransientAnalysis::new(&ckt, opts)?.run()?;
//! let final_v = waves.voltage(vout).expect("probed").last_value();
//! assert!((final_v - 1.0).abs() < 1e-2);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod circuit;
mod dc;
mod element;
mod error;
mod ids;
pub mod mna;
mod source;
mod transient;
mod waveform;

pub use circuit::Circuit;
pub use dc::{
    solve_frozen_dc, DcPlan, DcSolution, DcSolver, DcTemplate, FrozenDcCache, FrozenDcPhases,
    FrozenDcSession, FrozenDcStats, SolveReport,
};
pub use element::{DiodeModel, Element, MemristorModel, MemristorState, OpAmpModel};
pub use error::CircuitError;
pub use ids::{ElementId, NodeId};
pub use ohmflow_linalg::{
    ColumnOrdering, Precision, RefactorStrategy, SparseLuOptions as LuOptions,
};
pub use source::SourceValue;
pub use transient::{IntegrationMethod, TransientAnalysis, TransientOptions};
pub use waveform::{Waveform, WaveformSet};
