use crate::circuit::Circuit;
use crate::element::Element;
use crate::error::CircuitError;
use crate::ids::{ElementId, NodeId};
use crate::mna::{self, History, MnaStructure, StampMode};
use crate::waveform::WaveformSet;

/// Time-integration scheme for [`TransientAnalysis`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IntegrationMethod {
    /// Backward Euler: L-stable, first order. Robust default for the
    /// stiff switched networks of the substrate.
    #[default]
    BackwardEuler,
    /// Trapezoidal rule: A-stable, second order. The first step is taken
    /// with backward Euler to bootstrap the capacitor-current history.
    Trapezoidal,
}

/// Options for a transient run.
///
/// # Example
///
/// ```
/// use ohmflow_circuit::{IntegrationMethod, TransientOptions};
///
/// let opts = TransientOptions::to_time(1e-6)
///     .with_step(1e-9)
///     .with_method(IntegrationMethod::Trapezoidal);
/// assert_eq!(opts.steps(), 1000);
/// ```
#[derive(Debug, Clone)]
pub struct TransientOptions {
    /// Stop time in seconds (exclusive of rounding).
    pub t_stop: f64,
    /// Fixed time step in seconds.
    pub dt: f64,
    /// Integration scheme.
    pub method: IntegrationMethod,
    /// Record one sample every `record_every` steps (1 = every step).
    pub record_every: usize,
    /// Nodes to record. `None` records every node in the circuit.
    pub probes: Option<Vec<NodeId>>,
    /// Elements whose branch current to record (voltage sources, VCVS,
    /// op-amps).
    pub current_probes: Vec<ElementId>,
}

impl TransientOptions {
    /// Simulates until `t_stop` with a default step of `t_stop / 1000`.
    pub fn to_time(t_stop: f64) -> Self {
        TransientOptions {
            t_stop,
            dt: t_stop / 1000.0,
            method: IntegrationMethod::default(),
            record_every: 1,
            probes: None,
            current_probes: Vec::new(),
        }
    }

    /// Sets the fixed time step.
    pub fn with_step(mut self, dt: f64) -> Self {
        self.dt = dt;
        self
    }

    /// Sets the integration method.
    pub fn with_method(mut self, method: IntegrationMethod) -> Self {
        self.method = method;
        self
    }

    /// Restricts voltage recording to the given nodes (saves memory on
    /// substrate-scale circuits with tens of thousands of nodes).
    pub fn probe_nodes(mut self, nodes: impl IntoIterator<Item = NodeId>) -> Self {
        self.probes = Some(nodes.into_iter().collect());
        self
    }

    /// Also records the branch current of `element`.
    pub fn probe_current(mut self, element: ElementId) -> Self {
        self.current_probes.push(element);
        self
    }

    /// Record every `n`-th step only.
    pub fn decimate(mut self, n: usize) -> Self {
        self.record_every = n.max(1);
        self
    }

    /// Number of integration steps implied by `t_stop` and `dt`.
    pub fn steps(&self) -> usize {
        (self.t_stop / self.dt).round() as usize
    }
}

/// Fixed-step transient analysis with PWL device-state iteration per step
/// and factorization reuse while states are unchanged.
///
/// See the crate-level example for typical use.
#[derive(Debug)]
pub struct TransientAnalysis<'c> {
    ckt: &'c Circuit,
    opts: TransientOptions,
}

impl<'c> TransientAnalysis<'c> {
    /// Prepares a transient run.
    ///
    /// # Errors
    ///
    /// [`CircuitError::InvalidParameter`] if `t_stop` or `dt` is not
    /// positive and finite, or if `dt > t_stop`.
    pub fn new(ckt: &'c Circuit, opts: TransientOptions) -> Result<Self, CircuitError> {
        if !(opts.t_stop > 0.0 && opts.t_stop.is_finite()) {
            return Err(CircuitError::InvalidParameter {
                what: format!("t_stop {}", opts.t_stop),
            });
        }
        if !(opts.dt > 0.0 && opts.dt.is_finite()) || opts.dt > opts.t_stop {
            return Err(CircuitError::InvalidParameter {
                what: format!("dt {}", opts.dt),
            });
        }
        Ok(TransientAnalysis { ckt, opts })
    }

    /// Runs the analysis and returns the recorded waveforms.
    ///
    /// The initial condition is the DC operating point with every source at
    /// its `t = 0⁻` value; a source stepping at `t = 0` therefore produces
    /// the paper's "rising edge of `V_flow`" experiment directly.
    ///
    /// # Errors
    ///
    /// Propagates singular-system and state-iteration failures from the
    /// per-step solves.
    pub fn run(&self) -> Result<WaveformSet, CircuitError> {
        let ckt = self.ckt;
        let st = MnaStructure::new(ckt);
        let mut states = mna::initial_states(ckt);
        let mut cache = None;

        // t = 0⁻ operating point.
        let lu_opts = crate::LuOptions::default();
        let (x0, _) = mna::solve_pwl(
            ckt,
            &st,
            &mut states,
            0.0,
            StampMode::Dc,
            None,
            true,
            &lu_opts,
            &mut cache,
        )?;
        // The DC stamp differs from the transient stamp: drop the cache.
        cache = None;

        let probe_nodes: Vec<NodeId> = match &self.opts.probes {
            Some(p) => p.clone(),
            None => (1..ckt.node_count()).map(NodeId).collect(),
        };
        let mut waves = WaveformSet::new(&probe_nodes, &self.opts.current_probes);

        let mut history = History {
            solution: x0,
            cap_currents: vec![0.0; ckt.element_count()],
        };
        self.record(&st, &mut waves, 0.0, &history.solution);

        let steps = self.opts.steps();
        let dt = self.opts.dt;
        let mut prev_mode_was_be = true;
        for k in 1..=steps {
            let t = k as f64 * dt;
            // Bootstrap trapezoidal with one BE step.
            let mode = match self.opts.method {
                IntegrationMethod::BackwardEuler => StampMode::BackwardEuler { h: dt },
                IntegrationMethod::Trapezoidal if k == 1 => StampMode::BackwardEuler { h: dt },
                IntegrationMethod::Trapezoidal => StampMode::Trapezoidal { h: dt },
            };
            let is_be = matches!(mode, StampMode::BackwardEuler { .. });
            if is_be != prev_mode_was_be {
                cache = None; // matrix stamp changed shape
                prev_mode_was_be = is_be;
            }

            let (x, _) = mna::solve_pwl(
                ckt,
                &st,
                &mut states,
                t,
                mode,
                Some(&history),
                false,
                &lu_opts,
                &mut cache,
            )?;

            // Update capacitor-current history (needed by trapezoidal).
            for (idx, e) in ckt.elements().iter().enumerate() {
                if let Element::Capacitor { a, b, capacitance } = e {
                    let v = |n: NodeId, vec: &[f64]| n.unknown().map_or(0.0, |u| vec[u]);
                    let vab_now = v(*a, &x) - v(*b, &x);
                    let vab_prev = v(*a, &history.solution) - v(*b, &history.solution);
                    history.cap_currents[idx] = match mode {
                        StampMode::BackwardEuler { h } => capacitance / h * (vab_now - vab_prev),
                        StampMode::Trapezoidal { h } => {
                            2.0 * capacitance / h * (vab_now - vab_prev) - history.cap_currents[idx]
                        }
                        StampMode::Dc => 0.0,
                    };
                }
            }
            history.solution = x;

            if k % self.opts.record_every == 0 || k == steps {
                self.record(&st, &mut waves, t, &history.solution);
            }
        }
        Ok(waves)
    }

    fn record(&self, st: &MnaStructure, waves: &mut WaveformSet, t: f64, x: &[f64]) {
        let mut sample =
            Vec::with_capacity(waves.node_columns().len() + waves.current_columns().len());
        for (node, _) in waves.node_columns() {
            sample.push(node.unknown().map_or(0.0, |u| x[u]));
        }
        for (elem, _) in waves.current_columns() {
            sample.push(st.branch_unknown(elem).map_or(0.0, |u| x[u]));
        }
        waves.push_sample(t, &sample);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::{DiodeModel, OpAmpModel};
    use crate::source::SourceValue;

    #[test]
    fn rc_step_response_time_constant() {
        // R = 1k, C = 1n → tau = 1 µs; v(tau) = 1 - 1/e ≈ 0.632.
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.voltage_source(vin, Circuit::GROUND, SourceValue::step(0.0, 1.0, 0.0));
        ckt.resistor(vin, out, 1e3);
        ckt.capacitor(out, Circuit::GROUND, 1e-9);
        let opts = TransientOptions::to_time(5e-6).with_step(5e-9);
        let waves = TransientAnalysis::new(&ckt, opts).unwrap().run().unwrap();
        let w = waves.voltage(out).unwrap();
        let v_tau = w.value_at(1e-6);
        assert!((v_tau - 0.6321).abs() < 5e-3, "v(tau)={v_tau}");
        let exact_end = 1.0 - (-5.0_f64).exp();
        assert!((w.last_value() - exact_end).abs() < 1e-3);
    }

    #[test]
    fn trapezoidal_is_more_accurate_than_be() {
        let build = || {
            let mut ckt = Circuit::new();
            let vin = ckt.node("in");
            let out = ckt.node("out");
            ckt.voltage_source(vin, Circuit::GROUND, SourceValue::step(0.0, 1.0, 0.0));
            ckt.resistor(vin, out, 1e3);
            ckt.capacitor(out, Circuit::GROUND, 1e-9);
            (ckt, out)
        };
        let exact = 1.0 - (-1.0_f64).exp(); // v at t = tau

        let (ckt, out) = build();
        let be = TransientAnalysis::new(&ckt, TransientOptions::to_time(1e-6).with_step(2.5e-8))
            .unwrap()
            .run()
            .unwrap();
        let (ckt2, out2) = build();
        let tr = TransientAnalysis::new(
            &ckt2,
            TransientOptions::to_time(1e-6)
                .with_step(2.5e-8)
                .with_method(IntegrationMethod::Trapezoidal),
        )
        .unwrap()
        .run()
        .unwrap();
        let err_be = (be.voltage(out).unwrap().last_value() - exact).abs();
        let err_tr = (tr.voltage(out2).unwrap().last_value() - exact).abs();
        assert!(err_tr < err_be, "trap {err_tr} vs be {err_be}");
    }

    #[test]
    fn opamp_follower_settles_with_gbw_time_constant() {
        // Unity-gain follower driven by a step: closed-loop pole ≈ 2π·GBW.
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.voltage_source(vin, Circuit::GROUND, SourceValue::step(0.0, 1.0, 0.0));
        ckt.opamp(vin, out, out, OpAmpModel::with_gbw(10e9));
        ckt.resistor(out, Circuit::GROUND, 1e4);
        // Closed-loop tau ≈ 1/(2π·10G) ≈ 15.9 ps.
        let opts = TransientOptions::to_time(200e-12).with_step(0.5e-12);
        let waves = TransientAnalysis::new(&ckt, opts).unwrap().run().unwrap();
        let w = waves.voltage(out).unwrap();
        let v_tau = w.value_at(15.9e-12);
        assert!((v_tau - 0.632).abs() < 0.05, "v(tau)={v_tau}");
        assert!((w.last_value() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn faster_gbw_settles_faster() {
        let run = |gbw: f64| {
            let mut ckt = Circuit::new();
            let vin = ckt.node("in");
            let out = ckt.node("out");
            ckt.voltage_source(vin, Circuit::GROUND, SourceValue::step(0.0, 1.0, 0.0));
            ckt.opamp(vin, out, out, OpAmpModel::with_gbw(gbw));
            ckt.resistor(out, Circuit::GROUND, 1e4);
            let opts = TransientOptions::to_time(500e-12).with_step(1e-12);
            let waves = TransientAnalysis::new(&ckt, opts).unwrap().run().unwrap();
            waves.voltage(out).unwrap().settle_time(0.001).unwrap()
        };
        let t10 = run(10e9);
        let t50 = run(50e9);
        assert!(
            t50 < t10 / 3.0,
            "50 GHz ({t50}) should settle ~5x faster than 10 GHz ({t10})"
        );
    }

    #[test]
    fn diode_clamp_transient() {
        // Ramp into a clamp: node follows the ramp, then clamps at 1 V.
        let mut ckt = Circuit::new();
        let drive = ckt.node("drive");
        let x = ckt.node("x");
        let clamp = ckt.node("clamp");
        ckt.voltage_source(
            drive,
            Circuit::GROUND,
            SourceValue::ramp(0.0, 0.0, 1e-6, 3.0),
        );
        ckt.resistor(drive, x, 1e3);
        ckt.voltage_source(clamp, Circuit::GROUND, SourceValue::dc(1.0));
        ckt.diode(x, clamp, DiodeModel::ideal());
        let opts = TransientOptions::to_time(1e-6).with_step(2e-9);
        let waves = TransientAnalysis::new(&ckt, opts).unwrap().run().unwrap();
        let w = waves.voltage(x).unwrap();
        // Before the clamp engages (t = 0.2 µs → drive 0.6 V): follows drive.
        assert!((w.value_at(0.2e-6) - 0.6).abs() < 0.01);
        // At the end (drive 3 V): clamped to ~1 V.
        assert!((w.last_value() - 1.0).abs() < 0.01);
    }

    #[test]
    fn current_probe_records_source_current() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let v = ckt.voltage_source(a, Circuit::GROUND, SourceValue::dc(2.0));
        ckt.resistor(a, Circuit::GROUND, 1e3);
        ckt.capacitor(a, Circuit::GROUND, 1e-12);
        let opts = TransientOptions::to_time(1e-9)
            .with_step(1e-11)
            .probe_current(v);
        let waves = TransientAnalysis::new(&ckt, opts).unwrap().run().unwrap();
        let i = waves.source_current_values(v).unwrap();
        assert!((i.last().unwrap() - 2e-3).abs() < 1e-6);
    }

    #[test]
    fn invalid_options_rejected() {
        let ckt = Circuit::new();
        assert!(TransientAnalysis::new(&ckt, TransientOptions::to_time(0.0)).is_err());
        let bad_dt = TransientOptions {
            dt: -1.0,
            ..TransientOptions::to_time(1.0)
        };
        assert!(TransientAnalysis::new(&ckt, bad_dt).is_err());
        let dt_too_big = TransientOptions::to_time(1.0).with_step(2.0);
        assert!(TransientAnalysis::new(&ckt, dt_too_big).is_err());
    }

    #[test]
    fn decimation_reduces_samples() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.voltage_source(a, Circuit::GROUND, SourceValue::dc(1.0));
        ckt.resistor(a, Circuit::GROUND, 1.0);
        let opts = TransientOptions::to_time(1e-6).with_step(1e-8).decimate(10);
        let waves = TransientAnalysis::new(&ckt, opts).unwrap().run().unwrap();
        // 100 steps / 10 + initial sample = 11.
        assert_eq!(waves.len(), 11);
    }
}
