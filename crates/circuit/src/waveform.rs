use std::collections::HashMap;

use crate::ids::{ElementId, NodeId};

/// A recorded time-series view over one signal of a [`WaveformSet`].
///
/// The time axis is shared by every signal in the set.
#[derive(Debug, Clone, Copy)]
pub struct Waveform<'a> {
    times: &'a [f64],
    values: &'a [f64],
}

impl<'a> Waveform<'a> {
    /// Builds a waveform view over external slices — used to analyse
    /// *derived* series (e.g. a flow value computed from several node
    /// voltages) with the same settle-time machinery.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn from_slices(times: &'a [f64], values: &'a [f64]) -> Self {
        assert_eq!(times.len(), values.len(), "waveform slices must align");
        Waveform { times, values }
    }

    /// Sample times (seconds).
    pub fn times(&self) -> &'a [f64] {
        self.times
    }

    /// Sample values, aligned with [`Waveform::times`].
    pub fn values(&self) -> &'a [f64] {
        self.values
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Last recorded value.
    ///
    /// # Panics
    ///
    /// Panics on an empty waveform.
    pub fn last_value(&self) -> f64 {
        *self
            .values
            .last()
            .expect("invariant: waveforms hold at least one sample")
    }

    /// Linearly interpolated value at time `t`, clamped to the recorded
    /// range.
    ///
    /// # Panics
    ///
    /// Panics on an empty waveform.
    pub fn value_at(&self, t: f64) -> f64 {
        assert!(!self.is_empty(), "waveform is empty");
        if t <= self.times[0] {
            return self.values[0];
        }
        if t >= *self
            .times
            .last()
            .expect("invariant: waveforms hold at least one sample")
        {
            return self.last_value();
        }
        // Binary search for the bracketing interval.
        let idx = self.times.partition_point(|&x| x < t);
        let (t0, t1) = (self.times[idx - 1], self.times[idx]);
        let (v0, v1) = (self.values[idx - 1], self.values[idx]);
        if t1 == t0 {
            v1
        } else {
            v0 + (v1 - v0) * (t - t0) / (t1 - t0)
        }
    }

    /// Settling time per the paper's §5.1 definition: the earliest time `T`
    /// such that the signal stays within `frac` (relative) of its **final**
    /// value for all recorded samples at or after `T`.
    ///
    /// The comparison uses `|v − v_final| ≤ frac · max(|v_final|, floor)`
    /// where `floor` guards signals settling to zero.
    ///
    /// Returns `None` if even the last sample violates the band (cannot
    /// happen with `frac > 0`) or the waveform is empty.
    pub fn settle_time(&self, frac: f64) -> Option<f64> {
        self.settle_time_with_floor(frac, 1e-12)
    }

    /// [`Waveform::settle_time`] with an explicit absolute floor.
    pub fn settle_time_with_floor(&self, frac: f64, floor: f64) -> Option<f64> {
        if self.is_empty() {
            return None;
        }
        let target = self.last_value();
        let band = frac * target.abs().max(floor);
        // Walk backwards: find the last sample outside the band.
        let mut settle_idx = 0;
        for i in (0..self.values.len()).rev() {
            if (self.values[i] - target).abs() > band {
                settle_idx = i + 1;
                break;
            }
        }
        self.times.get(settle_idx).copied()
    }

    /// Iterator over `(time, value)` samples.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + 'a {
        self.times.iter().copied().zip(self.values.iter().copied())
    }
}

/// All signals recorded by a transient analysis, sharing one time axis.
#[derive(Debug, Clone, Default)]
pub struct WaveformSet {
    times: Vec<f64>,
    node_index: HashMap<NodeId, usize>,
    current_index: HashMap<ElementId, usize>,
    data: Vec<Vec<f64>>,
}

impl WaveformSet {
    /// Creates an empty set recording the given node voltages and element
    /// branch currents. Public so reduced-order models outside this crate
    /// can assemble waveform sets with the same analysis API.
    pub fn new(nodes: &[NodeId], currents: &[ElementId]) -> Self {
        let mut set = WaveformSet::default();
        for &n in nodes {
            let idx = set.data.len();
            set.node_index.insert(n, idx);
            set.data.push(Vec::new());
        }
        for &c in currents {
            let idx = set.data.len();
            set.current_index.insert(c, idx);
            set.data.push(Vec::new());
        }
        set
    }

    /// Reserves storage for `samples` additional samples in every column —
    /// transient loops that know their step count avoid growth reallocs.
    pub fn reserve(&mut self, samples: usize) {
        self.times.reserve(samples);
        for col in &mut self.data {
            col.reserve(samples);
        }
    }

    /// Appends one sample: `values` must hold the node columns (in the
    /// order given to [`WaveformSet::new`]) followed by the current columns.
    pub fn push_sample(&mut self, t: f64, values: &[f64]) {
        debug_assert_eq!(values.len(), self.data.len());
        self.times.push(t);
        for (col, v) in self.data.iter_mut().zip(values) {
            col.push(*v);
        }
    }

    pub(crate) fn node_columns(&self) -> Vec<(NodeId, usize)> {
        let mut v: Vec<_> = self.node_index.iter().map(|(&n, &i)| (n, i)).collect();
        v.sort_by_key(|&(_, i)| i);
        v
    }

    pub(crate) fn current_columns(&self) -> Vec<(ElementId, usize)> {
        let mut v: Vec<_> = self.current_index.iter().map(|(&e, &i)| (e, i)).collect();
        v.sort_by_key(|&(_, i)| i);
        v
    }

    /// Shared time axis (seconds).
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Voltage waveform of `node`, if it was probed.
    pub fn voltage(&self, node: NodeId) -> Option<Waveform<'_>> {
        self.node_index.get(&node).map(|&i| Waveform {
            times: &self.times,
            values: &self.data[i],
        })
    }

    /// Branch-current waveform of `element` (current from the positive
    /// terminal *into* the element), if it was probed.
    pub fn branch_current(&self, element: ElementId) -> Option<Waveform<'_>> {
        self.current_index.get(&element).map(|&i| Waveform {
            times: &self.times,
            values: &self.data[i],
        })
    }

    /// Source-current waveform of `element` (current delivered out of the
    /// positive terminal), materialized as an owned vector.
    pub fn source_current_values(&self, element: ElementId) -> Option<Vec<f64>> {
        self.branch_current(element)
            .map(|w| w.values().iter().map(|v| -v).collect())
    }

    /// Probed nodes.
    pub fn probed_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_index.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_set(times: Vec<f64>, values: Vec<f64>) -> WaveformSet {
        let mut set = WaveformSet::new(&[NodeId(1)], &[]);
        for (t, v) in times.iter().zip(&values) {
            set.push_sample(*t, &[*v]);
        }
        set
    }

    #[test]
    fn interpolation_and_clamping() {
        let set = make_set(vec![0.0, 1.0, 2.0], vec![0.0, 10.0, 10.0]);
        let w = set.voltage(NodeId(1)).unwrap();
        assert_eq!(w.value_at(-1.0), 0.0);
        assert_eq!(w.value_at(0.5), 5.0);
        assert_eq!(w.value_at(5.0), 10.0);
        assert_eq!(w.last_value(), 10.0);
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn settle_time_finds_band_entry() {
        // Exponential-ish: 0, 5, 9, 9.9, 9.99, 10
        let set = make_set(
            vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0],
            vec![0.0, 5.0, 9.0, 9.9, 9.99, 10.0],
        );
        let w = set.voltage(NodeId(1)).unwrap();
        // 1% band around 10: |v-10| <= 0.1 → first sample inside is 9.9? No:
        // |9.9-10|=0.1 <= 0.1 → t=3.
        let ts = w.settle_time(0.01).unwrap();
        assert_eq!(ts, 3.0);
        // 0.1% band: |9.99-10|=0.01 <= 0.01 → t=4.
        assert_eq!(w.settle_time(0.001).unwrap(), 4.0);
    }

    #[test]
    fn settle_time_monotone_signal_settling_to_zero() {
        let set = make_set(vec![0.0, 1.0, 2.0], vec![1.0, 1e-3, 0.0]);
        let w = set.voltage(NodeId(1)).unwrap();
        // Final value 0: floor kicks in, only the last sample is within.
        assert_eq!(w.settle_time(0.001).unwrap(), 2.0);
    }

    #[test]
    fn constant_signal_settles_immediately() {
        let set = make_set(vec![0.0, 1.0], vec![2.0, 2.0]);
        let w = set.voltage(NodeId(1)).unwrap();
        assert_eq!(w.settle_time(0.001).unwrap(), 0.0);
    }

    #[test]
    fn missing_probe_is_none() {
        let set = make_set(vec![0.0], vec![1.0]);
        assert!(set.voltage(NodeId(9)).is_none());
        assert!(set.branch_current(ElementId(0)).is_none());
    }
}
