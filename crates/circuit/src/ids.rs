use std::fmt;

/// Identifier of a circuit node.
///
/// `NodeId(0)` is the ground (reference) node, available as
/// [`crate::Circuit::GROUND`]; every other node is created through
/// [`crate::Circuit::node`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The ground node.
    pub(crate) const GROUND: NodeId = NodeId(0);

    /// `true` for the ground node.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }

    /// Raw index (0 = ground). Useful for dense bookkeeping by callers.
    pub fn index(self) -> usize {
        self.0
    }

    /// Index into the MNA unknown vector, `None` for ground.
    pub(crate) fn unknown(self) -> Option<usize> {
        self.0.checked_sub(1)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_ground() {
            write!(f, "gnd")
        } else {
            write!(f, "n{}", self.0)
        }
    }
}

/// Identifier of an element (device instance) in a [`crate::Circuit`].
///
/// Returned by every device constructor; used to update device parameters
/// (e.g. memristor programming) and to probe branch currents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ElementId(pub(crate) usize);

impl ElementId {
    /// Raw index into the circuit's element list.
    pub fn index(self) -> usize {
        self.0
    }

    /// A sentinel id referring to no element (used by callers that keep
    /// element-aligned tables with gaps).
    pub fn invalid() -> Self {
        ElementId(usize::MAX)
    }

    /// `false` for the [`ElementId::invalid`] sentinel.
    pub fn is_valid(self) -> bool {
        self.0 != usize::MAX
    }
}

impl fmt::Display for ElementId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_properties() {
        assert!(NodeId::GROUND.is_ground());
        assert_eq!(NodeId::GROUND.unknown(), None);
        assert_eq!(NodeId(3).unknown(), Some(2));
        assert_eq!(NodeId::GROUND.to_string(), "gnd");
        assert_eq!(NodeId(2).to_string(), "n2");
    }

    #[test]
    fn element_display() {
        assert_eq!(ElementId(7).to_string(), "e7");
        assert_eq!(ElementId(7).index(), 7);
    }
}
