use crate::ids::NodeId;
use crate::source::SourceValue;

/// Piecewise-linear diode model.
///
/// The substrate's clamping diodes are treated as ideal switches with a
/// small on-resistance and a large off-resistance; the optional forward
/// drop `v_on` models the real turn-on voltage which, per §2.1 of the
/// paper, is compensated by adjusting the clamp voltage sources.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiodeModel {
    /// Series resistance when conducting (Ω).
    pub r_on: f64,
    /// Leakage resistance when blocking (Ω).
    pub r_off: f64,
    /// Forward voltage drop (V); `0.0` for an ideal diode.
    pub v_on: f64,
}

impl DiodeModel {
    /// Ideal switch diode: 10 mΩ on, 1 GΩ off, no forward drop. (A literal
    /// 0 Ω switch makes the PWL complementarity iteration chatter at clamp
    /// boundaries; 10 mΩ keeps the clamp voltage error below 10⁻⁴ of the
    /// substrate's signal levels.)
    pub fn ideal() -> Self {
        DiodeModel {
            r_on: 1e-2,
            r_off: 1e9,
            v_on: 0.0,
        }
    }

    /// Silicon-like diode with a 0.7 V drop (used in non-ideality studies).
    pub fn silicon() -> Self {
        DiodeModel {
            r_on: 1.0,
            r_off: 1e9,
            v_on: 0.7,
        }
    }
}

impl Default for DiodeModel {
    fn default() -> Self {
        DiodeModel::ideal()
    }
}

/// Single-pole operational-amplifier macromodel.
///
/// DC behaviour is a finite-gain VCVS (`V_out = A · (V⁺ − V⁻)`); transient
/// behaviour adds the dominant pole so the closed-loop settling speed is set
/// by the gain–bandwidth product, matching Table 1 of the paper:
///
/// `τ · dV_out/dt = A · (V⁺ − V⁻) − V_out`, with `τ = A / (2π · GBW)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpAmpModel {
    /// Open-loop DC gain `A` (dimensionless). Table 1 uses `1e4`.
    pub gain: f64,
    /// Gain–bandwidth product in Hz. Table 1 sweeps 10–50 GHz.
    pub gbw_hz: f64,
    /// Output saturation rails `(low, high)` in volts.
    pub rails: (f64, f64),
    /// Output resistance (Ω); a small nonzero value keeps MNA well posed
    /// when the output drives another source-like branch.
    pub r_out: f64,
}

impl OpAmpModel {
    /// The paper's Table 1 op-amp: gain 1e4, GBW 10 GHz, ±100 V rails
    /// (effectively unsaturated for the voltage levels involved).
    pub fn table1() -> Self {
        OpAmpModel {
            gain: 1e4,
            gbw_hz: 10e9,
            rails: (-100.0, 100.0),
            r_out: 0.0,
        }
    }

    /// Same as [`OpAmpModel::table1`] but with the given GBW in Hz.
    pub fn with_gbw(gbw_hz: f64) -> Self {
        OpAmpModel {
            gbw_hz,
            ..OpAmpModel::table1()
        }
    }

    /// Dominant-pole time constant `τ = A / (2π · GBW)` in seconds.
    pub fn time_constant(&self) -> f64 {
        self.gain / (2.0 * std::f64::consts::PI * self.gbw_hz)
    }
}

impl Default for OpAmpModel {
    fn default() -> Self {
        OpAmpModel::table1()
    }
}

/// Resistance states of a behavioural memristor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MemristorState {
    /// High-resistance state: the crossbar switch is *open*.
    #[default]
    Hrs,
    /// Low-resistance state: the switch is *closed* and acts as the
    /// resistor `r` of the substrate.
    Lrs,
}

/// Behavioural memristor model (threshold-switching, per §3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemristorModel {
    /// LRS memristance (Ω). Table 1: 10 kΩ.
    pub r_lrs: f64,
    /// HRS memristance (Ω). Table 1: 1 MΩ.
    pub r_hrs: f64,
    /// Programming threshold voltage (V): pulses with magnitude at or above
    /// this switch the state; anything below leaves it untouched.
    pub v_threshold: f64,
}

impl MemristorModel {
    /// Table 1 memristor: LRS 10 kΩ, HRS 1 MΩ, 1.5 V threshold (typical of
    /// the cited literature).
    pub fn table1() -> Self {
        MemristorModel {
            r_lrs: 10e3,
            r_hrs: 1e6,
            v_threshold: 1.5,
        }
    }

    /// Resistance in a given state.
    pub fn resistance(&self, state: MemristorState) -> f64 {
        match state {
            MemristorState::Hrs => self.r_hrs,
            MemristorState::Lrs => self.r_lrs,
        }
    }
}

impl Default for MemristorModel {
    fn default() -> Self {
        MemristorModel::table1()
    }
}

/// A device instance in a [`crate::Circuit`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Element {
    /// Linear resistor between `a` and `b`; `resistance` may be *negative*
    /// (the substrate's constraint circuits rely on negative resistors).
    Resistor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Resistance in Ω (nonzero, possibly negative).
        resistance: f64,
    },
    /// Linear capacitor between `a` and `b`.
    Capacitor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Capacitance in farads (positive).
        capacitance: f64,
    },
    /// Independent voltage source: `V(pos) − V(neg) = value(t)`.
    VoltageSource {
        /// Positive terminal.
        pos: NodeId,
        /// Negative terminal.
        neg: NodeId,
        /// Source waveform.
        value: SourceValue,
    },
    /// Independent current source driving `value(t)` amps from `neg`
    /// through the source into `pos` (i.e. into the `pos` node).
    CurrentSource {
        /// Terminal receiving the current.
        pos: NodeId,
        /// Terminal sourcing the current.
        neg: NodeId,
        /// Source waveform.
        value: SourceValue,
    },
    /// Voltage-controlled voltage source:
    /// `V(out_pos) − V(out_neg) = gain · (V(ctrl_pos) − V(ctrl_neg))`.
    Vcvs {
        /// Output positive terminal.
        out_pos: NodeId,
        /// Output negative terminal.
        out_neg: NodeId,
        /// Control positive terminal.
        ctrl_pos: NodeId,
        /// Control negative terminal.
        ctrl_neg: NodeId,
        /// Voltage gain.
        gain: f64,
    },
    /// Piecewise-linear diode conducting from `anode` to `cathode`.
    Diode {
        /// Anode.
        anode: NodeId,
        /// Cathode.
        cathode: NodeId,
        /// PWL model parameters.
        model: DiodeModel,
    },
    /// Single-pole op-amp; output referenced to ground.
    OpAmp {
        /// Non-inverting input.
        inp: NodeId,
        /// Inverting input.
        inn: NodeId,
        /// Output node.
        out: NodeId,
        /// Macromodel parameters.
        model: OpAmpModel,
    },
    /// Grounded negative resistor with first-order settling dynamics.
    ///
    /// DC behaviour is an exact `−magnitude` resistance; in transient the
    /// injected current follows `τ · di/dt = −V(a)/magnitude − i`, modelling
    /// an op-amp negative-impedance converter whose loop settles at the
    /// amplifier's dominant-pole time constant. This is what makes the
    /// substrate's constraint enforcement *slower* than the parasitic RC —
    /// the two-time-scale structure that keeps the indefinite network
    /// dynamically stable (see the `ohmflow` DESIGN notes).
    NegativeResistorDyn {
        /// Grounded terminal.
        a: NodeId,
        /// Magnitude of the negative resistance (Ω, positive number).
        magnitude: f64,
        /// Settling time constant (seconds).
        tau: f64,
    },
    /// Behavioural memristor between `a` and `b`.
    Memristor {
        /// First terminal (programming "row" side).
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Model parameters.
        model: MemristorModel,
        /// Current resistance state.
        state: MemristorState,
        /// Fine-tuned resistance override (Ω) applied when in LRS; `None`
        /// uses `model.r_lrs`. Supports §4.3.2 post-fabrication tuning.
        tuned_lrs: Option<f64>,
    },
}

impl Element {
    /// The two "primary" terminals of the element (output terminals for
    /// controlled sources). Useful for connectivity checks.
    pub fn terminals(&self) -> (NodeId, NodeId) {
        match self {
            Element::Resistor { a, b, .. }
            | Element::Capacitor { a, b, .. }
            | Element::Memristor { a, b, .. } => (*a, *b),
            Element::VoltageSource { pos, neg, .. } | Element::CurrentSource { pos, neg, .. } => {
                (*pos, *neg)
            }
            Element::Vcvs {
                out_pos, out_neg, ..
            } => (*out_pos, *out_neg),
            Element::NegativeResistorDyn { a, .. } => (*a, NodeId::GROUND),
            Element::Diode { anode, cathode, .. } => (*anode, *cathode),
            Element::OpAmp { out, .. } => (*out, NodeId::GROUND),
        }
    }

    /// `true` if the element introduces a branch-current unknown in MNA.
    pub fn has_branch_current(&self) -> bool {
        matches!(
            self,
            Element::VoltageSource { .. }
                | Element::Vcvs { .. }
                | Element::OpAmp { .. }
                | Element::NegativeResistorDyn { .. }
        )
    }

    /// Effective resistance of a memristor element in its present state.
    ///
    /// Returns `None` for other element kinds.
    pub fn memristance(&self) -> Option<f64> {
        match self {
            Element::Memristor {
                model,
                state,
                tuned_lrs,
                ..
            } => Some(match state {
                MemristorState::Lrs => tuned_lrs.unwrap_or(model.r_lrs),
                MemristorState::Hrs => model.r_hrs,
            }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opamp_time_constant() {
        let m = OpAmpModel::table1();
        // tau = 1e4 / (2*pi*1e10) ≈ 1.59e-7
        assert!((m.time_constant() - 1.5915e-7).abs() < 1e-10);
        let fast = OpAmpModel::with_gbw(50e9);
        assert!(fast.time_constant() < m.time_constant());
    }

    #[test]
    fn memristor_state_resistance() {
        let m = MemristorModel::table1();
        assert_eq!(m.resistance(MemristorState::Lrs), 10e3);
        assert_eq!(m.resistance(MemristorState::Hrs), 1e6);
    }

    #[test]
    fn memristance_respects_tuning() {
        let e = Element::Memristor {
            a: NodeId(1),
            b: NodeId(2),
            model: MemristorModel::table1(),
            state: MemristorState::Lrs,
            tuned_lrs: Some(9_900.0),
        };
        assert_eq!(e.memristance(), Some(9_900.0));
        let e_hrs = Element::Memristor {
            a: NodeId(1),
            b: NodeId(2),
            model: MemristorModel::table1(),
            state: MemristorState::Hrs,
            tuned_lrs: Some(9_900.0),
        };
        assert_eq!(e_hrs.memristance(), Some(1e6), "tuning only affects LRS");
    }

    #[test]
    fn branch_current_classification() {
        let r = Element::Resistor {
            a: NodeId(1),
            b: NodeId(0),
            resistance: 1.0,
        };
        assert!(!r.has_branch_current());
        let v = Element::VoltageSource {
            pos: NodeId(1),
            neg: NodeId(0),
            value: SourceValue::dc(1.0),
        };
        assert!(v.has_branch_current());
    }
}
