use std::error::Error;
use std::fmt;

use ohmflow_linalg::LinalgError;

/// Errors produced by circuit construction and analysis.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CircuitError {
    /// A device parameter is invalid (zero resistance, negative capacitance,
    /// non-positive time step, …).
    InvalidParameter {
        /// Human-readable description of the offending parameter.
        what: String,
    },
    /// An element id does not refer to an element of the expected kind.
    WrongElementKind {
        /// What the caller expected.
        expected: &'static str,
    },
    /// The MNA system is singular — usually a floating node or an
    /// inconsistent source loop.
    SingularSystem {
        /// Underlying factorization failure.
        source: LinalgError,
    },
    /// Diode/op-amp state iteration failed to reach a consistent state
    /// assignment.
    StateIterationDiverged {
        /// Simulation time at which iteration gave up (seconds; `0.0` for DC).
        time: f64,
        /// Number of state iterations attempted.
        iterations: usize,
    },
    /// The requested probe does not exist in the recorded waveforms.
    UnknownProbe,
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::InvalidParameter { what } => write!(f, "invalid parameter: {what}"),
            CircuitError::WrongElementKind { expected } => {
                write!(f, "element is not a {expected}")
            }
            CircuitError::SingularSystem { source } => {
                write!(f, "singular MNA system ({source}); check for floating nodes")
            }
            CircuitError::StateIterationDiverged { time, iterations } => write!(
                f,
                "diode/op-amp state iteration diverged at t={time:.3e}s after {iterations} iterations"
            ),
            CircuitError::UnknownProbe => write!(f, "unknown probe"),
        }
    }
}

impl Error for CircuitError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CircuitError::SingularSystem { source } => Some(source),
            _ => None,
        }
    }
}

impl From<LinalgError> for CircuitError {
    fn from(source: LinalgError) -> Self {
        CircuitError::SingularSystem { source }
    }
}
