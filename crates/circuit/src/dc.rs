use ohmflow_linalg::SparseLu;

use crate::circuit::Circuit;
use crate::error::CircuitError;
use crate::ids::{ElementId, NodeId};
use crate::mna::{self, DeviceState, MnaStructure, Solution, StampMode};

/// DC operating-point analysis.
///
/// Capacitors are open, op-amps act as finite-gain VCVS, sources take their
/// `t = 0⁻` value, and diode conduction states are iterated to a consistent
/// assignment (exact for the PWL models).
///
/// # Example
///
/// ```
/// use ohmflow_circuit::{Circuit, DcAnalysis, SourceValue};
///
/// # fn main() -> Result<(), ohmflow_circuit::CircuitError> {
/// let mut ckt = Circuit::new();
/// let a = ckt.node("a");
/// let mid = ckt.node("mid");
/// ckt.voltage_source(a, Circuit::GROUND, SourceValue::dc(2.0));
/// ckt.resistor(a, mid, 1e3);
/// ckt.resistor(mid, Circuit::GROUND, 1e3);
/// let sol = DcAnalysis::new(&ckt).solve()?;
/// assert!((sol.voltage(mid) - 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DcAnalysis<'c> {
    ckt: &'c Circuit,
    /// When `true` (default), `Step` sources use their pre-step value.
    pre_step: bool,
    /// Evaluate time-varying sources at this instant instead of 0⁻.
    at_time: Option<f64>,
}

impl<'c> DcAnalysis<'c> {
    /// Prepares a DC analysis of `ckt`.
    pub fn new(ckt: &'c Circuit) -> Self {
        DcAnalysis {
            ckt,
            pre_step: true,
            at_time: None,
        }
    }

    /// Evaluates time-varying sources at `t` (a "quasi-static" solve) rather
    /// than at `0⁻`. This is what the §6.5 slow-ramp analysis uses.
    pub fn at_time(mut self, t: f64) -> Self {
        self.at_time = Some(t);
        self.pre_step = false;
        self
    }

    /// Runs the analysis.
    ///
    /// # Errors
    ///
    /// [`CircuitError::SingularSystem`] for floating nodes or inconsistent
    /// source loops; [`CircuitError::StateIterationDiverged`] if the diode
    /// state iteration cycles without a fixed point.
    pub fn solve(&self) -> Result<DcSolution, CircuitError> {
        let st = MnaStructure::new(self.ckt);
        let mut states = mna::initial_states(self.ckt);
        let mut cache = None;
        let t = self.at_time.unwrap_or(0.0);
        let x = mna::solve_pwl(
            self.ckt,
            &st,
            &mut states,
            t,
            StampMode::Dc,
            None,
            self.pre_step,
            &mut cache,
        )?;
        Ok(DcSolution {
            inner: Solution::new(x, st),
        })
    }
}

/// Solves a DC operating point with *frozen* diode conduction states —
/// no complementarity iteration. Used by the quasi-static relaxation model
/// of the `ohmflow` core crate, where diode switching is governed by the
/// (op-amp-lagged) relaxed node voltages rather than the instantaneous
/// equilibrium.
///
/// `diode_on` is indexed by [`Circuit::diode_ids`] order. Time-varying
/// sources are evaluated at `time`.
///
/// The returned factorization context can be passed back in to reuse the
/// matrix factorization while the state vector is unchanged.
///
/// # Errors
///
/// [`CircuitError::SingularSystem`] if the frozen configuration is
/// unsolvable.
pub fn solve_frozen_dc(
    ckt: &Circuit,
    time: f64,
    diode_on: &[bool],
    cache: &mut Option<FrozenDcCache>,
) -> Result<DcSolution, CircuitError> {
    let st = MnaStructure::new(ckt);
    let mut states = mna::initial_states(ckt);
    let mut di = 0;
    for (idx, e) in ckt.elements().iter().enumerate() {
        if matches!(e, crate::element::Element::Diode { .. }) {
            states[idx] = if *diode_on.get(di).unwrap_or(&false) {
                DeviceState::On
            } else {
                DeviceState::Off
            };
            di += 1;
        }
    }
    let reuse = matches!(cache, Some(c) if c.states == states);
    if !reuse {
        let m = mna::stamp_matrix(ckt, &st, &states, StampMode::Dc).to_csc();
        let lu = SparseLu::factor(&m)?;
        *cache = Some(FrozenDcCache { states: states.clone(), lu });
    }
    let lu = &cache.as_ref().expect("cache populated").lu;
    let b = mna::stamp_rhs(ckt, &st, &states, time, StampMode::Dc, None, false);
    let x = lu.solve(&b)?;
    Ok(DcSolution {
        inner: Solution::new(x, st),
    })
}

/// Factorization cache for [`solve_frozen_dc`].
#[derive(Debug)]
pub struct FrozenDcCache {
    states: Vec<DeviceState>,
    lu: SparseLu,
}

/// Result of a [`DcAnalysis`].
#[derive(Debug, Clone)]
pub struct DcSolution {
    inner: Solution,
}

impl DcSolution {
    /// Voltage of `node` (0 for ground).
    pub fn voltage(&self, node: NodeId) -> f64 {
        self.inner.voltage(node)
    }

    /// Current delivered by a source-like element out of its positive
    /// terminal (see [`Solution::source_current`]).
    ///
    /// [`Solution::source_current`]: crate::mna::Solution::source_current
    pub fn source_current(&self, id: ElementId) -> Option<f64> {
        self.inner.source_current(id)
    }

    /// Raw branch current of `id`, if the element has one.
    pub fn branch_current(&self, id: ElementId) -> Option<f64> {
        self.inner.branch_current(id)
    }

    /// The full unknown vector (node voltages then branch currents).
    pub fn values(&self) -> &[f64] {
        self.inner.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::{DiodeModel, OpAmpModel};
    use crate::source::SourceValue;

    #[test]
    fn voltage_divider() {
        let mut ckt = Circuit::new();
        let top = ckt.node("top");
        let mid = ckt.node("mid");
        ckt.voltage_source(top, Circuit::GROUND, SourceValue::dc(10.0));
        ckt.resistor(top, mid, 3e3);
        ckt.resistor(mid, Circuit::GROUND, 7e3);
        let sol = DcAnalysis::new(&ckt).solve().unwrap();
        assert!((sol.voltage(mid) - 7.0).abs() < 1e-9);
    }

    #[test]
    fn source_current_sign() {
        // 1 V across 1 kΩ: source delivers +1 mA out of its + terminal.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let v = ckt.voltage_source(a, Circuit::GROUND, SourceValue::dc(1.0));
        ckt.resistor(a, Circuit::GROUND, 1e3);
        let sol = DcAnalysis::new(&ckt).solve().unwrap();
        assert!((sol.source_current(v).unwrap() - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn diode_forward_conducts() {
        // V --R--> a --diode--> gnd : diode on pulls a near 0.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let top = ckt.node("top");
        ckt.voltage_source(top, Circuit::GROUND, SourceValue::dc(5.0));
        ckt.resistor(top, a, 1e3);
        ckt.diode(a, Circuit::GROUND, DiodeModel::ideal());
        let sol = DcAnalysis::new(&ckt).solve().unwrap();
        assert!(sol.voltage(a).abs() < 1e-2, "v(a)={}", sol.voltage(a));
    }

    #[test]
    fn diode_reverse_blocks() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let top = ckt.node("top");
        ckt.voltage_source(top, Circuit::GROUND, SourceValue::dc(5.0));
        ckt.resistor(top, a, 1e3);
        // Reversed: cathode at a.
        ckt.diode(Circuit::GROUND, a, DiodeModel::ideal());
        let sol = DcAnalysis::new(&ckt).solve().unwrap();
        assert!((sol.voltage(a) - 5.0).abs() < 1e-2);
    }

    #[test]
    fn diode_with_forward_drop() {
        // Ideal source straight into silicon diode + resistor: V(a) ≈ 0.7.
        let mut ckt = Circuit::new();
        let top = ckt.node("top");
        let a = ckt.node("a");
        ckt.voltage_source(top, Circuit::GROUND, SourceValue::dc(5.0));
        ckt.resistor(top, a, 1e3);
        ckt.diode(a, Circuit::GROUND, DiodeModel::silicon());
        let sol = DcAnalysis::new(&ckt).solve().unwrap();
        let v = sol.voltage(a);
        assert!((v - 0.7).abs() < 0.05, "v(a)={v}");
    }

    #[test]
    fn clamp_pair_limits_node_voltage() {
        // The paper's Fig. 1 edge-capacity widget: clamp 0 <= V <= c.
        let mut ckt = Circuit::new();
        let x = ckt.node("x");
        let drive = ckt.node("drive");
        let cap = ckt.node("cap");
        // Try to drive x to 5 V through a resistor; clamp at c = 2 V.
        ckt.voltage_source(drive, Circuit::GROUND, SourceValue::dc(5.0));
        ckt.resistor(drive, x, 1e3);
        ckt.voltage_source(cap, Circuit::GROUND, SourceValue::dc(2.0));
        ckt.diode(x, cap, DiodeModel::ideal()); // clamps x <= 2
        ckt.diode(Circuit::GROUND, x, DiodeModel::ideal()); // clamps x >= 0
        let sol = DcAnalysis::new(&ckt).solve().unwrap();
        assert!((sol.voltage(x) - 2.0).abs() < 1e-2, "v(x)={}", sol.voltage(x));
    }

    #[test]
    fn opamp_buffer() {
        // Unity-gain follower: out tied to inverting input.
        let mut ckt = Circuit::new();
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.voltage_source(inp, Circuit::GROUND, SourceValue::dc(1.5));
        ckt.opamp(inp, out, out, OpAmpModel::table1());
        ckt.resistor(out, Circuit::GROUND, 1e4);
        let sol = DcAnalysis::new(&ckt).solve().unwrap();
        // Finite gain A=1e4: error ~ 1/A.
        assert!((sol.voltage(out) - 1.5).abs() < 1e-3);
    }

    #[test]
    fn opamp_inverting_amplifier() {
        // Gain -2 inverting amp: Rf = 2k, Rin = 1k.
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let sum = ckt.node("sum");
        let out = ckt.node("out");
        ckt.voltage_source(vin, Circuit::GROUND, SourceValue::dc(1.0));
        ckt.resistor(vin, sum, 1e3);
        ckt.resistor(sum, out, 2e3);
        ckt.opamp(Circuit::GROUND, sum, out, OpAmpModel::table1());
        let sol = DcAnalysis::new(&ckt).solve().unwrap();
        assert!((sol.voltage(out) + 2.0).abs() < 2e-3, "v={}", sol.voltage(out));
    }

    #[test]
    fn opamp_saturates_open_loop() {
        let mut ckt = Circuit::new();
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.voltage_source(inp, Circuit::GROUND, SourceValue::dc(0.5));
        let mut model = OpAmpModel::table1();
        model.rails = (-10.0, 10.0);
        ckt.opamp(inp, Circuit::GROUND, out, model);
        ckt.resistor(out, Circuit::GROUND, 1e4);
        let sol = DcAnalysis::new(&ckt).solve().unwrap();
        // Desired output 0.5 * 1e4 = 5000 V; clamps at the 10 V rail.
        assert!((sol.voltage(out) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn negative_resistor_network() {
        // Voltage negation circuit from Fig. 2: node P with two r to x and
        // x⁻, plus -r/2 to ground, forces V(x⁻) = -V(x).
        let mut ckt = Circuit::new();
        let x = ckt.node("x");
        let xneg = ckt.node("xneg");
        let p = ckt.node("p");
        let r = 10e3;
        ckt.voltage_source(x, Circuit::GROUND, SourceValue::dc(1.2));
        ckt.resistor(x, p, r);
        ckt.resistor(xneg, p, r);
        ckt.resistor(p, Circuit::GROUND, -r / 2.0);
        // x⁻ must be driven by something to fix its level: a load resistor
        // models the downstream conservation network.
        ckt.resistor(xneg, Circuit::GROUND, 10.0 * r);
        let sol = DcAnalysis::new(&ckt).solve().unwrap();
        // With a finite load the negation is approximate; the exact
        // relation from KCL at p is V(x) = -V(x⁻) when no current flows
        // into x⁻ externally. Verify the KCL-derived relation instead:
        let vp = sol.voltage(p);
        let vx = sol.voltage(x);
        let vxn = sol.voltage(xneg);
        let lhs = (vx - vp) / r + (vxn - vp) / r;
        let rhs = vp / (-r / 2.0);
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn floating_node_is_singular() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.resistor(a, b, 1e3); // entire pair floats
        assert!(matches!(
            DcAnalysis::new(&ckt).solve(),
            Err(CircuitError::SingularSystem { .. })
        ));
    }

    #[test]
    fn quasi_static_at_time_tracks_ramp() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.voltage_source(a, Circuit::GROUND, SourceValue::ramp(0.0, 0.0, 1.0, 10.0));
        ckt.resistor(a, Circuit::GROUND, 1e3);
        let sol = DcAnalysis::new(&ckt).at_time(0.35).solve().unwrap();
        assert!((sol.voltage(a) - 3.5).abs() < 1e-9);
    }
}
